#!/usr/bin/env python
"""Cross-check every ``repro`` CLI flag mentioned in the docs against --help.

Docs rot silently: a renamed flag keeps its old spelling in README.md and
``docs/*.md`` until a reader hits the argparse error.  This script walks
every markdown file, collects each ``--flag`` token that appears on a line
invoking ``repro`` (including backslash-continued invocations), and fails
if any of them is not a real option of the named subcommand — introspected
live from :func:`repro.cli.build_parser`, so the check can never itself go
stale.  It also fails on documented subcommands that do not exist.

Run from the repository root::

    PYTHONPATH=src python tools/check_cli_docs.py

Exit status 0 when every documented flag exists, 1 otherwise (listing each
offending file, line and flag).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

from repro.cli import build_parser

ROOT = Path(__file__).resolve().parents[1]
DOC_FILES = sorted(ROOT.glob("docs/*.md")) + [ROOT / "README.md"]
FLAG_RE = re.compile(r"(?<![\w-])--[a-z][\w-]*")
# A repro invocation: `repro <subcommand> ...` or `python -m repro.cli <sub> ...`
INVOCATION_RE = re.compile(r"(?:^|[\s$`(])(?:repro|python -m repro\.cli)\s+([a-z][\w-]*)")


def collect_cli_surface():
    """{subcommand: set of option strings} from the live parser."""
    parser = build_parser()
    surface = {}
    # Argparse keeps subparsers in a private action; introspect it so the
    # check tracks the parser, not a hand-maintained list.
    for action in parser._actions:
        if hasattr(action, "choices") and isinstance(action.choices, dict):
            for name, subparser in action.choices.items():
                flags = set()
                for sub_action in subparser._actions:
                    flags.update(sub_action.option_strings)
                surface[name] = flags
    return surface


def documented_invocations(text):
    """Yield ``(line_number, subcommand, flags)`` for each repro invocation.

    A trailing backslash continues the invocation onto the next line, so
    multi-line examples contribute every flag to their opening command.
    """
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i]
        match = INVOCATION_RE.search(line)
        # `from repro import X` is Python, not a CLI invocation.
        if not match or re.match(r"\s*(from|import)\s", line):
            i += 1
            continue
        start = i
        command = match.group(1)
        chunk = [line]
        while lines[i].rstrip().endswith("\\") and i + 1 < len(lines):
            i += 1
            chunk.append(lines[i])
        yield start + 1, command, FLAG_RE.findall(" ".join(chunk))
        i += 1


def main() -> int:
    surface = collect_cli_surface()
    problems = []
    checked = 0
    for doc in DOC_FILES:
        if not doc.exists():
            continue
        rel = doc.relative_to(ROOT)
        for line_no, command, flags in documented_invocations(doc.read_text()):
            if command not in surface:
                problems.append(f"{rel}:{line_no}: unknown subcommand 'repro {command}'")
                continue
            for flag in flags:
                checked += 1
                if flag not in surface[command]:
                    problems.append(
                        f"{rel}:{line_no}: 'repro {command}' has no {flag} flag"
                    )
    if problems:
        print(f"{len(problems)} documented CLI reference(s) do not match --help:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        f"ok: {checked} documented flag reference(s) across "
        f"{len([d for d in DOC_FILES if d.exists()])} file(s) all exist in repro --help"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
