"""Array-native serving engine: a vectorised tenant time-wheel.

The object event loops of :class:`~repro.serving.simulator.ServingSimulator`
batch *evaluations* but still run the admit/queue/deadline bookkeeping as
per-request Python over :class:`~repro.serving.tenants.TenantRuntime`
objects — at thousands of tenants or millions of arrivals the orchestration
itself becomes the wall (the same wall OSDS hit before the
``BatchVolumeScheduler`` extract-and-vectorise move).  This module rewrites
the tenant chain as **structured NumPy column arrays** — per-tenant
``(requests,)`` columns for arrival, start, completion, latency, response,
deadline slack — driven by an epoch time-wheel that advances every tenant
per epoch and commits completions in the canonical order the scalar chain
produces.

Three ideas make it exact *and* fast:

* **Column commits.**  A tenant without an adaptation hook serves one fixed
  plan, so its whole chain is a recurrence over the slot pool:
  ``start[i] = max(arrival[i], earliest_free_slot)``,
  ``completion[i] = start[i] + latency/1000``.  The single sequential
  dependency (the max-plus scan through the slot heap) runs as a tight
  fused loop over preallocated columns — every float op in the same order
  as :meth:`TenantRuntime.commit`, so results are bit-identical — while all
  remaining bookkeeping (responses, deadline flags, queue-depth series,
  admission counts, rejection drains) is reconstructed afterwards in whole
  array passes.
* **Epoch speculation.**  The latency of a request depends only on the
  ``(plan, network-state signature)`` pair at its start.  Once one request
  of a window is evaluated, the engine *speculates* that the signature holds
  for the next ``window`` requests, commits them in one scan, then verifies
  every speculated start against one vectorised signature matrix
  (:func:`~repro.runtime.batch.network_state_signatures`) and discards the
  mis-speculated tail — exactly like the OSDS round tails.  On a provably
  static network (:attr:`NetworkModel.is_static`) verification is skipped
  and the whole remaining timeline commits in a single scan.
* **Slot pools.**  Within-tenant concurrency
  (:attr:`~repro.serving.tenants.TenantSpec.slots`) is a lag-``slots``
  recurrence over the same columns: the scan pops the earliest-free slot
  from a small heap, so completions may overlap while the committed records
  stay in request order (the reordering-safe commit).

Tenants the columns cannot express exactly — adaptation hooks (the plan may
change mid-stream) and open-loop queue-capacity admission (a per-event
decision against the live queue depth) — fall back to their scalar
:class:`TenantRuntime` chain *inside* the engine's epoch loop, sharing its
signature groups and evaluation batches, so mixed workloads stay correct
and only the tenants that need the slow path pay for it.

Fleet churn (:mod:`repro.runtime.faults`) rides the same machinery: the
fault-aware loop bounds every speculation window at the next membership
event — a request commits speculatively only when its whole service span
fits strictly inside the current liveness segment — and a head request
crossing that barrier is rolled back and resolved through the shared scalar
retry-chain walk (:func:`~repro.runtime.faults.resolve_faulted_request`),
so mid-inference crashes, retries and abandonments land bit-identically to
the reference loop's verdicts.

Shared-fleet contention (a :class:`~repro.serving.dispatch.ClusterPolicy`)
keeps its canonical sequential dispatch order by construction — the
simulator routes contended array runs through the contended loop over the
vectorised :class:`~repro.runtime.contention.SharedFleetState` residuals.

``run_with_parity(..., engine="array")`` asserts bit-identity of all of
this against the naive per-request reference loop.  Where this engine sits
relative to the simulator's object loops, the contention layer and the
control plane — and the parity contract binding every fast path to its
reference loop — is drawn in ``docs/architecture.md``.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs.profile import NULL_PROFILER
from repro.obs.trace import NULL_TRACER, Tracer
from repro.runtime.batch import (
    network_state_signature,
    network_state_signatures,
    plan_signature,
)
from repro.runtime.faults import (
    FaultContext,
    emit_resolution,
    resolve_faulted_request,
)
from repro.serving.tenants import TenantReport, TenantRuntime, TenantSpec
from repro.utils.cache import LRUCache

#: Smallest adaptive speculation window on non-static networks.  The window
#: doubles after every fully-verified commit and halves on a mis-speculated
#: tail, so steady piecewise-constant traces quickly earn long windows while
#: continuously-varying traces degrade to near-per-request evaluation —
#: never to wrong answers.
MIN_SPECULATION = 4

#: Default cap of the adaptive speculation window.
DEFAULT_SPECULATION = 64


def vectorizable(spec: TenantSpec) -> bool:
    """Whether a tenant's chain can run on the engine's column fast path.

    Hooks may swap the plan mid-stream and open-loop admission control
    makes per-arrival decisions against the live queue depth; both run on
    the scalar fallback chain inside the engine instead.
    """
    if spec.adaptation_hook is not None or spec.hook_factory is not None:
        return False
    return spec.closed_loop or spec.queue_capacity is None


class _VectorTenant:
    """One tenant's request chain as preallocated NumPy columns.

    The scan methods replay :meth:`TenantRuntime.prepare`/``commit`` float
    for float (hoisting only per-request recomputations of constants, which
    is rounding-neutral); everything else about the report is reconstructed
    in vectorised array passes by :meth:`report`.
    """

    def __init__(
        self,
        spec: TenantSpec,
        start_s: float,
        duration_s: Optional[float],
        shed_intervals: Optional[List[Tuple[float, float]]] = None,
    ) -> None:
        self.spec = spec
        self.start_s = float(start_s)
        self.shed_times: List[float] = []
        if spec.closed_loop:
            self.arrivals = np.empty(0)
            self.capacity = int(spec.max_requests)
        else:
            self.arrivals = spec.traffic.arrival_times(duration_s, start_s)
            if shed_intervals:
                # Same up-front filter as TenantRuntime: shedding is decided
                # at arrival time from (trace, weights) alone, so shed
                # arrivals never enter the columns.
                keep = np.ones(self.arrivals.size, dtype=bool)
                for lo, hi in shed_intervals:
                    keep &= ~((self.arrivals >= lo) & (self.arrivals < hi))
                self.shed_times = [float(t) for t in self.arrivals[~keep]]
                self.arrivals = self.arrivals[keep]
            n = int(self.arrivals.size)
            self.capacity = n if spec.max_requests is None else min(n, spec.max_requests)
        # Python-float view for the tight scan (same bits, faster item access).
        self._a: List[float] = self.arrivals.tolist()
        k = self.capacity
        self.starts = np.empty(k)
        self.comps = np.empty(k)
        self.lats = np.empty(k)
        self.committed = 0
        self.truncated = False  # closed-loop max_duration_s stop
        # Slot pool min-heap (equal entries form a valid heap without heapify).
        self.slots: List[float] = [self.start_s] * spec.slots
        self.window = MIN_SPECULATION
        #: Per-tenant latency memo: network-state signature -> latency_ms
        #: (the plan is fixed on this path, so the signature is the key).
        #: Under churn the key widens to ``(id(effective_plan), signature)``
        #: — failover plans are cached per live set by the PlanDegrader, so
        #: the identity is stable.
        self.memo = LRUCache(256)
        # Fault-resolution outcomes (churn runs only; empty otherwise).
        self.abandoned_rows: List[int] = []
        self.abandoned_times: List[float] = []
        self.num_lost_attempts = 0
        self.num_retried = 0
        self.retry_added_ms = 0.0
        #: Mis-speculated windows rolled back (profiling only; the count
        #: never feeds the schedule).
        self.rollbacks = 0

    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        return self.committed >= self.capacity or self.truncated

    def peek_start(self) -> float:
        """Start time of the next request (exact — depends only on commits)."""
        if self.spec.closed_loop:
            return self.slots[0]
        arrival = self._a[self.committed]
        free = self.slots[0]
        return arrival if arrival > free else free

    # ------------------------------------------------------------------ #
    def _scan(self, count: int, latency_ms: float) -> int:
        """Commit up to ``count`` requests at a fixed latency.

        The one sequential dependency of the whole engine: each iteration
        performs exactly the float ops of the scalar chain —
        ``start = max(arrival, earliest_free)``; ``completion = start +
        latency_ms/1000`` ; slot frees at ``start + (latency_ms +
        gap_ms)/1000`` (closed loop) or at the completion (open loop).
        Returns the number committed (closed loops may stop early at
        ``max_duration_s``).
        """
        spec = self.spec
        lat_s = latency_ms / 1000.0
        i = j = self.committed
        end = i + count
        starts, comps = self.starts, self.comps
        slots = self.slots
        single = len(slots) == 1
        if spec.closed_loop:
            free_s = (latency_ms + spec.gap_ms) / 1000.0
            max_d = spec.max_duration_s
            base = self.start_s
            while j < end:
                if single:
                    s = slots[0]
                    slots[0] = s + free_s
                else:
                    s = slots[0]
                    heapq.heapreplace(slots, s + free_s)
                starts[j] = s
                comps[j] = s + lat_s
                j += 1
                if max_d is not None and slots[0] - base >= max_d:
                    self.truncated = True
                    break
        else:
            a = self._a
            if single:
                free = slots[0]
                while j < end:
                    arrival = a[j]
                    s = arrival if arrival > free else free
                    free = s + lat_s
                    starts[j] = s
                    comps[j] = free
                    j += 1
                slots[0] = free
            else:
                while j < end:
                    arrival = a[j]
                    mn = slots[0]
                    s = arrival if arrival > mn else mn
                    f = s + lat_s
                    heapq.heapreplace(slots, f)
                    starts[j] = s
                    comps[j] = f
                    j += 1
        self.committed = j
        return j - i

    def advance(
        self,
        latency_ms: float,
        signature: Tuple[float, ...],
        static: bool,
        network,
        max_window: int,
    ) -> int:
        """Commit one speculation window; returns how many requests landed.

        ``latency_ms`` is the evaluated latency of the *next* request (whose
        signature is ``signature`` by construction).  On a static network
        the whole remaining timeline commits; otherwise the window's starts
        are verified against the assumed signature with one vectorised
        matrix comparison and the mis-speculated tail is rolled back and
        discarded.
        """
        remaining = self.capacity - self.committed
        i0 = self.committed
        if static:
            count = self._scan(remaining, latency_ms)
            self.lats[i0:i0 + count] = latency_ms
            return count
        window = min(self.window, remaining)
        snapshot = (self.committed, list(self.slots), self.truncated)
        count = self._scan(window, latency_ms)
        rows = network_state_signatures(network, self.starts[i0:i0 + count])
        mismatch = (rows != np.asarray(signature)).any(axis=1)
        ok = int(np.argmax(mismatch)) if bool(mismatch.any()) else count
        if ok == 0:  # pragma: no cover - peek/scan compute the same start
            raise RuntimeError(
                f"tenant {self.spec.name!r}: speculation verifier rejected the "
                "evaluated head request — signature sampling drifted"
            )
        if ok < count:
            # Discard the mis-speculated tail: restore the slot pool and
            # replay only the verified prefix (identical floats by purity).
            self.committed, self.slots, self.truncated = snapshot
            self._scan(ok, latency_ms)
            self.window = max(MIN_SPECULATION, self.window // 2)
            self.rollbacks += 1
        else:
            self.window = min(max_window, self.window * 2)
        count = self.committed - i0
        self.lats[i0:i0 + count] = latency_ms
        return count

    # ------------------------------------------------------------------ #
    def advance_faulted(
        self,
        latency_ms: float,
        signature: Tuple[float, ...],
        static: bool,
        network,
        max_window: int,
        trace,
    ) -> int:
        """:meth:`advance` on a churning fleet; returns how many landed.

        The speculation window gains a second verifier: a request may only
        commit speculatively when it *starts* strictly before the next
        membership event and *completes* at or before it (a crash exactly at
        the completion tick does not kill — the open-interval rule of
        :meth:`FaultTrace.first_crash_touching`).  Inside such a window the
        live set, the effective plan and the crash verdict ("none") are
        constant, so the scalar retry-chain walk would resolve every request
        to exactly this latency — the window commit is the resolver, batched.
        Returns 0 when the head request itself crosses the barrier; the
        engine then resolves it through :func:`resolve_faulted_request` and
        commits it via :meth:`commit_resolved_head`.
        """
        remaining = self.capacity - self.committed
        i0 = self.committed
        t_next = self.peek_start()
        barrier_ms = trace.next_event_after(t_next * 1000.0)
        window = remaining if static else min(self.window, remaining)
        snapshot = (self.committed, list(self.slots), self.truncated)
        count = self._scan(window, latency_ms)
        starts = self.starts[i0:i0 + count]
        if static:
            ok = count
        else:
            rows = network_state_signatures(network, starts)
            mismatch = (rows != np.asarray(signature)).any(axis=1)
            ok = int(np.argmax(mismatch)) if bool(mismatch.any()) else count
            if ok == 0:  # pragma: no cover - peek/scan compute the same start
                raise RuntimeError(
                    f"tenant {self.spec.name!r}: speculation verifier rejected the "
                    "evaluated head request — signature sampling drifted"
                )
        if barrier_ms is not None:
            # Same float ops as the resolver: start_ms = start_s * 1000,
            # end_ms = start_ms + latency — so the boundary comparisons
            # agree bit for bit with the scalar crash test.
            starts_ms = starts * 1000.0
            fault_ok = int(np.searchsorted(starts_ms, barrier_ms, side="left"))
            fault_ok = min(
                fault_ok,
                int(np.searchsorted(starts_ms + latency_ms, barrier_ms, side="right")),
            )
            ok = min(ok, fault_ok)
        if ok < count:
            self.committed, self.slots, self.truncated = snapshot
            if ok:
                self._scan(ok, latency_ms)
            self.window = max(MIN_SPECULATION, self.window // 2)
            self.rollbacks += 1
        elif not static:
            self.window = min(max_window, self.window * 2)
        count = self.committed - i0
        self.lats[i0:i0 + count] = latency_ms
        return count

    def commit_resolved_head(self, resolved) -> None:
        """Commit the head request's scalar fault resolution into the columns.

        Mirrors :meth:`TenantRuntime.commit_resolved` float for float: a
        completed retry chain commits like a normal request at its total
        latency (first release to final completion), while an abandoned one
        holds its service slot until the crash instant and leaves no
        completed record — the row is flagged and filtered from the
        completion columns at report time.
        """
        self.num_lost_attempts += resolved.lost_attempts
        j = self.committed
        if resolved.status == "completed":
            self._scan(1, resolved.latency_ms)
            self.lats[j] = resolved.latency_ms
            if resolved.retried:
                self.num_retried += 1
                self.retry_added_ms += resolved.retry_added_ms
            return
        spec = self.spec
        abandon_s = resolved.abandon_s
        if spec.closed_loop:
            s = self.slots[0]
            heapq.heapreplace(self.slots, abandon_s + spec.gap_ms / 1000.0)
            if (
                spec.max_duration_s is not None
                and self.slots[0] - self.start_s >= spec.max_duration_s
            ):
                self.truncated = True
        else:
            arrival = self._a[j]
            free = self.slots[0]
            s = arrival if arrival > free else free
            heapq.heapreplace(self.slots, abandon_s)
        self.starts[j] = s
        self.comps[j] = abandon_s
        self.lats[j] = 0.0
        self.committed = j + 1
        self.abandoned_rows.append(j)
        self.abandoned_times.append(float(abandon_s))

    # ------------------------------------------------------------------ #
    def _depth_series(self, k: int, admitted: int) -> np.ndarray:
        """Reconstruct the queue-depth event series in one array pass.

        The scalar chain logs ``(time, depth)`` on every admission and every
        dispatch, processing arrivals before dispatches at equal times.  The
        interleaved sequence is therefore a stable time-sort of both event
        streams with arrivals ranked first on ties, and the depth after each
        event is the running sum of +1 (admission) / -1 (dispatch).
        """
        times = np.concatenate([self.arrivals[:admitted], self.starts[:k]])
        kind = np.concatenate([np.zeros(admitted), np.ones(k)])
        delta = np.concatenate([np.ones(admitted), -np.ones(k)])
        order = np.lexsort((kind, times))  # stable: index order within ties
        events = np.column_stack([times[order], np.cumsum(delta[order])])
        queued = admitted - k
        if queued > 0:
            # Requests still waiting when the cap closed service drain to
            # zero at the instant the next slot would have freed.
            drain = np.column_stack(
                [np.full(queued, self.slots[0]), np.arange(queued - 1, -1, -1.0)]
            )
            events = np.concatenate([events, drain])
        return events if events.size else np.empty((0, 2))

    def report(self) -> TenantReport:
        spec = self.spec
        k = self.committed
        starts_all = self.starts[:k]
        # Abandoned rows consumed an arrival, a slot and a dispatch — they
        # stay in the depth/admission accounting below — but leave no
        # completed record, exactly like TenantRuntime.abandon_pending.
        if self.abandoned_rows:
            mask = np.ones(k, dtype=bool)
            mask[self.abandoned_rows] = False
            starts = starts_all[mask]
            comps = self.comps[:k][mask]
            lats = self.lats[:k][mask]
        else:
            mask = None
            starts = starts_all
            comps = self.comps[:k]
            lats = self.lats[:k]
        if spec.closed_loop:
            arrivals = starts  # closed-loop requests are issued at dispatch
            num_arrivals = k
            rejected: List[float] = []
            depth = np.empty((0, 2))
            admitted = 0
        else:
            n = int(self.arrivals.size)
            arrivals = self.arrivals[:k] if mask is None else self.arrivals[:k][mask]
            num_arrivals = n + len(self.shed_times)
            # Admitted during serving: arrivals at/before the last dispatch
            # (ties admit first).  Everything past the request cap was
            # rejected — queued requests in the cap drain, the unexamined
            # tail of the stream at its own arrival times.
            admitted = (
                int(np.searchsorted(self.arrivals, starts_all[k - 1], side="right"))
                if k
                else 0
            )
            rejected = self.arrivals[k:].tolist()
            depth = self._depth_series(k, admitted)
        response = (comps - arrivals) * 1000.0
        if spec.slo is not None:
            missed = response > spec.slo.deadline_ms
        else:
            missed = np.zeros(starts.size, dtype=bool)
        return TenantReport(
            name=spec.name,
            slo=spec.slo,
            arrival_s=arrivals,
            start_s=starts,
            completion_s=comps,
            latency_ms=lats,
            response_ms=response,
            deadline_missed=missed,
            num_arrivals=num_arrivals,
            num_rejected=len(rejected),
            rejected_times_s=rejected,
            replan_times_s=[],
            queue_depth_series=depth,
            final_method=spec.plan.method,
            busy_until_s=max(self.slots),
            num_shed=len(self.shed_times),
            shed_times_s=list(self.shed_times),
            num_abandoned=len(self.abandoned_rows),
            abandoned_times_s=list(self.abandoned_times),
            num_lost_attempts=self.num_lost_attempts,
            num_retried=self.num_retried,
            retry_added_ms=self.retry_added_ms,
        )


class ArrayServingEngine:
    """Drives tenants through the vectorised time-wheel.

    Constructed on the same batch-capable evaluator as the simulator
    (:class:`~repro.runtime.batch.BatchPlanEvaluator` or a
    :class:`~repro.runtime.shard.ShardedPlanEvaluator` pool).  Use it via
    ``ServingSimulator.run(..., engine="array")`` — the simulator performs
    the argument validation and wraps the outcome in a
    :class:`~repro.serving.simulator.ServingReport`.
    """

    def __init__(self, evaluator, speculation: int = DEFAULT_SPECULATION) -> None:
        if speculation < MIN_SPECULATION:
            raise ValueError(
                f"speculation must be >= {MIN_SPECULATION}, got {speculation}"
            )
        self.evaluator = evaluator
        self.speculation = int(speculation)
        self.profiler = NULL_PROFILER

    def run(
        self,
        tenants: Sequence[TenantSpec],
        duration_s: Optional[float] = None,
        start_s: float = 0.0,
        mode: str = "batched",
        fault_ctx: Optional[FaultContext] = None,
        tracer: Optional[Tracer] = None,
    ):
        """Run the array time-wheel; returns a ``ServingReport``.

        ``mode`` is recorded in the report for symmetry with the object
        loops; the engine itself has a single (batched) execution strategy.
        ``fault_ctx`` (built by the simulator) switches on fleet churn: the
        run moves to the fault-aware epoch loop, whose speculation windows
        are additionally bounded by the fault trace's membership events.
        """
        from repro.serving.simulator import ServingReport  # circular at module load

        tracer = NULL_TRACER if tracer is None else tracer
        if fault_ctx is not None:
            return self._run_faulted(
                tenants, duration_s, start_s, mode, fault_ctx, tracer
            )

        prof = self.profiler
        run_start = perf_counter() if prof.enabled else 0.0
        network = self.evaluator.network
        static = network.is_static
        static_sig = network_state_signature(network, start_s) if static else None

        vectors: List[Optional[_VectorTenant]] = []
        runtimes: List[Optional[TenantRuntime]] = []
        for spec in tenants:
            if vectorizable(spec):
                vectors.append(_VectorTenant(spec, start_s, duration_s))
                runtimes.append(None)
            else:
                vectors.append(None)
                runtimes.append(TenantRuntime(spec, start_s, duration_s))

        epochs = 0
        cache_hits = 0
        speculated = 0
        # Plan signatures memoized by object identity (fallback chains may
        # swap plans via hooks; the dict also pins ids against recycling).
        plan_sigs: Dict[int, Tuple] = {}
        plan_refs: Dict[int, object] = {}

        def sig_of(plan) -> Tuple:
            sig = plan_sigs.get(id(plan))
            if sig is None:
                sig = plan_signature(plan)
                plan_sigs[id(plan)] = sig
                plan_refs[id(plan)] = plan
            return sig

        while True:
            # Phase 1: every active tenant declares its next evaluation need
            # (fallback dispatches whose latency is already cached commit
            # right here — still progress, hence the ``dispatched`` flag).
            groups: Dict[Tuple[float, ...], List[Tuple]] = {}
            ready: List[Tuple[_VectorTenant, Tuple[float, ...], float]] = []
            dispatched = False
            for vector, runtime in zip(vectors, runtimes):
                if vector is not None:
                    if vector.done:
                        continue
                    dispatched = True
                    t_next = vector.peek_start()
                    signature = (
                        static_sig if static else network_state_signature(network, t_next)
                    )
                    latency = vector.memo.get(signature)
                    if latency is None:
                        groups.setdefault(signature, []).append((vector, t_next))
                    else:
                        cache_hits += 1
                        ready.append((vector, signature, latency))
                    continue
                if runtime.done:
                    continue
                dispatch = runtime.prepare()
                if dispatch is None:
                    continue
                dispatched = True
                signature = (
                    static_sig
                    if static
                    else network_state_signature(network, dispatch.start_s)
                )
                key = (id(dispatch.plan.model), sig_of(dispatch.plan), signature)
                cached = runtime.cached_latency(key)
                if cached is not None:
                    cache_hits += 1
                    runtime.commit(cached)
                else:
                    groups.setdefault(signature, []).append((runtime, dispatch, key))
            if not dispatched:
                break
            epochs += 1
            # Phase 2: one vectorised evaluation per distinct network state.
            for signature, members in groups.items():
                plans = []
                for member in members:
                    if isinstance(member[0], _VectorTenant):
                        plans.append(member[0].spec.plan)
                    else:
                        plans.append(member[1].plan)
                t_rep = members[0][1] if isinstance(members[0][0], _VectorTenant) else (
                    members[0][1].start_s
                )
                results = self.evaluator.evaluate_plans(plans, t_seconds=t_rep)
                for member, result in zip(members, results):
                    latency = result.end_to_end_ms
                    if isinstance(member[0], _VectorTenant):
                        vector = member[0]
                        vector.memo.put(signature, latency)
                        ready.append((vector, signature, latency))
                    else:
                        runtime, dispatch, key = member
                        runtime.cache_latency(key, dispatch.plan.model, latency)
                        runtime.commit(latency)
            # Phase 3: column tenants commit their speculation windows.
            for vector, signature, latency in ready:
                landed = vector.advance(
                    latency, signature, static, network, self.speculation
                )
                speculated += landed - 1

        reports = [
            vector.report() if vector is not None else runtime.report()
            for vector, runtime in zip(vectors, runtimes)
        ]
        if prof.enabled:
            prof.add("engine.run", perf_counter() - run_start)
            prof.count("engine.epochs", epochs)
            prof.count("engine.cache_hits", cache_hits)
            prof.count("engine.speculated", speculated)
            prof.count(
                "engine.rollbacks",
                sum(v.rollbacks for v in vectors if v is not None),
            )
        return ServingReport(
            tenants=reports,
            start_s=start_s,
            duration_s=duration_s,
            mode=mode,
            epochs=epochs,
            evaluator_kind=type(self.evaluator).__name__,
            cache_hits=cache_hits,
            engine="array",
            speculated=speculated,
        )

    def _run_faulted(
        self,
        tenants: Sequence[TenantSpec],
        duration_s: Optional[float],
        start_s: float,
        mode: str,
        ctx: FaultContext,
        tracer: Tracer = NULL_TRACER,
    ):
        """The epoch time-wheel on a churning fleet.

        Three additions keep the column fast path under the churn parity
        contract:

        * every epoch resolves each tenant's *effective* plan from the live
          set at its next start — the same :class:`PlanDegrader` decision
          (and the same cached plan object) the scalar loops use;
        * speculation windows stop at the next membership event
          (:meth:`_VectorTenant.advance_faulted`), so no speculated commit
          can ever interact with churn;
        * a head request crossing the barrier is rolled back and resolved
          through the shared scalar retry-chain walk
          (:func:`~repro.runtime.faults.resolve_faulted_request`) with this
          engine's memoized latency oracle, then committed row by row —
          including abandoned rows, which hold their slot until the crash.

        Non-vectorizable tenants run their scalar :class:`TenantRuntime`
        chain through the very same resolver per dispatch, exactly as the
        simulator's batched faulted loop does.
        """
        from repro.serving.simulator import ServingReport  # circular at module load

        prof = self.profiler
        run_start = perf_counter() if prof.enabled else 0.0
        network = self.evaluator.network
        static = network.is_static
        static_sig = network_state_signature(network, start_s) if static else None
        trace, retry, degrader = ctx.trace, ctx.retry, ctx.degrader

        vectors: List[Optional[_VectorTenant]] = []
        runtimes: List[Optional[TenantRuntime]] = []
        for i, spec in enumerate(tenants):
            shed = list(ctx.shed_intervals[i]) if ctx.shed_intervals[i] else None
            if vectorizable(spec):
                vectors.append(
                    _VectorTenant(spec, start_s, duration_s, shed_intervals=shed)
                )
                runtimes.append(None)
            else:
                vectors.append(None)
                runtimes.append(
                    TenantRuntime(spec, start_s, duration_s, shed_intervals=shed)
                )

        epochs = 0
        cache_hits = 0
        speculated = 0
        plan_sigs: Dict[int, Tuple] = {}
        plan_refs: Dict[int, object] = {}

        def sig_of(plan) -> Tuple:
            sig = plan_sigs.get(id(plan))
            if sig is None:
                sig = plan_signature(plan)
                plan_sigs[id(plan)] = sig
                plan_refs[id(plan)] = plan
            return sig

        def sig_at(t_s: float) -> Tuple[float, ...]:
            return static_sig if static else network_state_signature(network, t_s)

        def vector_oracle(vector: _VectorTenant):
            # The retry-chain walk's latency oracle for a column tenant:
            # the per-tenant memo keyed (effective plan, network state),
            # falling through to a singleton batch evaluation — the same
            # floats the simulator's batched faulted loop feeds the walk.
            def latency_of(plan, t_s: float) -> float:
                nonlocal cache_hits
                key = (id(plan), sig_at(t_s))
                hit = vector.memo.get(key)
                if hit is not None:
                    cache_hits += 1
                    return hit
                latency = self.evaluator.evaluate_plans([plan], t_seconds=t_s)[0].end_to_end_ms
                vector.memo.put(key, latency)
                return latency

            return latency_of

        def runtime_oracle(runtime: TenantRuntime):
            def latency_of(plan, t_s: float) -> float:
                nonlocal cache_hits
                key = (
                    id(plan.model),
                    sig_of(plan),
                    network_state_signature(network, t_s),
                )
                cached = runtime.cached_latency(key)
                if cached is not None:
                    cache_hits += 1
                    return cached
                latency = self.evaluator.evaluate_plans([plan], t_seconds=t_s)[0].end_to_end_ms
                runtime.cache_latency(key, plan.model, latency)
                return latency

            return latency_of

        while True:
            groups: Dict[Tuple[float, ...], List[Tuple]] = {}
            ready: List[Tuple] = []
            dispatched = False
            for index, (vector, runtime) in enumerate(zip(vectors, runtimes)):
                if vector is not None:
                    if vector.done:
                        continue
                    dispatched = True
                    t_next = vector.peek_start()
                    eff = degrader.effective_plan(
                        vector.spec.plan, trace.live_indices(t_next * 1000.0)
                    )
                    signature = sig_at(t_next)
                    latency = vector.memo.get((id(eff), signature))
                    if latency is None:
                        groups.setdefault(signature, []).append(
                            (vector, t_next, eff, index)
                        )
                    else:
                        cache_hits += 1
                        ready.append((vector, signature, latency, index))
                    continue
                if runtime.done:
                    continue
                dispatch = runtime.prepare()
                if dispatch is None:
                    continue
                dispatched = True
                resolved = resolve_faulted_request(
                    dispatch.start_s,
                    dispatch.plan,
                    runtime_oracle(runtime),
                    trace,
                    retry,
                    degrader,
                    index,
                    runtime.pending_ordinal,
                )
                emit_resolution(tracer, runtime.spec.name, dispatch.start_s, resolved)
                runtime.commit_resolved(resolved)
            if not dispatched:
                break
            epochs += 1
            for signature, members in groups.items():
                results = self.evaluator.evaluate_plans(
                    [eff for _, _, eff, _ in members], t_seconds=members[0][1]
                )
                for (vector, t_next, eff, index), result in zip(members, results):
                    latency = result.end_to_end_ms
                    vector.memo.put((id(eff), signature), latency)
                    ready.append((vector, signature, latency, index))
            for vector, signature, latency, index in ready:
                landed = vector.advance_faulted(
                    latency, signature, static, network, self.speculation, trace
                )
                if landed:
                    speculated += landed - 1
                    continue
                # The head request crosses the next membership event: walk
                # its retry chain scalar and commit the single resolution.
                release_s = vector.peek_start()
                resolved = resolve_faulted_request(
                    release_s,
                    vector.spec.plan,
                    vector_oracle(vector),
                    trace,
                    retry,
                    degrader,
                    index,
                    vector.committed,
                )
                emit_resolution(tracer, vector.spec.name, release_s, resolved)
                vector.commit_resolved_head(resolved)

        reports = [
            vector.report() if vector is not None else runtime.report()
            for vector, runtime in zip(vectors, runtimes)
        ]
        if prof.enabled:
            prof.add("engine.run_faulted", perf_counter() - run_start)
            prof.count("engine.epochs", epochs)
            prof.count("engine.cache_hits", cache_hits)
            prof.count("engine.speculated", speculated)
            prof.count(
                "engine.rollbacks",
                sum(v.rollbacks for v in vectors if v is not None),
            )
        return ServingReport(
            tenants=reports,
            start_s=start_s,
            duration_s=duration_s,
            mode=mode,
            epochs=epochs,
            evaluator_kind=type(self.evaluator).__name__,
            cache_hits=cache_hits,
            engine="array",
            speculated=speculated,
        )


__all__ = [
    "ArrayServingEngine",
    "vectorizable",
    "MIN_SPECULATION",
    "DEFAULT_SPECULATION",
]
