"""Open-loop arrival processes and the ``traffic:`` spec grammar.

The paper's measurement protocol is closed-loop (one image in flight); a
serving system faces the opposite regime — requests arrive whether or not
the cluster is ready for them.  This module supplies the arrival side of the
:mod:`repro.serving` simulator: a family of :class:`ArrivalProcess` models
covering the canonical traffic shapes

* :class:`PoissonArrivals` — memoryless steady load,
* :class:`MMPPArrivals` — bursty load (two-state Markov-modulated Poisson:
  long quiet stretches punctuated by high-rate bursts),
* :class:`DiurnalArrivals` — a smooth day/night cycle (inhomogeneous Poisson
  with a raised-cosine rate profile, realised by thinning),
* :class:`TraceArrivals` — replay of explicit arrival offsets (measured
  production traces),

plus the ``traffic:`` spec grammar (:func:`parse_traffic_spec`,
:func:`resolve_traffic`) mirroring the scenario generator's ``gen:`` grammar,
so CLI users and serialised experiment configs name traffic the same way they
name fleets.

Determinism contract: :meth:`ArrivalProcess.arrival_times` is a pure function
of ``(spec fields, duration_s, start_s)`` — every call rebuilds its generator
from the stored seed, so the batched and the reference serving loops (and any
worker process) observe the *identical* arrival sequence.

Where this sits in the stack is drawn in ``docs/architecture.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Union

import numpy as np

#: Prefix of traffic spec strings accepted by :func:`resolve_traffic`.
TRAFFIC_PREFIX = "traffic:"

#: Kinds the grammar understands (``bursty`` is an alias for ``mmpp``).
TRAFFIC_KINDS = ("poisson", "mmpp", "diurnal", "trace")


class ArrivalProcess:
    """Base class: a deterministic generator of open-loop arrival times."""

    def arrival_times(self, duration_s: float, start_s: float = 0.0) -> np.ndarray:
        """Absolute arrival times in ``[start_s, start_s + duration_s)``.

        Strictly increasing-or-equal (ties allowed for trace replays),
        float64, possibly empty.  Pure: repeated calls return identical
        arrays.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {duration_s}")
        offsets = self._offsets(float(duration_s))
        return float(start_s) + offsets

    def _offsets(self, duration_s: float) -> np.ndarray:
        raise NotImplementedError

    @property
    def mean_rate_rps(self) -> float:
        """Long-run average arrival rate (requests/second), for reporting."""
        raise NotImplementedError

    @property
    def spec(self) -> str:
        """Canonical ``traffic:`` spec string; ``parse_traffic_spec(spec)``
        rebuilds an equal process (the round-trip property tests assert it)."""
        raise NotImplementedError


def _exponential_gaps_until(rng: np.random.Generator, rate: float, duration_s: float) -> np.ndarray:
    """Cumulative exponential-gap arrival offsets in ``[0, duration_s)``."""
    if rate <= 0:
        return np.empty(0)
    pieces = []
    t = 0.0
    # Draw in chunks; expected count is rate * duration.  cumsum accumulates
    # in the same left-to-right order a scalar loop would, so the offsets are
    # a pure function of the draw sequence regardless of chunking.
    chunk = max(16, int(rate * duration_s * 1.2) + 8)
    while True:
        cum = t + np.cumsum(rng.exponential(1.0 / rate, size=chunk))
        cut = int(np.searchsorted(cum, duration_s, side="left"))
        pieces.append(cum[:cut])
        if cut < chunk:
            return np.concatenate(pieces)
        t = float(cum[-1])


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate_rps`` requests/second."""

    rate_rps: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    def _offsets(self, duration_s: float) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        return _exponential_gaps_until(rng, self.rate_rps, duration_s)

    @property
    def mean_rate_rps(self) -> float:
        return self.rate_rps

    @property
    def spec(self) -> str:
        return f"{TRAFFIC_PREFIX}poisson,rate={self.rate_rps:g},seed={self.seed}"


@dataclass(frozen=True)
class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (bursty traffic).

    The process alternates between a *quiet* state (rate ``low_rps``, mean
    dwell ``dwell_low_s``) and a *burst* state (rate ``high_rps``, mean dwell
    ``dwell_high_s``); dwell times are exponential and the process starts
    quiet.  ``low_rps`` may be 0 (completely silent between bursts).
    """

    low_rps: float
    high_rps: float
    dwell_low_s: float = 20.0
    dwell_high_s: float = 5.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.low_rps < 0:
            raise ValueError(f"low_rps must be >= 0, got {self.low_rps}")
        if self.high_rps <= self.low_rps:
            raise ValueError(
                f"high_rps must exceed low_rps, got low={self.low_rps} high={self.high_rps}"
            )
        if self.dwell_low_s <= 0 or self.dwell_high_s <= 0:
            raise ValueError(
                f"dwell times must be > 0, got {self.dwell_low_s}, {self.dwell_high_s}"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    def _offsets(self, duration_s: float) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        times = []
        t = 0.0
        burst = False
        while t < duration_s:
            dwell = rng.exponential(self.dwell_high_s if burst else self.dwell_low_s)
            end = min(t + dwell, duration_s)
            rate = self.high_rps if burst else self.low_rps
            if rate > 0:
                offsets = _exponential_gaps_until(rng, rate, end - t)
                times.extend(t + offsets)
            t = end
            burst = not burst
        return np.asarray(times)

    @property
    def mean_rate_rps(self) -> float:
        total = self.dwell_low_s + self.dwell_high_s
        return (self.low_rps * self.dwell_low_s + self.high_rps * self.dwell_high_s) / total

    @property
    def spec(self) -> str:
        return (
            f"{TRAFFIC_PREFIX}mmpp,low={self.low_rps:g},high={self.high_rps:g},"
            f"dwell_low={self.dwell_low_s:g},dwell_high={self.dwell_high_s:g},seed={self.seed}"
        )


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Inhomogeneous Poisson with a raised-cosine day/night rate profile.

    The instantaneous rate is ``base + (peak - base) * (1 - cos(2*pi*x)) / 2``
    where ``x`` is the fraction of ``period_s`` elapsed since the start of
    the run — the cycle starts at the trough (``base``), peaks halfway
    through the period, and is realised exactly by thinning a homogeneous
    Poisson stream at ``peak_rps``.
    """

    base_rps: float
    peak_rps: float
    period_s: float = 3600.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.base_rps < 0:
            raise ValueError(f"base_rps must be >= 0, got {self.base_rps}")
        if self.peak_rps <= 0 or self.peak_rps < self.base_rps:
            raise ValueError(
                f"peak_rps must be positive and >= base_rps, got "
                f"base={self.base_rps} peak={self.peak_rps}"
            )
        if self.period_s <= 0:
            raise ValueError(f"period_s must be > 0, got {self.period_s}")
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    def rate_at(self, offset_s):
        """Instantaneous rate at ``offset_s`` seconds into the run (scalar or array)."""
        x = 2.0 * np.pi * (np.asarray(offset_s) / self.period_s)
        return self.base_rps + (self.peak_rps - self.base_rps) * 0.5 * (1.0 - np.cos(x))

    def _offsets(self, duration_s: float) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        candidates = _exponential_gaps_until(rng, self.peak_rps, duration_s)
        if candidates.size == 0:
            return candidates
        accept = rng.random(candidates.size) * self.peak_rps
        return candidates[accept < self.rate_at(candidates)]

    @property
    def mean_rate_rps(self) -> float:
        return (self.base_rps + self.peak_rps) / 2.0

    @property
    def spec(self) -> str:
        return (
            f"{TRAFFIC_PREFIX}diurnal,base={self.base_rps:g},peak={self.peak_rps:g},"
            f"period={self.period_s:g},seed={self.seed}"
        )


@dataclass(frozen=True)
class TraceArrivals(ArrivalProcess):
    """Replay of explicit arrival offsets (seconds from the run start).

    Offsets must be non-negative and non-decreasing; arrivals beyond the
    simulated duration are dropped.
    """

    offsets_s: Tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        prev = 0.0
        for t in self.offsets_s:
            if t < 0:
                raise ValueError(f"trace offsets must be >= 0, got {t}")
            if t < prev:
                raise ValueError(f"trace offsets must be non-decreasing, got {t} after {prev}")
            prev = t

    def _offsets(self, duration_s: float) -> np.ndarray:
        offsets = np.asarray(self.offsets_s, dtype=np.float64)
        return offsets[offsets < duration_s]

    @property
    def mean_rate_rps(self) -> float:
        if not self.offsets_s:
            return 0.0
        span = max(self.offsets_s[-1], 1e-9)
        return len(self.offsets_s) / span

    @property
    def spec(self) -> str:
        times = ";".join(f"{t:g}" for t in self.offsets_s)
        return f"{TRAFFIC_PREFIX}trace,times={times}"


# ---------------------------------------------------------------------- #
# the traffic: grammar
# ---------------------------------------------------------------------- #


def _parse_float(options: Dict[str, str], key: str, default: float) -> float:
    raw = options.get(key)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"traffic option {key}={raw!r} is not a number") from None


def _parse_int(options: Dict[str, str], key: str, default: int) -> int:
    raw = options.get(key)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"traffic option {key}={raw!r} is not an integer") from None


def _check_keys(kind: str, options: Dict[str, str], known: Tuple[str, ...]) -> None:
    unknown = set(options) - set(known)
    if unknown:
        raise ValueError(
            f"unknown traffic option(s) {sorted(unknown)} for kind {kind!r}; "
            f"known: {sorted(known)}"
        )


def parse_traffic_spec(spec: str) -> ArrivalProcess:
    """Parse the ``traffic:`` grammar into an :class:`ArrivalProcess`.

    Grammar: ``traffic:<kind>[,key=value...]`` (the kind may also be given
    as ``kind=<kind>``), mirroring the scenario generator's ``gen:`` specs.

    ===========  ===============================================================
    kind         keys (defaults)
    ===========  ===============================================================
    ``poisson``  ``rate`` (1), ``seed`` (0)
    ``mmpp``     ``low`` (1), ``high`` (10), ``dwell_low`` (20), ``dwell_high``
                 (5), ``seed`` (0); alias kind: ``bursty``
    ``diurnal``  ``base`` (1), ``peak`` (10), ``period`` (3600), ``seed`` (0)
    ``trace``    ``times`` (required) — ``;``-separated offsets, e.g.
                 ``times=0.1;0.5;1.2``
    ===========  ===============================================================

    Example: ``traffic:mmpp,low=0.5,high=20,dwell_high=3,seed=7``.
    """
    if not isinstance(spec, str) or not spec.startswith(TRAFFIC_PREFIX):
        raise ValueError(f"traffic spec must start with {TRAFFIC_PREFIX!r}, got {spec!r}")
    body = spec[len(TRAFFIC_PREFIX):]
    items = [part.strip() for part in body.split(",") if part.strip()]
    if not items:
        raise ValueError(
            f"empty traffic spec {spec!r}; expected traffic:<kind>[,key=value...] "
            f"with kind one of {sorted(TRAFFIC_KINDS)}"
        )
    options: Dict[str, str] = {}
    kind = None
    for i, item in enumerate(items):
        if "=" not in item:
            if i == 0:
                kind = item
                continue
            raise ValueError(f"malformed traffic option {item!r}; expected key=value")
        key, value = item.split("=", 1)
        key, value = key.strip(), value.strip()
        if key in options or (key == "kind" and kind is not None):
            raise ValueError(f"duplicate traffic option {key!r} in {spec!r}")
        options[key] = value
    kind = kind or options.pop("kind", None)
    if kind is None:
        raise ValueError(
            f"traffic spec {spec!r} names no kind; expected traffic:<kind>[,...] "
            f"with kind one of {sorted(TRAFFIC_KINDS)}"
        )
    kind = kind.lower()
    if kind == "bursty":
        kind = "mmpp"
    if kind == "poisson":
        _check_keys(kind, options, ("rate", "seed"))
        return PoissonArrivals(
            rate_rps=_parse_float(options, "rate", 1.0),
            seed=_parse_int(options, "seed", 0),
        )
    if kind == "mmpp":
        _check_keys(kind, options, ("low", "high", "dwell_low", "dwell_high", "seed"))
        return MMPPArrivals(
            low_rps=_parse_float(options, "low", 1.0),
            high_rps=_parse_float(options, "high", 10.0),
            dwell_low_s=_parse_float(options, "dwell_low", 20.0),
            dwell_high_s=_parse_float(options, "dwell_high", 5.0),
            seed=_parse_int(options, "seed", 0),
        )
    if kind == "diurnal":
        _check_keys(kind, options, ("base", "peak", "period", "seed"))
        return DiurnalArrivals(
            base_rps=_parse_float(options, "base", 1.0),
            peak_rps=_parse_float(options, "peak", 10.0),
            period_s=_parse_float(options, "period", 3600.0),
            seed=_parse_int(options, "seed", 0),
        )
    if kind == "trace":
        _check_keys(kind, options, ("times",))
        raw = options.get("times")
        if raw is None or not raw.strip():
            raise ValueError("traffic:trace requires times=<t0;t1;...> (seconds)")
        try:
            offsets = tuple(float(part) for part in raw.split(";") if part.strip())
        except ValueError:
            raise ValueError(f"traffic:trace times={raw!r} contains a non-number") from None
        return TraceArrivals(offsets_s=offsets)
    raise ValueError(
        f"unknown traffic kind {kind!r}; expected one of {sorted(TRAFFIC_KINDS)} "
        "(or the alias 'bursty')"
    )


def resolve_traffic(traffic: Union[str, ArrivalProcess]) -> ArrivalProcess:
    """Accept a ``traffic:`` spec string or an already-built process."""
    if isinstance(traffic, ArrivalProcess):
        return traffic
    return parse_traffic_spec(traffic)


__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "TraceArrivals",
    "TRAFFIC_PREFIX",
    "TRAFFIC_KINDS",
    "parse_traffic_spec",
    "resolve_traffic",
]
