"""Multi-tenant open-loop serving simulator with an epoch-batched event loop.

:class:`ServingSimulator` drives a set of :class:`~repro.serving.tenants.TenantSpec`
streams against one shared cluster.  Two event loops produce **bit-identical**
results:

* ``mode="reference"`` — the naive loop: every dispatched request is
  evaluated with one scalar ``evaluator.evaluate(plan, t)`` call.  This is
  the semantics oracle (and the baseline the ``bench-serve`` CI gate measures
  against).
* ``mode="batched"`` (default) — the production loop: each *epoch* collects
  every active tenant's next dispatch, groups the dispatches by instantaneous
  network-state signature (:func:`~repro.runtime.batch.network_state_signature`
  — the only thing evaluation depends on besides the plan itself), and
  evaluates each group in a single vectorised
  :meth:`~repro.runtime.batch.BatchPlanEvaluator.evaluate_plans` call — one
  ``(requests, devices)`` array sweep per layer-volume instead of per-request
  Python scheduling.  Equal signatures guarantee equal results, and the batch
  engine is bit-exact with the scalar evaluator, so the batched loop matches
  the reference loop bit for bit; :func:`run_with_parity` asserts exactly
  that.  On a constant (or piecewise-constant) network all concurrent
  dispatches share one signature and steady-state requests become plan-LRU
  hits; on continuously-varying dynamic traces the groups shrink toward
  singletons and the loop degrades gracefully to cached per-request batch
  calls — never to wrong answers.

Tenant chains are independent (each tenant owns one service slot, see
:mod:`repro.serving.tenants`), which is what lets an epoch advance all of
them in lockstep without reordering any tenant's own sequential decisions.

Pass a :class:`~repro.runtime.shard.ShardedPlanEvaluator` as the evaluator to
fan epoch batches out to its persistent worker pool (small epochs stay
in-process automatically via its ``min_shard_size`` rule).

``run(..., engine="array")`` swaps the per-request Python bookkeeping for
the array-native column time-wheel of :mod:`repro.serving.engine` — same
report bit for bit (that *is* its contract, asserted by
``run_with_parity(..., engine="array")``), roughly an order of magnitude
faster on large tenant fleets.

Passing a :class:`~repro.serving.dispatch.ClusterPolicy` replaces the
independent-tenants model with **shared-fleet contention**: requests reach
persistent per-device lanes in the policy's discipline order (FIFO /
deadline-slack / WFQ, optionally capped by ``max_inflight``) and queue on
each other's lane occupancy (:mod:`repro.runtime.contention`).  The same
two-loop discipline applies there: the reference mode re-walks every request
scalar-ly, the batched mode groups equal ``(network state, lane occupancy)``
signatures through a contended-schedule memo, and :func:`run_with_parity`
asserts the two bit-identical — fleet breakdown included.

With ``policy.admission="predictive"`` the contended loop consults the
evaluator's *prediction* before committing each request and denies (or
re-queues) those whose predicted completion already misses the SLO deadline
— deny-at-admission, the entry point of the predictive control plane
(:mod:`repro.serving.control`).  The subsystem map and the full set of
parity contracts live in ``docs/architecture.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.metrics import MetricsRegistry, record_serving_report
from repro.obs.profile import NULL_PROFILER
from repro.obs.trace import NULL_TRACER, Tracer
from repro.runtime.batch import network_state_signature, plan_signature
from repro.runtime.contention import (
    ContendedOutcome,
    ContentionAwareEvaluator,
    FleetLoadReport,
    SharedFleetState,
    truncated_outcome,
)
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.faults import (
    ChurnSpec,
    DegradationPolicy,
    FaultContext,
    FaultReport,
    FaultTrace,
    RetryPolicy,
    build_fault_context,
    build_fault_report,
    emit_fault_timeline,
    emit_resolution,
    plan_devices,
    resolve_faulted_request,
)
from repro.serving.dispatch import ClusterPolicy, FleetDispatcher
from repro.serving.tenants import TenantReport, TenantRuntime, TenantSpec
from repro.utils.cache import LRUCache

#: Event-loop modes.
MODES = ("batched", "reference")

#: Execution engines: ``"object"`` drives the per-tenant
#: :class:`TenantRuntime` loops above; ``"array"`` routes eligible tenants
#: through the vectorised column time-wheel of :mod:`repro.serving.engine`
#: (bit-identical by the same parity contract, ~an order of magnitude
#: faster on large fleets).
ENGINES = ("object", "array")


@dataclass
class ServingReport:
    """Outcome of one serving run: per-tenant reports plus aggregates."""

    tenants: List[TenantReport]
    start_s: float
    duration_s: Optional[float]
    mode: str
    epochs: int = 0
    evaluator_kind: str = ""
    #: Shared-fleet contention (set when a :class:`ClusterPolicy` drove the run).
    contention: bool = False
    discipline: str = ""
    max_inflight: Optional[int] = None
    #: Evaluations skipped by caching (per-tenant plan cache in the
    #: independent batched loop; the contended-schedule memo under contention).
    cache_hits: int = 0
    #: Per-device lane-utilisation and queueing-delay breakdown (contended runs).
    fleet: Optional[FleetLoadReport] = None
    #: Which execution engine produced the run (``"object"`` or ``"array"``).
    engine: str = "object"
    #: Requests committed by epoch speculation without their own evaluation
    #: (array engine only; informational, not part of the parity contract).
    speculated: int = 0
    #: Admission mode the run used (``"none"`` or ``"predictive"``) and what
    #: predictive admission did with predicted misses (``"reject"`` /
    #: ``"requeue"``; empty for non-predictive runs).
    admission: str = "none"
    on_predicted_miss: str = ""
    #: Churn outcome summary (set when a fault trace drove the run).
    faults: Optional[FaultReport] = None

    def tenant(self, name: str) -> TenantReport:
        for report in self.tenants:
            if report.name == name:
                return report
        raise KeyError(f"no tenant {name!r}; tenants: {[t.name for t in self.tenants]}")

    @property
    def total_completed(self) -> int:
        return sum(t.num_completed for t in self.tenants)

    @property
    def total_arrivals(self) -> int:
        return sum(t.num_arrivals for t in self.tenants)

    @property
    def total_rejected(self) -> int:
        return sum(t.num_rejected for t in self.tenants)

    @property
    def total_denied(self) -> int:
        """Requests dropped by predictive admission across all tenants."""
        return sum(t.num_denied for t in self.tenants)

    @property
    def total_shed(self) -> int:
        """Arrivals shed by the degradation policy across all tenants."""
        return sum(t.num_shed for t in self.tenants)

    @property
    def total_abandoned(self) -> int:
        """Requests abandoned after exhausting their retry budget."""
        return sum(t.num_abandoned for t in self.tenants)

    @property
    def makespan_s(self) -> float:
        """Last completion relative to the run start."""
        ends = [t.makespan_s for t in self.tenants if t.num_completed]
        return max(ends) - self.start_s if ends else 0.0

    @property
    def throughput_rps(self) -> float:
        """Aggregate completed requests per second of simulated time."""
        span = self.makespan_s
        return self.total_completed / span if span > 0 else 0.0

    def response_percentile_ms(self, q: float) -> float:
        """Percentile of the response time pooled over every tenant."""
        pooled = [t.response_ms for t in self.tenants if t.num_completed]
        if not pooled:
            return 0.0
        return float(np.percentile(np.concatenate(pooled), q))

    @property
    def deadline_miss_rate(self) -> float:
        """Pooled miss fraction over tenants that declare an SLO."""
        missed = total = 0
        for t in self.tenants:
            if t.slo is not None:
                missed += int(t.deadline_missed.sum())
                total += t.num_completed
        return missed / total if total else 0.0

    @property
    def slo_violations(self) -> List[str]:
        """Names of tenants whose miss rate exceeded their SLO target."""
        return [t.name for t in self.tenants if not t.slo_satisfied]

    def to_dict(self) -> Dict:
        """Machine-readable dump (the shape ``repro serve --report-json`` writes).

        Mirrors the ``BENCH_*.json`` artifact style: plain floats/ints at the
        top level, one row per tenant, and the fleet breakdown when the run
        modelled contention.
        """
        out: Dict = {
            "mode": self.mode,
            "engine": self.engine,
            "speculated": int(self.speculated),
            "evaluator_kind": self.evaluator_kind,
            "start_s": float(self.start_s),
            "duration_s": None if self.duration_s is None else float(self.duration_s),
            "epochs": int(self.epochs),
            "cache_hits": int(self.cache_hits),
            "contention": bool(self.contention),
            "discipline": self.discipline,
            "max_inflight": self.max_inflight,
            "admission": self.admission,
            "on_predicted_miss": self.on_predicted_miss,
            "total_arrivals": int(self.total_arrivals),
            "total_completed": int(self.total_completed),
            "total_rejected": int(self.total_rejected),
            "total_denied": int(self.total_denied),
            "total_shed": int(self.total_shed),
            "total_abandoned": int(self.total_abandoned),
            "makespan_s": float(self.makespan_s),
            "throughput_rps": float(self.throughput_rps),
            "p50_response_ms": float(self.response_percentile_ms(50)),
            "p95_response_ms": float(self.response_percentile_ms(95)),
            "p99_response_ms": float(self.response_percentile_ms(99)),
            "deadline_miss_rate": float(self.deadline_miss_rate),
            "slo_violations": list(self.slo_violations),
            "tenants": [
                {
                    "name": t.name,
                    "deadline_ms": None if t.slo is None else float(t.slo.deadline_ms),
                    "num_arrivals": int(t.num_arrivals),
                    "num_completed": int(t.num_completed),
                    "num_rejected": int(t.num_rejected),
                    "num_denied": int(t.num_denied),
                    "throughput_rps": float(t.throughput_rps(self.start_s)),
                    "mean_latency_ms": float(t.mean_latency_ms),
                    "mean_response_ms": float(t.mean_response_ms),
                    "p50_response_ms": float(t.p50_response_ms),
                    "p95_response_ms": float(t.p95_response_ms),
                    "p99_response_ms": float(t.p99_response_ms),
                    "deadline_miss_rate": float(t.deadline_miss_rate),
                    "slo_satisfied": bool(t.slo_satisfied),
                    "num_replans": len(t.replan_times_s),
                    "max_queue_depth": int(t.max_queue_depth),
                    "final_method": t.final_method,
                    "num_shed": int(t.num_shed),
                    "num_abandoned": int(t.num_abandoned),
                    "num_lost_attempts": int(t.num_lost_attempts),
                    "num_retried": int(t.num_retried),
                    "retry_added_ms": float(t.retry_added_ms),
                }
                for t in self.tenants
            ],
        }
        if self.fleet is not None:
            out["fleet"] = self.fleet.to_dict()
        if self.faults is not None:
            out["faults"] = self.faults.to_dict()
        return out


def _emit_contended_commit(
    tracer: Tracer,
    lane_keys,
    device_ids: List[str],
    tenant_name: str,
    release_ms: float,
    outcome: ContendedOutcome,
    truncated: bool = False,
) -> None:
    """Emit one committed contended schedule: a dispatch instant plus one
    busy span per lane the request occupied.

    Both modes run this at the very commit sites of the shared contended
    loop on the same ``ContendedOutcome`` floats (a memo hit replays the
    fresh walk's floats bit for bit), so the emitted events inherit the
    parity contract.  Lane spans are placed at ``release + end_rel - busy``
    — the contiguous busy window the outcome's lane accounting records.
    """
    track = f"tenant:{tenant_name}"
    args = {
        "gate_wait_ms": outcome.gate_wait_ms,
        "latency_ms": outcome.latency_ms,
        "contended": outcome.contended,
    }
    if truncated:
        args["truncated"] = True
    tracer.instant(release_ms, track, "request", "dispatch", **args)
    for (device, role), end_rel, busy, wait, jobs in zip(
        lane_keys,
        outcome.lane_end_rel,
        outcome.lane_busy_ms,
        outcome.lane_wait_ms,
        outcome.lane_jobs,
    ):
        if not jobs or busy <= 0.0:
            continue
        tracer.span(
            release_ms + end_rel - busy,
            busy,
            f"lane:{device_ids[device]}:{role}",
            "lane",
            role,
            tenant=tenant_name,
            wait_ms=wait,
            jobs=jobs,
        )


class ServingSimulator:
    """Serves tenant request streams through a plan evaluator.

    Parameters
    ----------
    evaluator:
        The evaluator bound to the shared cluster.  ``mode="batched"``
        requires an ``evaluate_plans`` batch API
        (:class:`~repro.runtime.batch.BatchPlanEvaluator` or
        :class:`~repro.runtime.shard.ShardedPlanEvaluator`); the reference
        mode accepts any :class:`~repro.runtime.evaluator.PlanEvaluator`.
    """

    def __init__(self, evaluator: PlanEvaluator) -> None:
        self.evaluator = evaluator
        #: Wall-clock profiler (see :mod:`repro.obs.profile`); attach a live
        #: one for ``--profile``.  Never touches simulated values.
        self.profiler = NULL_PROFILER

    # ------------------------------------------------------------------ #
    def _check(
        self,
        tenants: Sequence[TenantSpec],
        duration_s: Optional[float],
        mode: str,
        policy: Optional[ClusterPolicy] = None,
        engine: str = "object",
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if engine == "array" and mode == "reference":
            raise ValueError(
                "the array engine has no reference mode — it is the optimised "
                "path whose oracle is engine='object', mode='reference' "
                "(see run_with_parity)"
            )
        if engine == "array" and policy is None and not hasattr(self.evaluator, "evaluate_plans"):
            raise TypeError(
                "the array engine needs an evaluator with evaluate_plans "
                "(BatchPlanEvaluator / ShardedPlanEvaluator); "
                f"got {type(self.evaluator).__name__}"
            )
        if policy is None and mode == "batched" and not hasattr(self.evaluator, "evaluate_plans"):
            # Contended serving walks requests through the scalar engine in
            # both modes (the memo, not evaluate_plans, provides the batching),
            # so the batch API is only required for independent batched runs.
            raise TypeError(
                "batched serving needs an evaluator with evaluate_plans "
                "(BatchPlanEvaluator / ShardedPlanEvaluator); "
                f"got {type(self.evaluator).__name__} — use mode='reference' for it"
            )
        if not tenants:
            raise ValueError("at least one tenant is required")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        n = len(self.evaluator.devices)
        for spec in tenants:
            if spec.plan.num_devices != n:
                raise ValueError(
                    f"tenant {spec.name!r}: plan covers {spec.plan.num_devices} "
                    f"devices, cluster has {n}"
                )
            if not spec.closed_loop and duration_s is None:
                raise ValueError(
                    f"tenant {spec.name!r} is open-loop; pass duration_s to bound "
                    "its arrival horizon"
                )
        if duration_s is not None and duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {duration_s}")

    def run(
        self,
        tenants: Sequence[TenantSpec],
        duration_s: Optional[float] = None,
        start_s: float = 0.0,
        mode: str = "batched",
        policy: Optional[ClusterPolicy] = None,
        engine: str = "object",
        schedule_memo: Optional[LRUCache] = None,
        faults: Union[str, ChurnSpec, FaultTrace, None] = None,
        retry: Optional[RetryPolicy] = None,
        degradation: Optional[DegradationPolicy] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> ServingReport:
        """Simulate the tenants' traffic and return the serving report.

        ``duration_s`` bounds the open-loop arrival horizon (arrivals land in
        ``[start_s, start_s + duration_s)``); every admitted request is then
        served to completion, so the makespan may exceed the duration.
        Closed-loop tenants are bounded by their own ``max_requests`` /
        ``max_duration_s`` instead.

        ``policy`` switches on shared-fleet contention: requests are
        dispatched onto persistent per-device lanes in the policy's
        discipline order and queue on each other's lane occupancy (see
        :mod:`repro.runtime.contention`).  Without a policy every tenant's
        requests see an idle fleet at dispatch — the independent-tenants
        model of earlier revisions, reproduced exactly.

        ``engine="array"`` runs contention-free serving through the
        vectorised column time-wheel (:mod:`repro.serving.engine`) — same
        results bit for bit, per-request Python bookkeeping replaced by
        array passes and epoch speculation.  Contended runs keep the
        canonical sequential dispatcher order (the contended loop already
        batches via its schedule memo and the vectorised lane residuals).

        ``schedule_memo`` shares an externally-owned contended-schedule LRU
        across runs (capacity-planner probe reuse); it requires a contended
        batched run — the reference loop must stay memo-free to remain the
        oracle.  (Sound under churn too: fault decisions happen *outside*
        the memoized walk, whose key already captures every walk input.)

        ``faults`` switches on fleet churn: a ``churn:`` spec string,
        :class:`~repro.runtime.faults.ChurnSpec` or
        :class:`~repro.runtime.faults.FaultTrace` scheduling device
        join/leave/crash events.  Requests whose plan touches a crashed
        device mid-flight are failed at detection and routed through
        ``retry`` (default :class:`~repro.runtime.faults.RetryPolicy`);
        ``degradation`` sheds lowest-weight tenants' arrivals while the live
        fleet fraction is below its threshold.  All decisions are pure
        functions shared by every loop, so churn lives under the same
        bit-exact parity contract as everything else.

        ``tracer`` collects the run's deterministic trace (see
        :mod:`repro.obs.trace`): the request lifecycle is derived from the
        committed report, while facts the report drops (contended lane
        spans, requeues, retry chains, the fault timeline) are emitted live
        from code paths shared by every mode — so the trace itself is under
        the parity contract.  ``metrics`` is populated from the committed
        report via :func:`repro.obs.metrics.record_serving_report`.  Both
        default to off and cost nothing when off.
        """
        self._check(tenants, duration_s, mode, policy, engine)
        if schedule_memo is not None and (policy is None or mode != "batched"):
            raise ValueError(
                "schedule_memo requires a contended batched run "
                f"(got policy={policy!r}, mode={mode!r})"
            )
        fault_ctx = build_fault_context(
            faults,
            retry,
            degradation,
            len(self.evaluator.devices),
            [spec.weight for spec in tenants],
            start_s,
            duration_s,
        )
        tracer = NULL_TRACER if tracer is None else tracer
        if engine == "array" and policy is None:
            from repro.serving.engine import ArrayServingEngine  # deferred: circular

            array_engine = ArrayServingEngine(self.evaluator)
            array_engine.profiler = self.profiler
            report = array_engine.run(
                tenants,
                duration_s=duration_s,
                start_s=start_s,
                mode=mode,
                fault_ctx=fault_ctx,
                tracer=tracer,
            )
        else:
            runtimes = [
                TenantRuntime(
                    spec,
                    start_s,
                    duration_s,
                    shed_intervals=(
                        list(fault_ctx.shed_intervals[i]) if fault_ctx is not None else None
                    ),
                )
                for i, spec in enumerate(tenants)
            ]
            if policy is not None:
                report = self._run_contended(
                    runtimes, duration_s, start_s, mode, policy, engine,
                    schedule_memo, fault_ctx, tracer,
                )
            elif fault_ctx is not None:
                report = self._run_independent_faulted(
                    runtimes, duration_s, start_s, mode, fault_ctx, tracer
                )
            else:
                report = self._run_independent(runtimes, duration_s, start_s, mode)
        if fault_ctx is not None:
            report.faults = build_fault_report(fault_ctx, report.tenants)
        if tracer.enabled:
            # O(1): lifecycle events derive lazily on first trace read.
            tracer.defer_report(report)
            if fault_ctx is not None:
                emit_fault_timeline(tracer, fault_ctx.trace)
        if metrics is not None:
            record_serving_report(metrics, report)
        return report

    def _run_independent(
        self,
        runtimes: List[TenantRuntime],
        duration_s: Optional[float],
        start_s: float,
        mode: str,
    ) -> ServingReport:
        """The contention-free loops: each request sees an idle fleet."""
        epochs = 0
        cache_hits = 0
        network = self.evaluator.network
        # Plan signatures memoized by object identity for the run (plans are
        # immutable and serve thousands of dispatches; the dict also pins
        # ids against recycling).
        plan_sigs: Dict[int, Tuple] = {}
        plan_refs: Dict[int, object] = {}

        def sig_of(plan) -> Tuple:
            sig = plan_sigs.get(id(plan))
            if sig is None:
                sig = plan_signature(plan)
                plan_sigs[id(plan)] = sig
                plan_refs[id(plan)] = plan
            return sig
        while True:
            dispatches: List[Tuple[TenantRuntime, object]] = []
            for runtime in runtimes:
                if runtime.done:
                    continue
                dispatch = runtime.prepare()
                if dispatch is not None:
                    dispatches.append((runtime, dispatch))
            if not dispatches:
                break
            epochs += 1
            if mode == "reference":
                for runtime, dispatch in dispatches:
                    result = self.evaluator.evaluate(dispatch.plan, t_seconds=dispatch.start_s)
                    runtime.commit(result.end_to_end_ms)
                continue
            # Batched: group the epoch's dispatches by instantaneous network
            # state.  Within a group the scalar evaluator would compute the
            # very same schedule for every member time, so evaluating the
            # group at any member time is exact — one vectorised call per
            # distinct network state per epoch.  Dispatches whose (plan,
            # network-state) pair this tenant has already served skip the
            # evaluator entirely via the per-tenant plan cache (replaying a
            # float an identical earlier dispatch produced — exact for the
            # same reason the grouping is).
            groups: Dict[Tuple[float, ...], List[Tuple[TenantRuntime, object, Tuple]]] = {}
            for runtime, dispatch in dispatches:
                signature = network_state_signature(network, dispatch.start_s)
                key = (id(dispatch.plan.model), sig_of(dispatch.plan), signature)
                cached = runtime.cached_latency(key)
                if cached is not None:
                    cache_hits += 1
                    runtime.commit(cached)
                    continue
                groups.setdefault(signature, []).append((runtime, dispatch, key))
            for members in groups.values():
                results = self.evaluator.evaluate_plans(
                    [dispatch.plan for _, dispatch, _ in members],
                    t_seconds=members[0][1].start_s,
                )
                for (runtime, dispatch, key), result in zip(members, results):
                    runtime.cache_latency(key, dispatch.plan.model, result.end_to_end_ms)
                    runtime.commit(result.end_to_end_ms)
        if self.profiler.enabled:
            self.profiler.count("serving.epochs", epochs)
            self.profiler.count("serving.tenant_cache_hits", cache_hits)
        return ServingReport(
            tenants=[runtime.report() for runtime in runtimes],
            start_s=start_s,
            duration_s=duration_s,
            mode=mode,
            epochs=epochs,
            evaluator_kind=type(self.evaluator).__name__,
            cache_hits=cache_hits,
        )

    def _run_independent_faulted(
        self,
        runtimes: List[TenantRuntime],
        duration_s: Optional[float],
        start_s: float,
        mode: str,
        fault_ctx: FaultContext,
        tracer: Tracer = NULL_TRACER,
    ) -> ServingReport:
        """Contention-free serving on a churning fleet.

        Each dispatch is resolved through the shared pure retry-chain walk
        (:func:`~repro.runtime.faults.resolve_faulted_request`) and committed
        once with its final outcome.  The only floats entering the decisions
        come from the mode's latency oracle — the scalar evaluator here, the
        (bit-exact) batch engine plus per-tenant cache in batched mode — so
        both modes resolve every request identically.  Retry attempts are
        evaluated under the network state at their own release instant,
        exactly as the reference loop would re-dispatch them.
        """
        epochs = 0
        cache_hits = 0
        network = self.evaluator.network
        plan_sigs: Dict[int, Tuple] = {}
        plan_refs: Dict[int, object] = {}

        def sig_of(plan) -> Tuple:
            sig = plan_sigs.get(id(plan))
            if sig is None:
                sig = plan_signature(plan)
                plan_sigs[id(plan)] = sig
                plan_refs[id(plan)] = plan
            return sig

        def reference_latency(plan, t_s: float) -> float:
            return self.evaluator.evaluate(plan, t_seconds=t_s).end_to_end_ms

        def batched_latency_for(runtime: TenantRuntime):
            def latency_of(plan, t_s: float) -> float:
                nonlocal cache_hits
                signature = network_state_signature(network, t_s)
                key = (id(plan.model), sig_of(plan), signature)
                cached = runtime.cached_latency(key)
                if cached is not None:
                    cache_hits += 1
                    return cached
                result = self.evaluator.evaluate_plans([plan], t_seconds=t_s)[0]
                runtime.cache_latency(key, plan.model, result.end_to_end_ms)
                return result.end_to_end_ms

            return latency_of

        while True:
            dispatches: List[Tuple[int, TenantRuntime, object]] = []
            for tenant_index, runtime in enumerate(runtimes):
                if runtime.done:
                    continue
                dispatch = runtime.prepare()
                if dispatch is not None:
                    dispatches.append((tenant_index, runtime, dispatch))
            if not dispatches:
                break
            epochs += 1
            for tenant_index, runtime, dispatch in dispatches:
                latency_of = (
                    reference_latency
                    if mode == "reference"
                    else batched_latency_for(runtime)
                )
                resolved = resolve_faulted_request(
                    dispatch.start_s,
                    dispatch.plan,
                    latency_of,
                    fault_ctx.trace,
                    fault_ctx.retry,
                    fault_ctx.degrader,
                    tenant_index,
                    runtime.pending_ordinal,
                )
                emit_resolution(tracer, runtime.spec.name, dispatch.start_s, resolved)
                runtime.commit_resolved(resolved)
        if self.profiler.enabled:
            self.profiler.count("serving.epochs", epochs)
            self.profiler.count("serving.tenant_cache_hits", cache_hits)
        return ServingReport(
            tenants=[runtime.report() for runtime in runtimes],
            start_s=start_s,
            duration_s=duration_s,
            mode=mode,
            epochs=epochs,
            evaluator_kind=type(self.evaluator).__name__,
            cache_hits=cache_hits,
        )

    def _run_contended(
        self,
        runtimes: List[TenantRuntime],
        duration_s: Optional[float],
        start_s: float,
        mode: str,
        policy: ClusterPolicy,
        engine: str = "object",
        schedule_memo: Optional[LRUCache] = None,
        fault_ctx: Optional[FaultContext] = None,
        tracer: Tracer = NULL_TRACER,
    ) -> ServingReport:
        """The shared-fleet loops: requests queue on each other's lanes.

        Both modes drive the identical dispatcher order and the identical
        scalar schedule arithmetic; ``batched`` additionally memoizes
        contended schedules on their ``(model, plan, network state, gate,
        lane residuals)`` signature, so equal-signature dispatches are
        grouped into one evaluation.  ``reference`` re-walks every request
        and stays the semantics oracle.

        The dispatch order is inherently sequential (each selection depends
        on every earlier completion), so ``engine="array"`` changes nothing
        about this loop's control flow — the array wins come from the
        vectorised lane residuals inside
        :class:`~repro.runtime.contention.SharedFleetState` — and the value
        is only recorded on the report.

        Predictive admission (``policy.admission="predictive"``) splits each
        step into predict → decide → commit: the evaluator's prediction *is*
        the schedule that would be committed, so a denied request costs no
        fleet state and an admitted one records exactly its predicted
        response.  Both modes run the identical decision code on identical
        floats (a memo hit replays the fresh walk's floats), preserving
        bit-parity.

        Fleet churn (``fault_ctx``) adds a replan → predict → crash-check
        step: every selection replans around the instant's dead devices
        (:meth:`~repro.runtime.faults.PlanDegrader.effective_plan`), and a
        predicted schedule crossing a crash of a touched device is committed
        *truncated at the crash* (the partial lane occupancy and the gate
        slot it held until dying are real), then retried after backoff
        through the normal pending queue or abandoned when the budget is
        spent.  Predictions are crash-unaware by design — the admission gate
        models what the controller can know at release time — and every
        churn decision is the same pure function in both modes.
        """
        engine_label = engine
        fleet = SharedFleetState(len(self.evaluator.devices), window_ms=policy.window_ms)
        engine = ContentionAwareEvaluator(
            self.evaluator,
            fleet=fleet,
            max_inflight=policy.max_inflight,
            memoize=(mode == "batched"),
            cache_size=policy.memo_size,
            memo=schedule_memo,
        )
        engine.profiler = self.profiler
        # Trace emission context: both modes commit identical outcomes at
        # these very sites, so live lane/dispatch events stay under parity.
        lane_keys = engine.fleet.lane_keys
        device_ids = [d.device_id for d in engine.devices]
        predictive = policy.admission == "predictive"
        dispatcher = FleetDispatcher(policy.discipline, [rt.spec for rt in runtimes])
        pending: Dict[int, object] = {}
        for index, runtime in enumerate(runtimes):
            dispatch = runtime.prepare()
            if dispatch is not None:
                pending[index] = dispatch
        while pending:
            # Completions at/below every pending release can never gate a
            # future request (per-tenant release times are non-decreasing).
            engine.fleet.prune_completions(
                min(d.start_s for d in pending.values()) * 1000.0
            )
            index = dispatcher.select(
                pending, horizon_s=engine.fleet.busy_until_ms() / 1000.0
            )
            dispatch = pending.pop(index)
            release_ms = dispatch.start_s * 1000.0
            plan = dispatch.plan
            if fault_ctx is not None:
                # Replan around devices dead at this release (graceful leaves
                # and crashes alike); restored automatically once they rejoin.
                plan = fault_ctx.degrader.effective_plan(
                    plan, fault_ctx.trace.live_indices(release_ms)
                )
            outcome = engine.predict(
                plan, release_ms=release_ms, t_seconds=dispatch.start_s
            )
            slo = runtimes[index].spec.slo
            if predictive and slo is not None:
                # The exact response-time arithmetic TenantRuntime.commit
                # would record — the prediction and the commit agree bit for
                # bit, so an admitted request never surprises its own gate.
                completion_s = dispatch.start_s + outcome.latency_ms / 1000.0
                predicted_response_ms = (completion_s - dispatch.arrival_s) * 1000.0
                if predicted_response_ms > slo.deadline_ms:
                    if policy.on_predicted_miss == "requeue":
                        next_event_ms = engine.fleet.next_free_event_ms(release_ms)
                        new_start_s = (
                            next_event_ms / 1000.0 if next_event_ms is not None else None
                        )
                        if new_start_s is not None and new_start_s > dispatch.start_s:
                            pending[index] = runtimes[index].defer_pending(new_start_s)
                            if tracer.enabled:
                                tracer.instant(
                                    release_ms,
                                    f"tenant:{runtimes[index].spec.name}",
                                    "admission",
                                    "requeue",
                                    new_start_ms=new_start_s * 1000.0,
                                    predicted_response_ms=predicted_response_ms,
                                )
                            continue
                        # No later lane-free event: the fleet is (effectively)
                        # idle and the deadline is unmeetable — deny.
                    runtimes[index].deny_pending()
                    if not runtimes[index].done:
                        dispatch = runtimes[index].prepare()
                        if dispatch is not None:
                            pending[index] = dispatch
                    continue
            if fault_ctx is not None:
                crash = fault_ctx.trace.first_crash_touching(
                    plan_devices(plan), release_ms, release_ms + outcome.latency_ms
                )
                if crash is not None:
                    # Failed at detection: the request held lanes and the
                    # admission gate until the crash — commit the truncated
                    # schedule, then retry through the normal pending queue
                    # (re-predicted and re-admitted at its new release) or
                    # abandon once the budget is spent.
                    runtime = runtimes[index]
                    cut = truncated_outcome(outcome, crash.t_ms - release_ms)
                    engine.commit(cut, release_ms)
                    dispatcher.account(index, cut.latency_ms)
                    if tracer.enabled:
                        _emit_contended_commit(
                            tracer, lane_keys, device_ids, runtime.spec.name,
                            release_ms, cut, truncated=True,
                        )
                    attempt = runtime.pending_attempt
                    delay_ms = fault_ctx.retry.delay_ms(
                        attempt, index, runtime.pending_ordinal
                    )
                    new_start_ms = crash.t_ms + delay_ms
                    timed_out = (
                        fault_ctx.retry.timeout_ms is not None
                        and new_start_ms - runtime.pending_first_start_s * 1000.0
                        > fault_ctx.retry.timeout_ms
                    )
                    if attempt >= fault_ctx.retry.max_attempts or timed_out:
                        runtime.abandon_pending(crash.t_ms / 1000.0, lost=1)
                        if not runtime.done:
                            dispatch = runtime.prepare()
                            if dispatch is not None:
                                pending[index] = dispatch
                    else:
                        pending[index] = runtime.retry_pending(new_start_ms / 1000.0)
                        if tracer.enabled:
                            tracer.instant(
                                crash.t_ms,
                                f"tenant:{runtime.spec.name}",
                                "fault",
                                "retry",
                                attempt=attempt,
                                delay_ms=delay_ms,
                            )
                    continue
            engine.commit(outcome, release_ms)
            if tracer.enabled:
                _emit_contended_commit(
                    tracer, lane_keys, device_ids, runtimes[index].spec.name,
                    release_ms, outcome,
                )
            runtimes[index].commit(outcome.latency_ms)
            dispatcher.account(index, outcome.latency_ms)
            if not runtimes[index].done:
                dispatch = runtimes[index].prepare()
                if dispatch is not None:
                    pending[index] = dispatch
        reports = [runtime.report() for runtime in runtimes]
        ends = [t.makespan_s for t in reports if t.num_completed]
        makespan_ms = (max(ends) - start_s) * 1000.0 if ends else 0.0
        fleet_report = engine.fleet.load_report(
            makespan_ms, device_ids=[d.device_id for d in engine.devices]
        )
        return ServingReport(
            tenants=reports,
            start_s=start_s,
            duration_s=duration_s,
            mode=mode,
            epochs=engine.evaluations,
            evaluator_kind=type(self.evaluator).__name__,
            contention=True,
            discipline=policy.discipline,
            max_inflight=policy.max_inflight,
            cache_hits=engine.memo_hits,
            fleet=fleet_report,
            engine=engine_label,
            admission=policy.admission,
            on_predicted_miss=(policy.on_predicted_miss if predictive else ""),
        )


# ---------------------------------------------------------------------- #
# parity mode
# ---------------------------------------------------------------------- #


@dataclass
class ParityMismatch(AssertionError):
    """Raised when the batched loop diverges from the reference loop."""

    details: List[str] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - only printed on failure
        return "batched serving loop diverged from the reference loop:\n" + "\n".join(
            f"  - {d}" for d in self.details
        )


def _compare_tenant(a: TenantReport, b: TenantReport, errors: List[str]) -> None:
    pairs = [
        ("arrival_s", a.arrival_s, b.arrival_s),
        ("start_s", a.start_s, b.start_s),
        ("completion_s", a.completion_s, b.completion_s),
        ("latency_ms", a.latency_ms, b.latency_ms),
        ("response_ms", a.response_ms, b.response_ms),
        ("deadline_missed", a.deadline_missed, b.deadline_missed),
        ("queue_depth_series", a.queue_depth_series, b.queue_depth_series),
    ]
    for label, left, right in pairs:
        if left.shape != right.shape or not np.array_equal(left, right):
            errors.append(f"tenant {a.name!r}: {label} differs")
    for label, left, right in [
        ("num_arrivals", a.num_arrivals, b.num_arrivals),
        ("num_rejected", a.num_rejected, b.num_rejected),
        ("rejected_times_s", a.rejected_times_s, b.rejected_times_s),
        ("num_denied", a.num_denied, b.num_denied),
        ("denied_times_s", a.denied_times_s, b.denied_times_s),
        ("replan_times_s", a.replan_times_s, b.replan_times_s),
        ("final_method", a.final_method, b.final_method),
        ("busy_until_s", a.busy_until_s, b.busy_until_s),
        ("num_shed", a.num_shed, b.num_shed),
        ("shed_times_s", a.shed_times_s, b.shed_times_s),
        ("num_abandoned", a.num_abandoned, b.num_abandoned),
        ("abandoned_times_s", a.abandoned_times_s, b.abandoned_times_s),
        ("num_lost_attempts", a.num_lost_attempts, b.num_lost_attempts),
        ("num_retried", a.num_retried, b.num_retried),
        ("retry_added_ms", a.retry_added_ms, b.retry_added_ms),
    ]:
        if left != right:
            errors.append(f"tenant {a.name!r}: {label} differs ({left!r} != {right!r})")


def _compare_fleet(
    a: Optional[FleetLoadReport], b: Optional[FleetLoadReport], errors: List[str]
) -> None:
    if a is None and b is None:
        return
    if (a is None) != (b is None):
        errors.append("one report has a fleet breakdown, the other does not")
        return
    if a.device_ids != b.device_ids:
        errors.append(f"fleet device ids differ: {a.device_ids} != {b.device_ids}")
        return
    array_fields = [
        f"{role}_{kind}"
        for role in ("compute", "send", "recv")
        for kind in ("busy_ms", "wait_ms", "jobs")
    ]
    for name in array_fields:
        left, right = getattr(a, name), getattr(b, name)
        if left.shape != right.shape or not np.array_equal(left, right):
            errors.append(f"fleet {name} differs")
    for name in ("makespan_ms", "requests", "contended_requests", "gate_wait_ms"):
        left, right = getattr(a, name), getattr(b, name)
        if left != right:
            errors.append(f"fleet {name} differs ({left!r} != {right!r})")
    if (a.series is None) != (b.series is None):
        errors.append("one fleet report has a windowed series, the other does not")
    elif a.series is not None:
        if a.series.window_ms != b.series.window_ms:
            errors.append(
                f"fleet series window_ms differs "
                f"({a.series.window_ms!r} != {b.series.window_ms!r})"
            )
        series_fields = [
            f"{role}_{kind}_ms"
            for role in ("compute", "send", "recv")
            for kind in ("busy", "wait")
        ] + ["inflight_ms", "released"]
        for name in series_fields:
            left, right = getattr(a.series, name), getattr(b.series, name)
            if left.shape != right.shape or not np.array_equal(left, right):
                errors.append(f"fleet series {name} differs")


def assert_reports_equal(batched: ServingReport, reference: ServingReport) -> None:
    """Bit-exact comparison of two serving reports (raises :class:`ParityMismatch`)."""
    errors: List[str] = []
    names_a = [t.name for t in batched.tenants]
    names_b = [t.name for t in reference.tenants]
    if names_a != names_b:
        raise ParityMismatch([f"tenant sets differ: {names_a} != {names_b}"])
    for label in ("contention", "discipline", "max_inflight", "admission", "on_predicted_miss"):
        if getattr(batched, label) != getattr(reference, label):
            errors.append(
                f"{label} differs ({getattr(batched, label)!r} != "
                f"{getattr(reference, label)!r})"
            )
    if batched.faults != reference.faults:
        errors.append(
            f"fault reports differ ({batched.faults!r} != {reference.faults!r})"
        )
    for a, b in zip(batched.tenants, reference.tenants):
        _compare_tenant(a, b, errors)
    _compare_fleet(batched.fleet, reference.fleet, errors)
    if errors:
        raise ParityMismatch(errors)


def assert_traces_equal(batched: Tracer, reference: Tracer) -> None:
    """Byte-exact comparison of two trace streams (raises :class:`ParityMismatch`).

    Compares the canonical line serialisations (:meth:`Tracer.lines`):
    emission order is already factored out by the canonical sort, so a
    mismatch means a genuinely different event or a float that differs in
    at least one bit.
    """
    a = batched.lines()
    b = reference.lines()
    if a == b:
        return
    errors: List[str] = []
    if len(a) != len(b):
        errors.append(f"trace sizes differ: {len(a)} events != {len(b)} events")
    for i, (left, right) in enumerate(zip(a, b)):
        if left != right:
            errors.append(f"trace event {i} differs:\n  batched:   {left}\n  reference: {right}")
            if len(errors) >= 6:
                errors.append("... (further diffs suppressed)")
                break
    if not errors:  # pragma: no cover - length check above catches this
        errors.append("trace streams differ")
    raise ParityMismatch(errors)


def run_with_parity(
    batched_evaluator: PlanEvaluator,
    reference_evaluator: PlanEvaluator,
    tenants: Sequence[TenantSpec],
    duration_s: Optional[float] = None,
    start_s: float = 0.0,
    policy: Optional[ClusterPolicy] = None,
    engine: str = "object",
    faults: Union[str, ChurnSpec, FaultTrace, None] = None,
    retry: Optional[RetryPolicy] = None,
    degradation: Optional[DegradationPolicy] = None,
    compare_traces: bool = True,
    compare_analysis: bool = False,
    tracer: Optional[Tracer] = None,
) -> ServingReport:
    """Run the batched and the reference loops and assert bit-identity.

    Stateful adaptation hooks must be supplied as ``hook_factory`` (a fresh
    controller per run) — a bare ``adaptation_hook`` would carry first-run
    state into the second run and make the comparison meaningless, so it is
    rejected here.  ``policy`` runs both loops in shared-fleet contention
    mode (the contended-schedule memo against the per-request reference
    walk).  ``engine="array"`` runs the *batched* side through the
    vectorised column time-wheel, making this the array engine's bit-exact
    correctness contract against the scalar reference loop (the reference
    side always runs on the object engine — it is the oracle).
    ``faults``/``retry``/``degradation`` drive both loops over the same
    churning fleet — the churn parity contract: identical crash detections,
    retries, abandonments, shed arrivals and ``FaultReport``.  Returns the
    batched report.

    ``compare_traces`` extends the contract to observability: both runs
    collect a full deterministic trace and the two streams are asserted
    byte-identical (:func:`assert_traces_equal`).  Pass ``tracer`` to keep
    the batched side's trace (e.g. for ``--trace-json`` in parity mode); it
    must be empty.  Set ``compare_traces=False`` to skip trace collection.

    ``compare_analysis`` extends it once more, to the *interpretation*
    layer: both traces are run through the critical-path analyzer
    (:func:`repro.obs.analysis.analyze_serving`) and the SLO burn-rate
    monitor (:class:`repro.obs.slo.SLOMonitor`), every request's latency
    tiling is asserted bit-exact against its committed latency, and the
    attribution output and alert timelines are asserted byte-identical
    across the two runs.  Requires ``compare_traces``.
    """
    if compare_analysis and not compare_traces:
        raise ValueError("compare_analysis needs compare_traces=True")
    for spec in tenants:
        if spec.adaptation_hook is not None:
            raise ValueError(
                f"tenant {spec.name!r}: parity runs execute the workload twice; "
                "supply the hook as hook_factory so each run gets a fresh controller"
            )
    reference_tracer: Optional[Tracer] = None
    batched_tracer: Optional[Tracer] = tracer
    if compare_traces:
        reference_tracer = Tracer()
        batched_tracer = Tracer() if tracer is None else tracer
        if batched_tracer.events:
            raise ValueError("run_with_parity needs an empty tracer")
    reference = ServingSimulator(reference_evaluator).run(
        tenants,
        duration_s=duration_s,
        start_s=start_s,
        mode="reference",
        policy=policy,
        faults=faults,
        retry=retry,
        degradation=degradation,
        tracer=reference_tracer,
    )
    batched = ServingSimulator(batched_evaluator).run(
        tenants,
        duration_s=duration_s,
        start_s=start_s,
        mode="batched",
        policy=policy,
        engine=engine,
        faults=faults,
        retry=retry,
        degradation=degradation,
        tracer=batched_tracer,
    )
    assert_reports_equal(batched, reference)
    if compare_traces:
        assert_traces_equal(batched_tracer, reference_tracer)
    if compare_analysis:
        # Late imports keep repro.obs optional on the plain serving path.
        from repro.obs.analysis import analyze_serving
        from repro.obs.slo import SLOMonitor

        batched_analysis = analyze_serving(batched, batched_tracer)
        reference_analysis = analyze_serving(reference, reference_tracer)
        batched_analysis.check_exact()
        reference_analysis.check_exact()
        left, right = batched_analysis.lines(), reference_analysis.lines()
        if left != right:
            diffs = [
                f"attribution line {i} differs:\n  batched:   {a}\n  reference: {b}"
                for i, (a, b) in enumerate(zip(left, right))
                if a != b
            ][:6]
            raise ParityMismatch(
                [f"attribution differs ({len(left)} vs {len(right)} lines)"] + diffs
            )
        monitor = SLOMonitor()
        alerts_left = monitor.evaluate(batched).lines()
        alerts_right = monitor.evaluate(reference).lines()
        if alerts_left != alerts_right:
            raise ParityMismatch(
                ["alert timelines differ"]
                + [
                    f"  batched:   {a}\n  reference: {b}"
                    for a, b in zip(alerts_left, alerts_right)
                    if a != b
                ][:6]
            )
    return batched


__all__ = [
    "ServingSimulator",
    "ServingReport",
    "ParityMismatch",
    "assert_reports_equal",
    "assert_traces_equal",
    "run_with_parity",
    "MODES",
    "ENGINES",
]
