"""Predictive serving control plane: admission, autoscaling, capacity planning.

:class:`~repro.runtime.contention.ContentionAwareEvaluator` computes a
request's contended makespan *before* the request runs — an exact schedule,
not an estimate.  This module is the layer that finally consumes that
prediction (see ``docs/architecture.md`` for the subsystem map and
``docs/operations.md`` for the operator-facing walkthroughs):

* **Deny-at-admission** — ``ClusterPolicy(admission="predictive")`` makes the
  contended serving loop predict each request's completion at release time
  and deny (or re-queue, ``on_predicted_miss``) requests whose prediction
  already misses the SLO deadline.  The decision logic lives inside
  :meth:`~repro.serving.simulator.ServingSimulator._run_contended` — it must
  run identically in the reference and batched loops to preserve their
  bit-parity — and its accounting (``num_denied`` per tenant) surfaces here
  via :func:`effective_miss_rate`.
* :class:`FleetAutoscaler` — grows/shrinks the device fleet between fixed
  windows of a serving horizon, driven by measured compute utilisation (the
  :class:`~repro.runtime.contention.FleetLoadSeries` run totals per window)
  and, when calibrated from a ``serving_load_curve`` knee
  (:func:`repro.experiments.figures.load_curve_knee`), by per-device
  capacity.
* :class:`CapacityPlanner` — binary-searches the minimum fleet size whose
  serving run meets a target miss rate for a given traffic mix, memoizing
  probe results so the search costs at most ``ceil(log2(range)) + 2`` runs
  against an exhaustive sweep's ``range``.  Probe runs at one fleet size may
  share a contended-schedule memo (``ServingSimulator.run(schedule_memo=…)``)
  and warm per-tenant plan caches, refining incrementally over the memoized
  contended walk instead of re-evaluating from scratch.

The module deliberately depends only on *callables* that produce
:class:`~repro.serving.simulator.ServingReport` objects — building tenants,
plans and evaluators for a given fleet size is the caller's job (the CLI
wires :class:`~repro.experiments.harness.ExperimentHarness` in, keeping its
warm per-tenant plan caches across probes) — so the control plane composes
with any serving front end and never imports the experiments layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.trace import NULL_TRACER, Tracer
from repro.serving.simulator import ServingReport

#: Builds/serves one probe: fleet size -> the run's report.
ProbeRunner = Callable[[int], ServingReport]

#: Serves one autoscaler window: (fleet size, window index) -> report.
WindowRunner = Callable[[int, int], ServingReport]


def effective_miss_rate(report: ServingReport) -> float:
    """Miss fraction over the *offered* SLO-bound load.

    Predictive admission converts would-be deadline misses into denials, so
    judging a fleet by ``deadline_miss_rate`` alone (misses among completed
    requests) would let a tiny fleet look perfect by denying almost
    everything.  Fleet churn (:mod:`repro.runtime.faults`) adds two more
    ways to lose a request without a recorded miss: a crash can *abandon*
    it after the retry budget, and a degradation window can *shed* it at
    arrival.  All three count exactly like a miss: the fraction is
    ``(missed + denied + abandoned + shed) / (completed + denied +
    abandoned + shed)`` over tenants that declare an SLO — identical to
    ``deadline_miss_rate`` when nothing was denied, abandoned or shed.
    """
    missed = lost = completed = 0
    for tenant in report.tenants:
        if tenant.slo is not None:
            missed += int(tenant.deadline_missed.sum())
            lost += tenant.num_denied + tenant.num_abandoned + tenant.num_shed
            completed += tenant.num_completed
    total = completed + lost
    return (missed + lost) / total if total else 0.0


# ---------------------------------------------------------------------- #
# capacity planning
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class CapacityPlanConfig:
    """Search space and target of one capacity-planning run."""

    min_devices: int
    max_devices: int
    target_miss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.min_devices < 1:
            raise ValueError(f"min_devices must be >= 1, got {self.min_devices}")
        if self.max_devices < self.min_devices:
            raise ValueError(
                f"max_devices must be >= min_devices, got "
                f"{self.max_devices} < {self.min_devices}"
            )
        if not 0.0 <= self.target_miss_rate <= 1.0:
            raise ValueError(
                f"target_miss_rate must be in [0, 1], got {self.target_miss_rate}"
            )

    @property
    def span(self) -> int:
        return self.max_devices - self.min_devices + 1

    @property
    def max_probes(self) -> int:
        """Probe budget of the binary search: ``ceil(log2(span)) + 2``.

        One probe may bound each halving of the candidate range, plus the
        endpoint feasibility checks.
        """
        return int(math.ceil(math.log2(self.span))) + 2 if self.span > 1 else 1


@dataclass(frozen=True)
class CapacityProbe:
    """Outcome of serving the traffic mix on one candidate fleet size."""

    num_devices: int
    miss_rate: float
    feasible: bool
    completed: int
    denied: int
    throughput_rps: float

    def to_dict(self) -> Dict:
        return {
            "num_devices": int(self.num_devices),
            "miss_rate": float(self.miss_rate),
            "feasible": bool(self.feasible),
            "completed": int(self.completed),
            "denied": int(self.denied),
            "throughput_rps": float(self.throughput_rps),
        }


@dataclass
class CapacityPlan:
    """Result of a capacity-planning search."""

    config: CapacityPlanConfig
    probes: List[CapacityProbe] = field(default_factory=list)
    min_feasible_devices: Optional[int] = None
    strategy: str = "binary"

    @property
    def num_probe_runs(self) -> int:
        """Serving runs actually executed (memoized repeats excluded)."""
        return len(self.probes)

    def to_dict(self) -> Dict:
        return {
            "min_devices": int(self.config.min_devices),
            "max_devices": int(self.config.max_devices),
            "target_miss_rate": float(self.config.target_miss_rate),
            "strategy": self.strategy,
            "min_feasible_devices": (
                None
                if self.min_feasible_devices is None
                else int(self.min_feasible_devices)
            ),
            "num_probe_runs": self.num_probe_runs,
            "probes": [probe.to_dict() for probe in self.probes],
        }


class CapacityPlanner:
    """Finds the minimum fleet size meeting a target miss rate.

    ``probe_runner(n)`` must serve the *same* traffic mix on a fleet of
    ``n`` devices and return the run's report; the planner judges each run
    by :func:`effective_miss_rate` (denials count as misses) and memoizes
    probes by fleet size, so :meth:`plan` after :meth:`exhaustive` (or a
    repeated :meth:`plan`) re-runs nothing.

    The binary search assumes feasibility is monotone in the fleet size —
    more devices never push the miss rate above the target.  That holds for
    the seeded ``gen:`` scenarios the CI gate checks (capacity grows with
    the fleet while the offered load stays fixed); :meth:`exhaustive` is the
    assumption's oracle.
    """

    def __init__(
        self,
        probe_runner: ProbeRunner,
        config: CapacityPlanConfig,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.probe_runner = probe_runner
        self.config = config
        self.tracer = NULL_TRACER if tracer is None else tracer
        self._memo: Dict[int, CapacityProbe] = {}
        self.probe_runs = 0

    def probe(self, num_devices: int) -> CapacityProbe:
        """Serve the mix on ``num_devices`` (memoized by fleet size)."""
        cached = self._memo.get(num_devices)
        if cached is not None:
            return cached
        if not self.config.min_devices <= num_devices <= self.config.max_devices:
            raise ValueError(
                f"num_devices {num_devices} outside "
                f"[{self.config.min_devices}, {self.config.max_devices}]"
            )
        report = self.probe_runner(num_devices)
        miss = effective_miss_rate(report)
        probe = CapacityProbe(
            num_devices=num_devices,
            miss_rate=miss,
            feasible=miss <= self.config.target_miss_rate,
            completed=report.total_completed,
            denied=report.total_denied,
            throughput_rps=report.throughput_rps,
        )
        self._memo[num_devices] = probe
        if self.tracer.enabled:
            # ts = probe ordinal: every probe replays the same horizon, so
            # the probe sequence — not simulated time — is the timeline.
            self.tracer.instant(
                float(self.probe_runs),
                "control:capacity-planner",
                "control",
                "capacity_probe",
                num_devices=num_devices,
                miss_rate=miss,
                feasible=probe.feasible,
                throughput_rps=probe.throughput_rps,
            )
        self.probe_runs += 1
        return probe

    def plan(self) -> CapacityPlan:
        """Binary search for the smallest feasible fleet size."""
        cfg = self.config
        plan = CapacityPlan(config=cfg, strategy="binary")
        top = self.probe(cfg.max_devices)
        plan.probes.append(top)
        if not top.feasible:
            # Even the largest allowed fleet misses the target.
            return plan
        lo, hi = cfg.min_devices, cfg.max_devices
        while lo < hi:
            mid = (lo + hi) // 2
            probe = self.probe(mid)
            plan.probes.append(probe)
            if probe.feasible:
                hi = mid
            else:
                lo = mid + 1
        plan.min_feasible_devices = hi
        return plan

    def exhaustive(self) -> CapacityPlan:
        """Ascending sweep — the oracle the CI gate compares :meth:`plan` to."""
        cfg = self.config
        plan = CapacityPlan(config=cfg, strategy="exhaustive")
        for n in range(cfg.min_devices, cfg.max_devices + 1):
            probe = self.probe(n)
            plan.probes.append(probe)
            if probe.feasible:
                plan.min_feasible_devices = n
                break
        return plan


# ---------------------------------------------------------------------- #
# autoscaling
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs of the between-windows fleet autoscaler.

    Without a capacity calibration the scaler walks the fleet size by
    ``step`` whenever the measured mean compute utilisation leaves the
    ``[low_utilization, high_utilization]`` band (or the window's effective
    miss rate exceeds ``target_miss_rate``).  With
    ``capacity_per_device_rps`` set — typically from a
    ``serving_load_curve`` knee via :meth:`from_knee` — the scaler instead
    jumps straight to ``ceil(window arrival rate / capacity)`` devices.

    ``trigger="burn_rate"`` swaps the utilisation band for the SLO burn
    signal of :mod:`repro.obs.slo`: each window's effective miss rate is
    normalised by ``target_miss_rate`` into a burn rate (1.0 = consuming
    error budget exactly at the allowed rate); the scaler grows when both
    the window burn (fast) and the trailing-``burn_windows`` mean (slow)
    reach ``burn_threshold``, and shrinks only when both fall below half
    the threshold *and* utilisation sits under ``low_utilization`` — the
    same fast+slow hysteresis the alerting rules use, so paging and
    scaling react to one signal.  Requires a positive ``target_miss_rate``
    (a zero budget has no finite burn) and is exclusive with the capacity
    calibration.
    """

    min_devices: int
    max_devices: int
    window_s: float
    low_utilization: float = 0.3
    high_utilization: float = 0.8
    step: int = 1
    target_miss_rate: float = 0.0
    capacity_per_device_rps: Optional[float] = None
    trigger: str = "utilization"
    burn_threshold: float = 1.0
    burn_windows: int = 4

    def __post_init__(self) -> None:
        if self.min_devices < 1:
            raise ValueError(f"min_devices must be >= 1, got {self.min_devices}")
        if self.max_devices < self.min_devices:
            raise ValueError(
                f"max_devices must be >= min_devices, got "
                f"{self.max_devices} < {self.min_devices}"
            )
        if self.window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")
        if not 0.0 <= self.low_utilization <= self.high_utilization <= 1.0:
            raise ValueError(
                "need 0 <= low_utilization <= high_utilization <= 1, got "
                f"{self.low_utilization} / {self.high_utilization}"
            )
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")
        if not 0.0 <= self.target_miss_rate <= 1.0:
            raise ValueError(
                f"target_miss_rate must be in [0, 1], got {self.target_miss_rate}"
            )
        if self.capacity_per_device_rps is not None and self.capacity_per_device_rps <= 0:
            raise ValueError(
                f"capacity_per_device_rps must be > 0 (or None), got "
                f"{self.capacity_per_device_rps}"
            )
        if self.trigger not in ("utilization", "burn_rate"):
            raise ValueError(
                f"trigger must be 'utilization' or 'burn_rate', got {self.trigger!r}"
            )
        if self.burn_threshold <= 0:
            raise ValueError(
                f"burn_threshold must be > 0, got {self.burn_threshold}"
            )
        if self.burn_windows < 1:
            raise ValueError(f"burn_windows must be >= 1, got {self.burn_windows}")
        if self.trigger == "burn_rate":
            if self.target_miss_rate <= 0.0:
                raise ValueError(
                    "trigger='burn_rate' needs a positive target_miss_rate "
                    "(a zero error budget has no finite burn rate)"
                )
            if self.capacity_per_device_rps is not None:
                raise ValueError(
                    "trigger='burn_rate' is exclusive with "
                    "capacity_per_device_rps — pick one scaling signal"
                )

    @classmethod
    def from_knee(
        cls,
        knee_rps: float,
        knee_devices: int,
        **kwargs,
    ) -> "AutoscalerConfig":
        """Calibrate per-device capacity from a load-curve knee.

        ``knee_rps`` is the highest offered rate a probe fleet of
        ``knee_devices`` served within the miss target (see
        :func:`repro.experiments.figures.load_curve_knee`); capacity per
        device is its quotient.
        """
        if knee_rps <= 0:
            raise ValueError(f"knee_rps must be > 0, got {knee_rps}")
        if knee_devices < 1:
            raise ValueError(f"knee_devices must be >= 1, got {knee_devices}")
        return cls(capacity_per_device_rps=knee_rps / knee_devices, **kwargs)


@dataclass(frozen=True)
class AutoscaleWindow:
    """One autoscaler window: what was measured and what was decided."""

    index: int
    start_s: float
    num_devices: int
    arrivals: int
    completed: int
    denied: int
    miss_rate: float
    utilization: float
    decision: str  # "grow" | "shrink" | "hold"
    next_devices: int
    fast_burn: float = 0.0  # window burn (miss / target); 0 unless burn_rate
    slow_burn: float = 0.0  # trailing-window mean burn

    def to_dict(self) -> Dict:
        return {
            "index": int(self.index),
            "start_s": float(self.start_s),
            "num_devices": int(self.num_devices),
            "arrivals": int(self.arrivals),
            "completed": int(self.completed),
            "denied": int(self.denied),
            "miss_rate": float(self.miss_rate),
            "utilization": float(self.utilization),
            "decision": self.decision,
            "next_devices": int(self.next_devices),
            "fast_burn": float(self.fast_burn),
            "slow_burn": float(self.slow_burn),
        }


@dataclass
class AutoscaleReport:
    """Outcome of one autoscaled serving horizon."""

    config: AutoscalerConfig
    windows: List[AutoscaleWindow] = field(default_factory=list)

    @property
    def final_devices(self) -> int:
        return self.windows[-1].next_devices if self.windows else self.config.min_devices

    @property
    def device_trajectory(self) -> List[int]:
        return [w.num_devices for w in self.windows]

    def to_dict(self) -> Dict:
        return {
            "window_s": float(self.config.window_s),
            "min_devices": int(self.config.min_devices),
            "max_devices": int(self.config.max_devices),
            "low_utilization": float(self.config.low_utilization),
            "high_utilization": float(self.config.high_utilization),
            "capacity_per_device_rps": (
                None
                if self.config.capacity_per_device_rps is None
                else float(self.config.capacity_per_device_rps)
            ),
            "trigger": self.config.trigger,
            "burn_threshold": float(self.config.burn_threshold),
            "burn_windows": int(self.config.burn_windows),
            "final_devices": int(self.final_devices),
            "device_trajectory": [int(n) for n in self.device_trajectory],
            "windows": [w.to_dict() for w in self.windows],
        }


class FleetAutoscaler:
    """Resizes the fleet between fixed windows of a serving horizon.

    ``window_runner(n, w)`` must serve window ``w``'s slice of the arrival
    trace on a fleet of ``n`` devices (the CLI builds it from one
    pre-generated trace split into :class:`~repro.serving.traffic.TraceArrivals`
    segments, re-planning tenants per fleet size through warm plan caches).
    After each window the scaler measures mean compute utilisation —
    ``compute busy / window`` from the run's fleet report — plus the
    window's effective miss rate, and decides the next window's fleet size.
    """

    def __init__(
        self,
        window_runner: WindowRunner,
        config: AutoscalerConfig,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.window_runner = window_runner
        self.config = config
        self.tracer = NULL_TRACER if tracer is None else tracer
        # Burn-rate trigger state: per-run window burn history (fast burns),
        # plus the burns behind the most recent decide() for reporting.
        self._burn_history: List[float] = []
        self._last_burns: Tuple[float, float] = (0.0, 0.0)

    # ------------------------------------------------------------------ #
    def _utilization(self, report: ServingReport) -> float:
        if report.fleet is None:
            return 0.0
        busy = report.fleet.compute_busy_ms
        if busy.size == 0:
            return 0.0
        return float(busy.mean()) / (self.config.window_s * 1000.0)

    def _clamp(self, n: int) -> int:
        return max(self.config.min_devices, min(self.config.max_devices, n))

    def decide(self, report: ServingReport, num_devices: int) -> Tuple[str, int]:
        """Next window's fleet size from this window's measurements.

        A window served under fleet churn reports its surviving fleet
        (``report.faults.live_at_end``); the decision then steps from that
        *post-churn* size, so replacing crashed devices registers as growth
        and a shrink never assumes capacity the crash already took.
        """
        cfg = self.config
        observed = num_devices
        if report.faults is not None:
            observed = min(observed, int(report.faults.live_at_end))
        utilization = self._utilization(report)
        miss = effective_miss_rate(report)
        self._last_burns = (0.0, 0.0)
        if cfg.trigger == "burn_rate":
            fast = miss / cfg.target_miss_rate
            self._burn_history.append(fast)
            trailing = self._burn_history[-cfg.burn_windows:]
            slow = sum(trailing) / len(trailing)
            self._last_burns = (fast, slow)
            if fast >= cfg.burn_threshold and slow >= cfg.burn_threshold:
                grown = self._clamp(observed + cfg.step)
                return ("grow", grown) if grown != observed else ("hold", observed)
            if (
                fast < cfg.burn_threshold / 2.0
                and slow < cfg.burn_threshold / 2.0
                and utilization < cfg.low_utilization
            ):
                shrunk = self._clamp(observed - cfg.step)
                return ("shrink", shrunk) if shrunk != observed else ("hold", observed)
            return "hold", observed
        if cfg.capacity_per_device_rps is not None:
            arrival_rps = report.total_arrivals / cfg.window_s
            desired = self._clamp(
                int(math.ceil(arrival_rps / cfg.capacity_per_device_rps))
                if arrival_rps > 0
                else cfg.min_devices
            )
            if desired > observed:
                return "grow", desired
            if desired < observed:
                return "shrink", desired
            return "hold", observed
        if utilization > cfg.high_utilization or miss > cfg.target_miss_rate:
            grown = self._clamp(observed + cfg.step)
            return ("grow", grown) if grown != observed else ("hold", observed)
        if utilization < cfg.low_utilization and miss <= cfg.target_miss_rate:
            shrunk = self._clamp(observed - cfg.step)
            return ("shrink", shrunk) if shrunk != observed else ("hold", observed)
        return "hold", observed

    # ------------------------------------------------------------------ #
    def run(
        self, num_windows: int, initial_devices: Optional[int] = None
    ) -> AutoscaleReport:
        """Serve ``num_windows`` windows, resizing the fleet in between."""
        if num_windows < 1:
            raise ValueError(f"num_windows must be >= 1, got {num_windows}")
        n = self._clamp(
            initial_devices if initial_devices is not None else self.config.min_devices
        )
        self._burn_history = []
        result = AutoscaleReport(config=self.config)
        for w in range(num_windows):
            report = self.window_runner(n, w)
            decision, next_n = self.decide(report, n)
            fast_burn, slow_burn = self._last_burns
            window = AutoscaleWindow(
                index=w,
                start_s=w * self.config.window_s,
                num_devices=n,
                arrivals=report.total_arrivals,
                completed=report.total_completed,
                denied=report.total_denied,
                miss_rate=effective_miss_rate(report),
                utilization=self._utilization(report),
                decision=decision,
                next_devices=next_n,
                fast_burn=fast_burn,
                slow_burn=slow_burn,
            )
            result.windows.append(window)
            if self.tracer.enabled:
                args = {
                    "num_devices": window.num_devices,
                    "decision": window.decision,
                    "next_devices": window.next_devices,
                    "miss_rate": window.miss_rate,
                    "utilization": window.utilization,
                }
                if self.config.trigger == "burn_rate":
                    args["fast_burn"] = window.fast_burn
                    args["slow_burn"] = window.slow_burn
                self.tracer.span(
                    window.start_s * 1000.0,
                    self.config.window_s * 1000.0,
                    "control:autoscaler",
                    "control",
                    "autoscale_window",
                    **args,
                )
            n = next_n
        return result


__all__ = [
    "AutoscaleReport",
    "AutoscaleWindow",
    "AutoscalerConfig",
    "CapacityPlan",
    "CapacityPlanConfig",
    "CapacityPlanner",
    "CapacityProbe",
    "FleetAutoscaler",
    "ProbeRunner",
    "WindowRunner",
    "effective_miss_rate",
]
