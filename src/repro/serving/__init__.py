"""Multi-tenant open-loop serving on top of the batched evaluation engines.

The paper measures a closed loop — one image in flight, one model, one
cluster.  This package adds the traffic-facing layer the ROADMAP's
"heavy traffic" north star needs:

* :mod:`repro.serving.traffic` — open-loop arrival processes (Poisson,
  bursty MMPP, diurnal, trace replay) behind the ``traffic:`` spec grammar.
* :mod:`repro.serving.tenants` — tenants (model x plan x SLO) with per-tenant
  FIFO queues, admission control, deadline accounting and per-tenant
  adaptation hooks (the Section V-F online controllers plug in unchanged).
* :mod:`repro.serving.dispatch` — cross-tenant cluster dispatch: FIFO /
  deadline-slack / weighted-fair-queueing disciplines and cluster-wide
  concurrency caps for shared-fleet contention
  (:mod:`repro.runtime.contention`).
* :mod:`repro.serving.simulator` — the serving event loop: epoch-batched
  ``(requests, devices)`` sweeps through
  :class:`~repro.runtime.batch.BatchPlanEvaluator` /
  :class:`~repro.runtime.shard.ShardedPlanEvaluator`, bit-identical to a
  naive per-request reference loop (asserted by :func:`run_with_parity`),
  reporting throughput, latency percentiles, deadline-miss rates and
  queue-depth series per tenant.
* :mod:`repro.serving.engine` — the array-native serving engine
  (``engine="array"``): per-tenant NumPy request columns driven by a
  vectorised time-wheel with slot pools and epoch speculation, bit-exact
  against the reference loop via the same parity contract.
* :mod:`repro.serving.control` — the predictive control plane: deny-at-
  admission (``ClusterPolicy(admission="predictive")``), the between-windows
  fleet autoscaler and the binary-search capacity planner, all built on the
  contention evaluator's exact completion predictions.
* :mod:`repro.runtime.faults` (consumed here) — seeded fleet churn behind
  the ``churn:`` spec grammar: device crash/leave/join timelines, crash
  detection mid-inference, per-tenant retry with exponential backoff and
  deterministic load shedding under capacity loss, all inside the same
  bit-exact parity contract (``run_with_parity(..., faults=...)``).

The paper's :class:`~repro.runtime.streaming.StreamingSimulator` is the
single-tenant closed-loop special case of this engine.  The subsystem map —
which layer feeds which, and the parity contract binding each fast path to
its reference loop — is drawn in ``docs/architecture.md``.
"""

from repro.serving.control import (
    AutoscaleReport,
    AutoscalerConfig,
    CapacityPlan,
    CapacityPlanConfig,
    CapacityPlanner,
    CapacityProbe,
    FleetAutoscaler,
    effective_miss_rate,
)
from repro.serving.dispatch import (
    ADMISSION_MODES,
    DISCIPLINES,
    PREDICTED_MISS_ACTIONS,
    ClusterPolicy,
    FleetDispatcher,
)
from repro.runtime.faults import (
    CHURN_PREFIX,
    ChurnSpec,
    DegradationPolicy,
    FaultReport,
    FaultTrace,
    RetryPolicy,
    parse_churn_spec,
    resolve_churn,
)
from repro.serving.engine import ArrayServingEngine, vectorizable
from repro.serving.simulator import (
    ENGINES,
    MODES,
    ParityMismatch,
    ServingReport,
    ServingSimulator,
    assert_reports_equal,
    assert_traces_equal,
    run_with_parity,
)
from repro.serving.tenants import SLO, AdaptationHook, TenantReport, TenantSpec
from repro.serving.traffic import (
    TRAFFIC_PREFIX,
    ArrivalProcess,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
    parse_traffic_spec,
    resolve_traffic,
)

__all__ = [
    "ADMISSION_MODES",
    "DISCIPLINES",
    "ENGINES",
    "MODES",
    "PREDICTED_MISS_ACTIONS",
    "ClusterPolicy",
    "FleetDispatcher",
    "AutoscaleReport",
    "AutoscalerConfig",
    "CapacityPlan",
    "CapacityPlanConfig",
    "CapacityPlanner",
    "CapacityProbe",
    "FleetAutoscaler",
    "effective_miss_rate",
    "CHURN_PREFIX",
    "ChurnSpec",
    "DegradationPolicy",
    "FaultReport",
    "FaultTrace",
    "RetryPolicy",
    "parse_churn_spec",
    "resolve_churn",
    "ArrayServingEngine",
    "vectorizable",
    "ServingSimulator",
    "ServingReport",
    "ParityMismatch",
    "assert_reports_equal",
    "assert_traces_equal",
    "run_with_parity",
    "SLO",
    "TenantSpec",
    "TenantReport",
    "AdaptationHook",
    "ArrivalProcess",
    "PoissonArrivals",
    "MMPPArrivals",
    "DiurnalArrivals",
    "TraceArrivals",
    "TRAFFIC_PREFIX",
    "parse_traffic_spec",
    "resolve_traffic",
]
