"""Tenants: model x plan x SLO, with FIFO queues and deadline accounting.

A *tenant* is one traffic stream served by the shared cluster: a
:class:`~repro.runtime.plan.DistributionPlan` (its model and strategy), an
arrival process (open-loop) or a closed-loop request budget, an optional
:class:`SLO` deadline, a bounded FIFO queue with admission control, and an
optional adaptation hook (the Section V-F controllers of
:mod:`repro.core.online` plug in here, so replanning happens *under* load).

:class:`TenantRuntime` is the behavioural core of the serving simulator: it
advances one tenant's request chain — admission, queueing, dispatch, hook
invocation, deadline accounting — request by request.  Both event loops of
:class:`~repro.serving.simulator.ServingSimulator` (the epoch-batched one and
the naive per-request reference) drive the *same* runtime code and differ
only in how the dispatched plan is evaluated, which is what makes their
results bit-identical by construction.

Service model: the cluster grants each tenant a pool of ``slots`` service
slots (``slots=1`` is the paper's one-image-in-flight protocol, per stream).
A request is issued to the earliest-free slot, so up to ``slots`` of one
tenant's requests are in flight concurrently while the *records* stay in
request order — the reordering-safe commit the array serving engine
(:mod:`repro.serving.engine`) exploits.  Cross-tenant interference on
compute/network lanes is modelled only when a
:class:`~repro.serving.dispatch.ClusterPolicy` switches the serving loop to
shared-fleet contention (:mod:`repro.runtime.contention`).

Predictive admission (:mod:`repro.serving.control`) adds two transitions to
the chain: a pending dispatch may be *denied* (:meth:`TenantRuntime.deny_pending`
— dropped unserved, counted in ``num_denied``) or *deferred*
(:meth:`TenantRuntime.defer_pending` — re-released later).  Fleet churn
(:mod:`repro.runtime.faults`) adds three more: a pending dispatch killed by a
mid-inference crash may be *retried* (:meth:`TenantRuntime.retry_pending` —
re-released after backoff, the lost attempt counted) or *abandoned*
(:meth:`TenantRuntime.abandon_pending` — dropped at the crash, the slot held
until then), and a :class:`~repro.runtime.faults.DegradationPolicy` may
*shed* open-loop arrivals at construction time (counted in ``num_shed``,
never entering the queue).  See ``docs/architecture.md`` for the subsystem
map.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.plan import DistributionPlan
from repro.serving.traffic import ArrivalProcess
from repro.utils.cache import LRUCache

#: Adaptation hook signature (identical to the streaming simulator's):
#: called before each dispatch with ``(time_seconds, request_index,
#: current_plan, latency_history_ms)`` and may return a replacement plan
#: (or ``None`` to keep the current one).
AdaptationHook = Callable[[float, int, DistributionPlan, List[float]], Optional[DistributionPlan]]


@dataclass(frozen=True)
class SLO:
    """Service-level objective: a response-time deadline per request.

    ``deadline_ms`` bounds the *response* time (completion minus arrival,
    queueing included).  Requests that exceed it are still served to
    completion but counted as deadline misses; ``target_miss_rate`` is the
    acceptable miss fraction used by :meth:`ServingReport.slo_violations`
    style summaries (purely descriptive — it does not change scheduling).
    """

    deadline_ms: float
    target_miss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {self.deadline_ms}")
        if not 0.0 <= self.target_miss_rate <= 1.0:
            raise ValueError(
                f"target_miss_rate must be in [0, 1], got {self.target_miss_rate}"
            )


@dataclass
class TenantSpec:
    """Declarative description of one tenant.

    Parameters
    ----------
    name:
        Unique tenant label (report rows, CLI output).
    plan:
        Initial distribution plan; all tenants' plans must cover the
        simulator's cluster.
    traffic:
        Open-loop arrival process — or ``None`` for a *closed-loop* tenant
        whose next request is issued only when the previous one completed
        (plus ``gap_ms`` think time).  The single-tenant closed-loop case is
        exactly the paper's streaming protocol
        (:class:`~repro.runtime.streaming.StreamingSimulator` is this spec).
    slo:
        Optional deadline; ``None`` disables miss accounting.
    queue_capacity:
        Admission control: maximum requests *waiting* (the in-service request
        excluded).  Arrivals beyond it are rejected and counted.  ``None``
        means unbounded.
    adaptation_hook / hook_factory:
        Per-tenant replanning hook.  ``hook_factory`` builds a fresh hook per
        :meth:`ServingSimulator.run` call — required for parity runs, which
        execute the workload twice and need stateful controllers reset in
        between.  Pass at most one of the two.
    max_requests:
        Serve at most this many requests (required for closed-loop tenants,
        optional cap for open-loop ones — at the cap, queued and still-to-come
        arrivals are counted as rejected, so the report reflects the full
        offered load).
    gap_ms:
        Closed-loop think time between a completion and the next request.
    max_duration_s:
        Closed-loop only: stop issuing requests once the tenant's simulated
        clock has advanced this far past the run start.
    weight:
        Fair-share weight under the ``wfq`` cross-tenant discipline
        (:mod:`repro.serving.dispatch`): a tenant with twice the weight
        receives twice the fleet throughput under backlog.  Ignored by the
        other disciplines and by contention-free serving.
    slots:
        Within-tenant concurrency: the number of service slots in the
        tenant's pool.  Each request is issued to the earliest-free slot
        (requests are *recorded* in arrival order regardless — the
        reordering-safe commit), so ``slots=2`` lets two of the tenant's
        requests overlap in simulated time.  Closed-loop tenants run one
        closed chain per slot.  Default ``1`` reproduces the paper's
        one-image-in-flight protocol exactly.
    """

    name: str
    plan: DistributionPlan
    traffic: Optional[ArrivalProcess] = None
    slo: Optional[SLO] = None
    queue_capacity: Optional[int] = None
    adaptation_hook: Optional[AdaptationHook] = None
    hook_factory: Optional[Callable[[], AdaptationHook]] = None
    max_requests: Optional[int] = None
    gap_ms: float = 0.0
    max_duration_s: Optional[float] = None
    weight: float = 1.0
    slots: int = 1

    def __post_init__(self) -> None:
        if self.traffic is None and self.max_requests is None:
            raise ValueError(
                f"tenant {self.name!r}: closed-loop tenants (traffic=None) need "
                "max_requests to bound the run"
            )
        if self.max_requests is not None and self.max_requests < 1:
            raise ValueError(
                f"tenant {self.name!r}: max_requests must be >= 1, got {self.max_requests}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(
                f"tenant {self.name!r}: queue_capacity must be >= 1 (or None), "
                f"got {self.queue_capacity}"
            )
        if self.gap_ms < 0:
            raise ValueError(f"tenant {self.name!r}: gap_ms must be >= 0, got {self.gap_ms}")
        if self.traffic is not None and (self.gap_ms != 0 or self.max_duration_s is not None):
            raise ValueError(
                f"tenant {self.name!r}: gap_ms and max_duration_s are closed-loop "
                "knobs (traffic=None); open-loop pacing comes from the arrival "
                "process and duration_s"
            )
        if self.adaptation_hook is not None and self.hook_factory is not None:
            raise ValueError(
                f"tenant {self.name!r}: pass adaptation_hook or hook_factory, not both"
            )
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be > 0, got {self.weight}")
        if not isinstance(self.slots, int) or self.slots < 1:
            raise ValueError(
                f"tenant {self.name!r}: slots must be an int >= 1, got {self.slots!r}"
            )

    @property
    def closed_loop(self) -> bool:
        return self.traffic is None

    def make_hook(self) -> Optional[AdaptationHook]:
        """The hook for one simulator run (fresh if a factory was given)."""
        if self.hook_factory is not None:
            return self.hook_factory()
        return self.adaptation_hook


@dataclass(frozen=True)
class Dispatch:
    """One prepared request: where the chain pauses for plan evaluation."""

    arrival_s: float
    start_s: float
    plan: DistributionPlan


@dataclass
class TenantReport:
    """Per-tenant serving outcome: request series, SLO and queue metrics."""

    name: str
    slo: Optional[SLO]
    arrival_s: np.ndarray
    start_s: np.ndarray
    completion_s: np.ndarray
    latency_ms: np.ndarray
    response_ms: np.ndarray
    deadline_missed: np.ndarray
    num_arrivals: int
    num_rejected: int
    rejected_times_s: List[float]
    replan_times_s: List[float]
    queue_depth_series: np.ndarray  # (events, 2): time_s, depth after the event
    final_method: str
    busy_until_s: float
    # Predictive-admission denials (deny-at-admission, repro.serving.control):
    # requests dropped at release time because their predicted completion
    # already missed the SLO deadline.  Distinct from queue rejections
    # (num_rejected), which happen at *arrival* on a full queue.
    num_denied: int = 0
    denied_times_s: List[float] = field(default_factory=list)
    # Fleet-churn outcomes (repro.runtime.faults): arrivals shed by the
    # degradation policy, requests abandoned after exhausting their retry
    # budget, crashed (lost) attempts, and the extra pre-service delay retried
    # requests accumulated before their successful attempt started.
    num_shed: int = 0
    shed_times_s: List[float] = field(default_factory=list)
    num_abandoned: int = 0
    abandoned_times_s: List[float] = field(default_factory=list)
    num_lost_attempts: int = 0
    num_retried: int = 0
    retry_added_ms: float = 0.0

    @property
    def num_completed(self) -> int:
        return int(self.latency_ms.size)

    @property
    def num_admitted(self) -> int:
        return self.num_arrivals - self.num_rejected - self.num_shed

    @property
    def makespan_s(self) -> float:
        return float(self.completion_s.max()) if self.num_completed else 0.0

    def throughput_rps(self, since_s: float = 0.0) -> float:
        """Completed requests per second of simulated time since ``since_s``."""
        if not self.num_completed:
            return 0.0
        span = self.makespan_s - since_s
        return self.num_completed / span if span > 0 else float("inf")

    @property
    def mean_latency_ms(self) -> float:
        return float(self.latency_ms.mean()) if self.num_completed else 0.0

    @property
    def mean_response_ms(self) -> float:
        return float(self.response_ms.mean()) if self.num_completed else 0.0

    def response_percentile_ms(self, q: float) -> float:
        """``q``-th percentile (0-100) of the response time in ms."""
        return float(np.percentile(self.response_ms, q)) if self.num_completed else 0.0

    @property
    def p50_response_ms(self) -> float:
        return self.response_percentile_ms(50)

    @property
    def p95_response_ms(self) -> float:
        return self.response_percentile_ms(95)

    @property
    def p99_response_ms(self) -> float:
        return self.response_percentile_ms(99)

    @property
    def deadline_miss_rate(self) -> float:
        """Missed deadlines as a fraction of completed requests."""
        if self.slo is None or not self.num_completed:
            return 0.0
        return float(self.deadline_missed.mean())

    @property
    def slo_satisfied(self) -> bool:
        """Whether the miss rate stayed within the SLO's target."""
        if self.slo is None:
            return True
        return self.deadline_miss_rate <= self.slo.target_miss_rate

    @property
    def max_queue_depth(self) -> int:
        if self.queue_depth_series.size == 0:
            return 0
        return int(self.queue_depth_series[:, 1].max())


class TenantRuntime:
    """One tenant's live state while the serving event loop runs.

    The request chain is processed strictly sequentially within the tenant:
    the loop alternates :meth:`prepare` (admit arrivals, pick the
    head-of-line request, run the adaptation hook) and :meth:`commit`
    (record the evaluated latency, advance the earliest-free service slot).
    With ``slots > 1`` completions may *overlap* in simulated time, but
    request ``i``'s start depends only on commits ``0..i-1`` (the slot pool
    is a min-heap of free times), so the chain — and every record — stays in
    request order: the reordering-safe commit.  Both simulator modes and the
    array engine drive exactly this sequence with exactly these arguments,
    so every stateful effect — admission decisions, hook invocations,
    replan logs — happens identically everywhere.
    """

    def __init__(
        self,
        spec: TenantSpec,
        start_s: float,
        duration_s: Optional[float],
        shed_intervals: Optional[List[Tuple[float, float]]] = None,
    ) -> None:
        self.spec = spec
        self.start_s = float(start_s)
        self.hook = spec.make_hook()
        self.current_plan = spec.plan
        self.done = False
        self._pending: Optional[Dispatch] = None
        self._served = 0
        # Slot pool: min-heap of slot free-up times.  Equal initial entries
        # form a valid heap without heapify; slots=1 degenerates to the
        # single service-slot clock of earlier revisions.
        self._slot_free_s: List[float] = [self.start_s] * spec.slots

        self.shed_times: List[float] = []
        if spec.closed_loop:
            self._arrivals = np.empty(0)
        else:
            if duration_s is None:
                raise ValueError(
                    f"tenant {spec.name!r} is open-loop; the simulator needs duration_s"
                )
            self._arrivals = spec.traffic.arrival_times(duration_s, start_s)
            if shed_intervals:
                # Degradation shedding is decided at arrival time from the
                # (trace, weights) alone — a pure function every loop shares —
                # so shed arrivals are filtered out of the stream up front and
                # never enter the queue.
                keep = np.ones(self._arrivals.size, dtype=bool)
                for lo, hi in shed_intervals:
                    keep &= ~((self._arrivals >= lo) & (self._arrivals < hi))
                self.shed_times = [float(t) for t in self._arrivals[~keep]]
                self._arrivals = self._arrivals[keep]
        self._next_arrival = 0
        self._queue: Deque[float] = deque()

        # Fault/retry chain state for the pending dispatch.
        self._prepared = 0
        self._pending_ordinal = 0
        self._pending_attempt = 1
        self._pending_first_start_s = 0.0

        # Per-tenant plan-evaluation cache (batched loop only): latency by
        # (model, plan structure, network-state signature).  Controller
        # replans under unchanged conditions — same strategy, same network —
        # hit here and skip the evaluator entirely.  Model references are
        # pinned so ids in live keys cannot be recycled.
        self._eval_cache = LRUCache(256)
        self._eval_cache_models: Dict[int, object] = {}

        # Outcome accumulators.
        self.arrivals_seen = 0
        self.rejected_times: List[float] = []
        self.denied_times: List[float] = []
        self.abandoned_times: List[float] = []
        self.num_lost_attempts = 0
        self.num_retried = 0
        self.retry_added_ms = 0.0
        self.replan_times: List[float] = []
        self.latencies_ms: List[float] = []
        self.responses_ms: List[float] = []
        self.req_arrival_s: List[float] = []
        self.req_start_s: List[float] = []
        self.req_completion_s: List[float] = []
        self.missed: List[bool] = []
        self.depth_events: List[tuple] = []

    # ------------------------------------------------------------------ #
    @property
    def _free_s(self) -> float:
        """When the tenant's *earliest* service slot frees up (heap min)."""
        return self._slot_free_s[0]

    @property
    def busy_until_s(self) -> float:
        """When the tenant's *last* service slot frees up (heap max)."""
        return max(self._slot_free_s)

    # ------------------------------------------------------------------ #
    def _admit_until(self, t_s: float) -> None:
        """Process open-loop arrivals with time <= ``t_s`` (admission control).

        An arrival is admitted when fewer than ``queue_capacity`` requests
        are waiting at its instant (the in-service request does not occupy
        the queue), otherwise rejected and counted.  Arrivals tied with a
        dispatch time are processed before the dispatch.
        """
        capacity = self.spec.queue_capacity
        while (
            self._next_arrival < self._arrivals.size
            and self._arrivals[self._next_arrival] <= t_s
        ):
            arrival = float(self._arrivals[self._next_arrival])
            self._next_arrival += 1
            self.arrivals_seen += 1
            if capacity is not None and len(self._queue) >= capacity:
                self.rejected_times.append(arrival)
            else:
                self._queue.append(arrival)
                self.depth_events.append((arrival, len(self._queue)))

    def _next_request(self) -> Optional[float]:
        """Arrival time of the next request to serve, advancing admission."""
        if self.spec.closed_loop:
            return self._free_s  # issued the moment the slot frees up
        if not self._queue:
            if self._next_arrival >= self._arrivals.size:
                return None
            # Idle tenant: jump to the next arrival (queue empty => admitted).
            self._admit_until(float(self._arrivals[self._next_arrival]))
        return self._queue[0]

    def prepare(self) -> Optional[Dispatch]:
        """Advance to the next dispatch; returns ``None`` when the tenant is done.

        Admits arrivals up to the dispatch instant, invokes the adaptation
        hook (counting a replan only when the returned plan's *strategy*
        differs from the current one — see
        :meth:`DistributionPlan.same_strategy`), and parks the dispatch until
        :meth:`commit` delivers its evaluated latency.
        """
        if self.done or self._pending is not None:
            raise RuntimeError(f"tenant {self.spec.name!r}: prepare() out of order")
        if self.spec.max_requests is not None and self._served >= self.spec.max_requests:
            # Service closed at the request cap: the rest of the offered load
            # — both the unexamined arrival stream and requests already
            # waiting in the queue — is counted as rejected, so num_arrivals
            # reflects the full stream, num_admitted == num_completed, and
            # the queue-depth series drains to zero (no-op for closed-loop
            # tenants, which have no stream).
            while self._queue:
                self.rejected_times.append(self._queue.popleft())
                self.depth_events.append((self._free_s, len(self._queue)))
            while self._next_arrival < self._arrivals.size:
                arrival = float(self._arrivals[self._next_arrival])
                self._next_arrival += 1
                self.arrivals_seen += 1
                self.rejected_times.append(arrival)
            self.done = True
            return None
        arrival = self._next_request()
        if arrival is None:
            self.done = True
            return None
        start = max(self._free_s, arrival)
        if not self.spec.closed_loop:
            self._admit_until(start)
        if self.hook is not None:
            replacement = self.hook(start, self._served, self.current_plan, self.latencies_ms)
            if replacement is not None and not self.current_plan.same_strategy(replacement):
                self.current_plan = replacement
                self.replan_times.append(start)
        self._pending = Dispatch(arrival_s=arrival, start_s=start, plan=self.current_plan)
        self._pending_ordinal = self._prepared
        self._prepared += 1
        self._pending_attempt = 1
        self._pending_first_start_s = start
        return self._pending

    def commit(self, latency_ms: float) -> None:
        """Record the evaluated latency of the pending dispatch."""
        dispatch = self._pending
        if dispatch is None:
            raise RuntimeError(f"tenant {self.spec.name!r}: commit() without prepare()")
        self._pending = None
        if self._pending_attempt > 1:
            # The request completed on a retry attempt: the delay between its
            # first release and this attempt's release is retry-added latency.
            self.num_retried += 1
            self.retry_added_ms += (dispatch.start_s - self._pending_first_start_s) * 1000.0
        completion = dispatch.start_s + latency_ms / 1000.0
        response_ms = (completion - dispatch.arrival_s) * 1000.0
        self.req_arrival_s.append(dispatch.arrival_s)
        self.req_start_s.append(dispatch.start_s)
        self.req_completion_s.append(completion)
        self.latencies_ms.append(float(latency_ms))
        self.responses_ms.append(response_ms)
        slo = self.spec.slo
        self.missed.append(bool(slo is not None and response_ms > slo.deadline_ms))
        self._served += 1
        if self.spec.closed_loop:
            self.arrivals_seen += 1
            heapq.heapreplace(
                self._slot_free_s,
                dispatch.start_s + (latency_ms + self.spec.gap_ms) / 1000.0,
            )
            if (
                self.spec.max_duration_s is not None
                and self._free_s - self.start_s >= self.spec.max_duration_s
            ):
                self.done = True
        else:
            self._queue.popleft()
            self.depth_events.append((dispatch.start_s, len(self._queue)))
            heapq.heapreplace(self._slot_free_s, completion)

    def deny_pending(self) -> None:
        """Drop the pending dispatch: predictive admission denied it.

        The request leaves the system unserved at its release instant —
        no service slot is consumed and no latency recorded; the denial is
        counted in ``denied_times``.  A closed-loop tenant's chain advances
        (the denial consumes one of its ``max_requests``, so a permanently
        infeasible deadline cannot spin the loop); an open-loop tenant's
        queue pops as if the request had been dispatched.
        """
        dispatch = self._pending
        if dispatch is None:
            raise RuntimeError(f"tenant {self.spec.name!r}: deny_pending() without prepare()")
        self._pending = None
        self.denied_times.append(dispatch.start_s)
        if self.spec.closed_loop:
            self.arrivals_seen += 1
            self._served += 1
            heapq.heapreplace(
                self._slot_free_s, dispatch.start_s + self.spec.gap_ms / 1000.0
            )
            if (
                self.spec.max_duration_s is not None
                and self._free_s - self.start_s >= self.spec.max_duration_s
            ):
                self.done = True
        else:
            self._queue.popleft()
            self.depth_events.append((dispatch.start_s, len(self._queue)))

    def defer_pending(self, new_start_s: float) -> Dispatch:
        """Re-queue the pending dispatch to a later release time.

        Predictive admission's ``"requeue"`` action: the request stays
        pending but is released at ``new_start_s`` (strictly later), when
        the fleet's state has changed and the prediction may clear the
        deadline.  Open-loop arrivals up to the new release are admitted —
        exactly what :meth:`prepare` would have done at that start.  The
        adaptation hook is *not* re-invoked (the request was already
        planned).
        """
        dispatch = self._pending
        if dispatch is None:
            raise RuntimeError(f"tenant {self.spec.name!r}: defer_pending() without prepare()")
        if new_start_s <= dispatch.start_s:
            raise ValueError(
                f"tenant {self.spec.name!r}: defer_pending needs a strictly later "
                f"start, got {new_start_s} <= {dispatch.start_s}"
            )
        if not self.spec.closed_loop:
            self._admit_until(new_start_s)
        self._pending = Dispatch(
            arrival_s=dispatch.arrival_s, start_s=new_start_s, plan=dispatch.plan
        )
        return self._pending

    # ------------------------------------------------------------------ #
    # fleet-churn transitions (repro.runtime.faults)
    # ------------------------------------------------------------------ #
    @property
    def pending_attempt(self) -> int:
        """Attempt number (1-based) of the pending dispatch's current try."""
        return self._pending_attempt

    @property
    def pending_ordinal(self) -> int:
        """Per-tenant dispatch ordinal of the pending request (retry-jitter
        counter: identical across loops because the prepare sequence is)."""
        return self._pending_ordinal

    @property
    def pending_first_start_s(self) -> float:
        """Release time of the pending request's *first* attempt."""
        return self._pending_first_start_s

    def retry_pending(self, new_start_s: float) -> Dispatch:
        """Re-release the pending dispatch after a mid-inference crash.

        The crashed attempt is counted as lost; the request stays pending
        and re-enters dispatch at ``new_start_s`` (crash instant plus the
        retry policy's backoff, strictly later than the failed release).
        Like :meth:`defer_pending`, open-loop arrivals up to the new release
        are admitted and the adaptation hook is not re-invoked — replanning
        around the dead device happens at the serving loop's next selection.
        """
        dispatch = self._pending
        if dispatch is None:
            raise RuntimeError(f"tenant {self.spec.name!r}: retry_pending() without prepare()")
        if new_start_s <= dispatch.start_s:
            raise ValueError(
                f"tenant {self.spec.name!r}: retry_pending needs a strictly later "
                f"start, got {new_start_s} <= {dispatch.start_s}"
            )
        self.num_lost_attempts += 1
        self._pending_attempt += 1
        if not self.spec.closed_loop:
            self._admit_until(new_start_s)
        self._pending = Dispatch(
            arrival_s=dispatch.arrival_s, start_s=new_start_s, plan=dispatch.plan
        )
        return self._pending

    def abandon_pending(self, abandon_s: float, lost: int = 0) -> None:
        """Drop the pending dispatch at a crash: its retry budget is spent.

        Unlike a denial the request *did* occupy its service slot — from its
        release until the crash at ``abandon_s`` — so the slot is advanced to
        the abandon instant (plus think time for closed-loop chains).
        ``lost`` extra crashed attempts are added to the lost-attempt count.
        """
        dispatch = self._pending
        if dispatch is None:
            raise RuntimeError(f"tenant {self.spec.name!r}: abandon_pending() without prepare()")
        if abandon_s < dispatch.start_s:
            raise ValueError(
                f"tenant {self.spec.name!r}: abandon_pending needs abandon_s >= the "
                f"release, got {abandon_s} < {dispatch.start_s}"
            )
        self._pending = None
        self.abandoned_times.append(abandon_s)
        self.num_lost_attempts += int(lost)
        self._served += 1
        if self.spec.closed_loop:
            self.arrivals_seen += 1
            heapq.heapreplace(
                self._slot_free_s, abandon_s + self.spec.gap_ms / 1000.0
            )
            if (
                self.spec.max_duration_s is not None
                and self._free_s - self.start_s >= self.spec.max_duration_s
            ):
                self.done = True
        else:
            self._queue.popleft()
            self.depth_events.append((dispatch.start_s, len(self._queue)))
            heapq.heapreplace(self._slot_free_s, abandon_s)

    def commit_resolved(self, resolved) -> None:
        """Commit a :class:`~repro.runtime.faults.ResolvedRequest` — the
        uncontended loops' one-commit-per-request fault resolution."""
        self.num_lost_attempts += resolved.lost_attempts
        if resolved.status == "abandoned":
            self.abandon_pending(resolved.abandon_s)
            return
        if resolved.retried:
            self.num_retried += 1
            self.retry_added_ms += resolved.retry_added_ms
        self.commit(resolved.latency_ms)

    # ------------------------------------------------------------------ #
    def cached_latency(self, key: Tuple) -> Optional[float]:
        """Latency of an earlier identical (plan, network-state) dispatch.

        Sound for the same reason the batch engine's plan LRU is: an equal
        key means the scalar evaluator would compute the identical schedule,
        so replaying the stored float is behaviour-preserving.
        """
        return self._eval_cache.get(key)

    def cache_latency(self, key: Tuple, model: object, latency_ms: float) -> None:
        """Store one dispatch's evaluated latency under its signature key."""
        self._eval_cache.put(key, float(latency_ms))
        self._eval_cache_models[id(model)] = model

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters of the per-tenant plan-evaluation cache."""
        return self._eval_cache.info()

    # ------------------------------------------------------------------ #
    def report(self) -> TenantReport:
        if self._pending is not None:
            raise RuntimeError(f"tenant {self.spec.name!r}: report() with a pending dispatch")
        depth = (
            np.asarray(self.depth_events, dtype=np.float64)
            if self.depth_events
            else np.empty((0, 2))
        )
        return TenantReport(
            name=self.spec.name,
            slo=self.spec.slo,
            arrival_s=np.asarray(self.req_arrival_s),
            start_s=np.asarray(self.req_start_s),
            completion_s=np.asarray(self.req_completion_s),
            latency_ms=np.asarray(self.latencies_ms),
            response_ms=np.asarray(self.responses_ms),
            deadline_missed=np.asarray(self.missed, dtype=bool),
            num_arrivals=self.arrivals_seen + len(self.shed_times),
            num_rejected=len(self.rejected_times),
            rejected_times_s=list(self.rejected_times),
            replan_times_s=list(self.replan_times),
            queue_depth_series=depth,
            final_method=self.current_plan.method,
            busy_until_s=self.busy_until_s,
            num_denied=len(self.denied_times),
            denied_times_s=list(self.denied_times),
            num_shed=len(self.shed_times),
            shed_times_s=list(self.shed_times),
            num_abandoned=len(self.abandoned_times),
            abandoned_times_s=list(self.abandoned_times),
            num_lost_attempts=self.num_lost_attempts,
            num_retried=self.num_retried,
            retry_added_ms=self.retry_added_ms,
        )


__all__ = [
    "SLO",
    "TenantSpec",
    "TenantRuntime",
    "TenantReport",
    "Dispatch",
    "AdaptationHook",
]
