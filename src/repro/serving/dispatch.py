"""Cross-tenant cluster dispatch: disciplines, weights and concurrency caps.

When lane contention is modelled (:mod:`repro.runtime.contention`), the
order in which concurrent tenants' requests reach the shared fleet *matters*
— the first request scheduled occupies lanes the next one queues on.  The
:class:`FleetDispatcher` makes that order an explicit, pluggable policy:

``fifo``
    Release-time order: the request dispatched earliest in simulated time
    goes first (ties broken by tenant position).
``deadline``
    Priority by deadline slack: the request whose SLO deadline leaves the
    least slack at dispatch (``arrival + deadline - release``) goes first;
    tenants without an SLO sort last.
``wfq``
    Weighted fair queueing by least attained normalised service: each
    tenant accumulates ``latency / weight`` virtual time as its requests are
    served, and the tenant with the smallest virtual time goes first — a
    tenant with twice the weight receives twice the fleet throughput under
    backlog (:attr:`~repro.serving.tenants.TenantSpec.weight`).

All three disciplines are deterministic functions of information available
at selection time, which is what lets the contended reference and batched
event loops pick the identical global order — a precondition for their
bit-identity.  The same determinism is why the dispatch order is inherently
*sequential*: each selection depends on every earlier completion, so the
array serving engine (:mod:`repro.serving.engine`) never vectorises across
it — contended array runs keep this dispatcher's canonical order and take
their speedup from the vectorised lane residuals instead.  Within one
tenant, requests enter the dispatcher one at a time regardless of the
tenant's :attr:`~repro.serving.tenants.TenantSpec.slots` pool (slot
overlap is an independent-serving construct; under contention the fleet,
not the tenant, is the concurrency bottleneck being modelled).

:class:`ClusterPolicy` bundles the discipline with the cluster-wide
``max_inflight`` admission cap and the predictive-admission mode; passing a
policy to :meth:`~repro.serving.simulator.ServingSimulator.run` is what
switches the serving loop from independent per-tenant slots to shared-fleet
contention.  See ``docs/architecture.md`` for where dispatch sits in the
subsystem map and ``docs/operations.md`` for choosing a discipline and
admission mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.serving.tenants import Dispatch, TenantSpec

#: Cross-tenant scheduling disciplines understood by the dispatcher.
DISCIPLINES: Tuple[str, ...] = ("fifo", "deadline", "wfq")

#: Admission modes: admit everything, or consult the contended prediction.
ADMISSION_MODES: Tuple[str, ...] = ("none", "predictive")

#: What to do with a request whose prediction misses its SLO deadline.
PREDICTED_MISS_ACTIONS: Tuple[str, ...] = ("reject", "requeue")


@dataclass(frozen=True)
class ClusterPolicy:
    """Shared-fleet serving policy (contention model + dispatch discipline).

    Parameters
    ----------
    discipline:
        One of :data:`DISCIPLINES`; decides which pending request reaches
        the fleet next.
    max_inflight:
        Cluster-wide cap on concurrently in-flight requests.  Requests
        beyond it wait at the admission gate (the wait counts toward their
        response time).  ``None`` leaves concurrency bounded only by the
        tenants' own service slots.
    memo_size:
        LRU capacity of the batched loop's contended-schedule memo.
    admission:
        ``"none"`` admits every dispatched request; ``"predictive"`` asks
        the contention evaluator for the predicted completion at release
        time and intercepts requests whose prediction already misses the
        tenant's SLO deadline (tenants without an SLO are never
        intercepted).
    on_predicted_miss:
        What predictive admission does with an intercepted request:
        ``"reject"`` denies it outright (counted per tenant in
        ``num_denied``); ``"requeue"`` defers its release to the fleet's
        next lane-free event and re-predicts — a request that can never
        meet its deadline (even on an idle fleet) is denied.
    window_ms:
        Bucket width of the :class:`~repro.runtime.contention.FleetLoadSeries`
        attached to the run's fleet report.  ``None`` (default) records run
        totals only — the series costs per-commit bookkeeping, so it is
        opt-in.
    """

    discipline: str = "fifo"
    max_inflight: Optional[int] = None
    memo_size: int = 4096
    admission: str = "none"
    on_predicted_miss: str = "reject"
    window_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.discipline not in DISCIPLINES:
            raise ValueError(
                f"discipline must be one of {DISCIPLINES}, got {self.discipline!r}"
            )
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1 (or None), got {self.max_inflight}"
            )
        if self.memo_size < 1:
            raise ValueError(f"memo_size must be >= 1, got {self.memo_size}")
        if self.admission not in ADMISSION_MODES:
            raise ValueError(
                f"admission must be one of {ADMISSION_MODES}, got {self.admission!r}"
            )
        if self.on_predicted_miss not in PREDICTED_MISS_ACTIONS:
            raise ValueError(
                f"on_predicted_miss must be one of {PREDICTED_MISS_ACTIONS}, "
                f"got {self.on_predicted_miss!r}"
            )
        if self.window_ms is not None and self.window_ms <= 0:
            raise ValueError(f"window_ms must be > 0 (or None), got {self.window_ms}")


class FleetDispatcher:
    """Selects which tenant's pending request is scheduled next.

    One instance per serving run; both event loops drive the same instance
    code path, so the global request order — and therefore every contended
    schedule — is decided identically in both.
    """

    def __init__(self, discipline: str, specs: Sequence[TenantSpec]) -> None:
        if discipline not in DISCIPLINES:
            raise ValueError(
                f"discipline must be one of {DISCIPLINES}, got {discipline!r}"
            )
        self.discipline = discipline
        self._specs = list(specs)
        self._vtime = [0.0] * len(self._specs)

    def selection_key(self, index: int, dispatch: Dispatch) -> Tuple:
        """Sort key of one pending dispatch (smaller = served sooner)."""
        if self.discipline == "fifo":
            return (dispatch.start_s, index)
        if self.discipline == "deadline":
            slo = self._specs[index].slo
            slack = (
                dispatch.arrival_s + slo.deadline_ms / 1000.0 - dispatch.start_s
                if slo is not None
                else float("inf")
            )
            return (slack, dispatch.start_s, index)
        return (self._vtime[index], dispatch.start_s, index)

    def select(self, pending: Dict[int, Dispatch], horizon_s: Optional[float] = None) -> int:
        """Index of the tenant whose dispatch goes to the fleet next.

        ``horizon_s`` is the time the fleet stays busy (its latest lane
        busy-until).  Priority only reorders requests that actually compete
        for a busy fleet: dispatches released while the fleet still works —
        ``start_s <= max(earliest pending release, horizon)`` — are
        *eligible* and compete by discipline; a dispatch released after the
        fleet drains cannot overtake earlier work it never contended with
        (that inversion would charge an idle-fleet request for lane
        occupancy created in its future).  ``None`` disables the window
        (pure priority order).
        """
        if not pending:
            raise ValueError("select() called with no pending dispatches")
        candidates = pending
        if horizon_s is not None:
            cutoff = max(min(d.start_s for d in pending.values()), horizon_s)
            candidates = {
                index: d for index, d in pending.items() if d.start_s <= cutoff
            }
        return min(
            candidates, key=lambda index: self.selection_key(index, candidates[index])
        )

    def account(self, index: int, latency_ms: float) -> None:
        """Record served work (advances WFQ virtual time; no-op otherwise)."""
        if self.discipline == "wfq":
            self._vtime[index] += latency_ms / self._specs[index].weight


__all__ = [
    "ADMISSION_MODES",
    "DISCIPLINES",
    "PREDICTED_MISS_ACTIONS",
    "ClusterPolicy",
    "FleetDispatcher",
]
