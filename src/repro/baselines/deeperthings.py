"""DeeperThings (Stahl et al., IJPP 2021): multiple fused blocks, equal split.

DeeperThings extends DeepThings by fusing *all* layers of the network into a
sequence of fused blocks (including the fully-connected layers via filter
splitting) so that no single device ever has to hold the whole model.  For
the latency-oriented comparison of the paper, the relevant behaviour is:
multiple fused layer-volumes covering the entire spatial prefix, each split
*equally* across the devices (homogeneous-cluster assumption retained).

The fusion grid follows the model's pooling boundaries, which is how the
original partitions convolutional stacks.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.base import BaselinePlanner, pool_boundaries
from repro.devices.profiles import LatencyProfile
from repro.devices.specs import DeviceInstance
from repro.network.topology import NetworkModel
from repro.nn.graph import ModelSpec
from repro.nn.splitting import SplitDecision
from repro.runtime.plan import DistributionPlan


class DeeperThingsPlanner(BaselinePlanner):
    """Equal split of every pool-bounded fused block."""

    method_name = "deeperthings"

    def plan(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        profiles: Optional[Sequence[LatencyProfile]] = None,
    ) -> DistributionPlan:
        boundaries = pool_boundaries(model)
        volumes = model.partition(boundaries)
        decisions = [
            SplitDecision.equal(len(devices), volume.output_height) for volume in volumes
        ]
        return DistributionPlan(
            model=model,
            devices=devices,
            boundaries=boundaries,
            decisions=decisions,
            method=self.method_name,
        )


__all__ = ["DeeperThingsPlanner"]
