"""The linear latency model assumed by CoEdge / MoDNN / MeDNN / AOFL.

These baselines predict the latency of a candidate distribution as

    compute_i  = MACs_i / capability_i
    transmit_i = bytes_i / bandwidth_i
    volume_l   = max_i (compute_i + transmit_i)
    total      = sum_l volume_l

— a model that is linear in the amount of work and data assigned to each
device and that ignores tile quantisation, per-layer launch overheads,
memory-bound layers and I/O fixed costs.  The model is used *only for the
baselines' own planning decisions*; every method is evaluated on the true
nonlinear simulator, which is exactly the setting of the paper (the
baselines' assumptions are what DistrEdge relaxes).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.devices.specs import DeviceInstance
from repro.network.topology import NetworkModel
from repro.nn.graph import ModelSpec
from repro.nn.splitting import SplitDecision, split_volume
from repro.runtime.plan import redistribution_bytes
from repro.utils.units import FP16_BYTES, bytes_per_second


class LinearLatencyModel:
    """Latency predictions under the baselines' linear assumptions."""

    def __init__(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        capabilities: np.ndarray,
        input_bytes_per_element: float = 0.4,
    ) -> None:
        if len(capabilities) != len(devices):
            raise ValueError("capabilities must have one entry per device")
        self.model = model
        self.devices = list(devices)
        self.network = network
        self.capabilities = np.asarray(capabilities, dtype=float)
        self.input_bytes_per_element = float(input_bytes_per_element)

    # ------------------------------------------------------------------ #
    def _bandwidths_mbps(self) -> np.ndarray:
        return np.array(
            [self.network.nominal_mbps(i) for i in range(len(self.devices))], dtype=float
        )

    def predict_plan_latency_ms(
        self,
        boundaries: Sequence[int],
        decisions: Sequence[SplitDecision],
    ) -> float:
        """Linear-model end-to-end latency of a candidate plan (ms)."""
        volumes = self.model.partition(boundaries)
        if len(volumes) != len(decisions):
            raise ValueError("one split decision per volume is required")
        bandwidths = self._bandwidths_mbps()
        total_ms = 0.0
        prev_parts = None
        for volume, decision in zip(volumes, decisions):
            parts = split_volume(volume, decision)
            compute_ms = np.zeros(len(self.devices))
            transmit_ms = np.zeros(len(self.devices))
            for part in parts:
                if part.is_empty:
                    continue
                i = part.device_index
                compute_ms[i] = part.macs / self.capabilities[i] * 1000.0
            if prev_parts is None:
                in_w, in_c = volume.first.in_w, volume.first.in_c
                for part in parts:
                    if part.is_empty:
                        continue
                    i = part.device_index
                    n_bytes = part.num_input_rows * in_w * in_c * self.input_bytes_per_element
                    transmit_ms[i] = n_bytes / bytes_per_second(bandwidths[i]) * 1000.0
            else:
                row_bytes = volume.first.in_w * volume.first.in_c * FP16_BYTES
                for (src, dst), n_bytes in redistribution_bytes(
                    prev_parts, parts, row_bytes
                ).items():
                    rate = min(bandwidths[src], bandwidths[dst])
                    transmit_ms[dst] += n_bytes / bytes_per_second(rate) * 1000.0
            total_ms += float(np.max(compute_ms + transmit_ms))
            prev_parts = parts
        # Final gather of the last volume's output to the requester/head.
        last_parts = prev_parts or []
        gather_ms = 0.0
        for part in last_parts:
            if part.is_empty:
                continue
            rate = bandwidths[part.device_index]
            gather_ms = max(
                gather_ms, part.output_bytes / bytes_per_second(rate) * 1000.0
            )
        return total_ms + gather_ms

    # ------------------------------------------------------------------ #
    def proportional_fractions(
        self,
        volume_macs_per_row: float,
        volume_row_bytes: float,
        use_network: bool = True,
        active: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Per-device fractions that equalise the linear per-row cost.

        ``use_network=False`` reproduces MoDNN/MeDNN (compute-capability
        ratio only); ``True`` reproduces CoEdge/AOFL (compute plus the
        device's link time for the rows it must receive).  ``active`` masks
        devices that should receive no work.
        """
        n = len(self.devices)
        bandwidths = self._bandwidths_mbps()
        seconds_per_row = volume_macs_per_row / self.capabilities
        if use_network:
            link_bytes_per_s = np.array([bytes_per_second(b) for b in bandwidths])
            seconds_per_row = seconds_per_row + volume_row_bytes / link_bytes_per_s
        rates = 1.0 / np.maximum(seconds_per_row, 1e-12)
        if active is not None:
            rates = np.where(active, rates, 0.0)
        if rates.sum() <= 0:
            rates = np.ones(n)
        return rates / rates.sum()


__all__ = ["LinearLatencyModel"]
