"""Offload baseline: run the whole model on the single best provider.

Section V-B: "We select the service provider with the best computing
hardware (e.g., the best GPU) to offload the CNN inference."
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import BaselinePlanner, capability_vector
from repro.devices.profiles import LatencyProfile
from repro.devices.specs import DeviceInstance
from repro.network.topology import NetworkModel
from repro.nn.graph import ModelSpec
from repro.runtime.plan import DistributionPlan


class OffloadPlanner(BaselinePlanner):
    """Single-device offloading to the most capable provider."""

    method_name = "offload"

    def plan(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        profiles: Optional[Sequence[LatencyProfile]] = None,
    ) -> DistributionPlan:
        capabilities = capability_vector(model, devices, profiles)
        best = int(np.argmax(capabilities))
        return DistributionPlan.single_device(
            model, devices, best, method=self.method_name
        )


__all__ = ["OffloadPlanner"]
