"""Baseline CNN-inference-distribution methods (Section V-B).

Seven baselines are reproduced, each returning the same
:class:`~repro.runtime.plan.DistributionPlan` type as DistrEdge so all
methods run through the identical runtime:

================  ==========================================================
CoEdge            linear device+network models, layer-by-layer split
MoDNN             linear device model, layer-by-layer split
MeDNN             linear device model with pruning of weak devices,
                  layer-by-layer split
DeepThings        one fused layer-volume (early layers) split equally, the
                  remaining layers on the gateway device
DeeperThings      multiple fused layer-volumes, equal split
AOFL              linear device+network models, brute-force fused-layer
                  partition search, proportional split
Offload           the whole model on the single best provider
================  ==========================================================
"""

from repro.baselines.base import BaselinePlanner, capability_vector
from repro.baselines.linear_model import LinearLatencyModel
from repro.baselines.offload import OffloadPlanner
from repro.baselines.modnn import MoDNNPlanner
from repro.baselines.mednn import MeDNNPlanner
from repro.baselines.coedge import CoEdgePlanner
from repro.baselines.deepthings import DeepThingsPlanner
from repro.baselines.deeperthings import DeeperThingsPlanner
from repro.baselines.aofl import AOFLPlanner

#: All baseline planner classes keyed by their method name.
BASELINE_REGISTRY = {
    cls.method_name: cls
    for cls in (
        CoEdgePlanner,
        MoDNNPlanner,
        MeDNNPlanner,
        DeepThingsPlanner,
        DeeperThingsPlanner,
        AOFLPlanner,
        OffloadPlanner,
    )
}

__all__ = [
    "BaselinePlanner",
    "capability_vector",
    "LinearLatencyModel",
    "OffloadPlanner",
    "MoDNNPlanner",
    "MeDNNPlanner",
    "CoEdgePlanner",
    "DeepThingsPlanner",
    "DeeperThingsPlanner",
    "AOFLPlanner",
    "BASELINE_REGISTRY",
]
