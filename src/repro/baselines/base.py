"""Shared infrastructure for the baseline planners.

Every baseline implements :class:`BaselinePlanner` — the same ``plan()``
signature as :class:`~repro.core.distredge.DistrEdge` — so the experiment
harness treats all methods uniformly.

The linear-model baselines reduce each device to a scalar *computing
capability* (operations per second).  When latency profiles are supplied the
capability is estimated from them (exactly what those papers do with their
own profiling runs); otherwise the device catalogue's peak throughput is
used.  Either way, the capability deliberately ignores the tile-quantisation
staircase, per-layer launch overheads and memory-bound behaviour of the true
latency model — that omission *is* the baselines' documented assumption and
the source of the gap DistrEdge exploits.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from repro.devices.profiles import LatencyProfile, estimate_capability
from repro.devices.specs import DeviceInstance
from repro.network.topology import NetworkModel
from repro.nn.graph import ModelSpec
from repro.runtime.plan import DistributionPlan


def capability_vector(
    model: ModelSpec,
    devices: Sequence[DeviceInstance],
    profiles: Optional[Sequence[LatencyProfile]] = None,
) -> np.ndarray:
    """Per-device computing capability in MACs/second (the linear model).

    With profiles the capability is the backbone MAC count divided by the
    profile-predicted full-backbone latency; without profiles it falls back
    to the catalogue's peak throughput.
    """
    if profiles is not None:
        if len(profiles) != len(devices):
            raise ValueError(
                f"{len(devices)} devices but {len(profiles)} profiles were provided"
            )
        return np.array(
            [
                estimate_capability(model, profile, device_type=d.type_name).macs_per_second
                for d, profile in zip(devices, profiles)
            ],
            dtype=float,
        )
    return np.array([d.dtype.peak_macs_per_s for d in devices], dtype=float)


def bandwidth_vector(devices: Sequence[DeviceInstance], network: NetworkModel) -> np.ndarray:
    """Nominal per-provider bandwidth (Mbps) as seen by the planners."""
    return np.array(
        [network.nominal_mbps(i) for i in range(len(devices))],
        dtype=float,
    )


class BaselinePlanner(abc.ABC):
    """Interface shared by every distribution method."""

    #: Short identifier used in result tables (e.g. ``"coedge"``).
    method_name: str = "baseline"

    @abc.abstractmethod
    def plan(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        profiles: Optional[Sequence[LatencyProfile]] = None,
    ) -> DistributionPlan:
        """Produce a distribution plan for the given deployment."""

    # Convenience -------------------------------------------------------- #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(method={self.method_name!r})"


def pool_boundaries(model: ModelSpec) -> List[int]:
    """Partition boundaries after every pooling layer (a natural fusion grid).

    Always includes 0 and the number of spatial layers; consecutive
    duplicates are removed (e.g. when the model ends with a pooling layer).
    """
    bounds = [0]
    spatial = model.spatial_layers
    for idx, layer in enumerate(spatial):
        if type(layer).__name__ == "PoolSpec" and idx + 1 < len(spatial):
            bounds.append(idx + 1)
    bounds.append(len(spatial))
    return sorted(set(bounds))


__all__ = [
    "BaselinePlanner",
    "capability_vector",
    "bandwidth_vector",
    "pool_boundaries",
]
