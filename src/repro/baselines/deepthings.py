"""DeepThings (Zhao et al., TCAD 2018): fused tile partitioning, equal split.

DeepThings fuses the early convolutional layers into a single fused block
(Fused Tile Partitioning) whose output grid is divided *equally* among the
participating devices; the remaining layers are executed on the gateway
device.  The equal split reflects DeepThings' homogeneous-cluster assumption
— the limitation the paper highlights for heterogeneous testbeds.

In this reproduction the fused block covers the spatial prefix up to the
point where the feature-map height has shrunk to ``fuse_until_height_ratio``
of the input height (default one quarter, matching DeepThings' use of the
early, activation-heavy layers), and the gateway is the most capable
provider.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import BaselinePlanner, capability_vector
from repro.devices.profiles import LatencyProfile
from repro.devices.specs import DeviceInstance
from repro.network.topology import NetworkModel
from repro.nn.graph import ModelSpec
from repro.nn.splitting import SplitDecision
from repro.runtime.plan import DistributionPlan


class DeepThingsPlanner(BaselinePlanner):
    """One fused layer-volume split equally + remaining layers on the gateway."""

    method_name = "deepthings"

    def __init__(self, fuse_until_height_ratio: float = 0.25) -> None:
        if not 0.0 < fuse_until_height_ratio <= 1.0:
            raise ValueError(
                f"fuse_until_height_ratio must be in (0, 1], got {fuse_until_height_ratio}"
            )
        self.fuse_until_height_ratio = float(fuse_until_height_ratio)

    # ------------------------------------------------------------------ #
    def fused_prefix_length(self, model: ModelSpec) -> int:
        """Number of leading spatial layers included in the fused block."""
        spatial = model.spatial_layers
        input_height = spatial[0].in_h
        threshold = input_height * self.fuse_until_height_ratio
        end = len(spatial)
        for idx, layer in enumerate(spatial):
            if layer.out_h <= threshold:
                end = idx + 1
                break
        return max(1, min(end, len(spatial)))

    def plan(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        profiles: Optional[Sequence[LatencyProfile]] = None,
    ) -> DistributionPlan:
        capabilities = capability_vector(model, devices, profiles)
        gateway = int(np.argmax(capabilities))
        prefix = self.fused_prefix_length(model)
        n_spatial = model.num_spatial_layers
        num_devices = len(devices)

        if prefix >= n_spatial:
            boundaries = [0, n_spatial]
            volumes = model.partition(boundaries)
            decisions = [SplitDecision.equal(num_devices, volumes[0].output_height)]
        else:
            boundaries = [0, prefix, n_spatial]
            volumes = model.partition(boundaries)
            decisions = [
                SplitDecision.equal(num_devices, volumes[0].output_height),
                SplitDecision.single_device(gateway, num_devices, volumes[1].output_height),
            ]
        return DistributionPlan(
            model=model,
            devices=devices,
            boundaries=boundaries,
            decisions=decisions,
            head_device=gateway,
            method=self.method_name,
        )


__all__ = ["DeepThingsPlanner"]
