"""MoDNN (Mao et al., DATE 2017): layer-by-layer, capability-proportional split.

MoDNN partitions every layer independently across the participating devices,
with each device's share proportional to its (assumed linear) computing
capability.  Network conditions are not taken into account when choosing the
split ratios — one of the stated limitations the paper addresses.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.base import BaselinePlanner, capability_vector
from repro.baselines.linear_model import LinearLatencyModel
from repro.devices.profiles import LatencyProfile
from repro.devices.specs import DeviceInstance
from repro.network.topology import NetworkModel
from repro.nn.graph import ModelSpec
from repro.nn.splitting import SplitDecision
from repro.runtime.plan import DistributionPlan


class MoDNNPlanner(BaselinePlanner):
    """Layer-by-layer splitting proportional to compute capability only."""

    method_name = "modnn"

    def plan(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        profiles: Optional[Sequence[LatencyProfile]] = None,
    ) -> DistributionPlan:
        capabilities = capability_vector(model, devices, profiles)
        linear = LinearLatencyModel(model, devices, network, capabilities)
        boundaries = model.layer_by_layer_partition()
        volumes = model.partition(boundaries)
        decisions = []
        for volume in volumes:
            macs_per_row = volume.macs / max(volume.output_height, 1)
            fractions = linear.proportional_fractions(
                macs_per_row, volume_row_bytes=0.0, use_network=False
            )
            decisions.append(SplitDecision.from_fractions(fractions, volume.output_height))
        return DistributionPlan(
            model=model,
            devices=devices,
            boundaries=boundaries,
            decisions=decisions,
            method=self.method_name,
        )


__all__ = ["MoDNNPlanner"]
