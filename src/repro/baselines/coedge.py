"""CoEdge (Zeng et al., ToN 2020): layer-by-layer split with linear
device *and* network models.

CoEdge chooses, for every layer, the workload share that equalises each
device's (linear) compute time plus the time to receive its share of the
input over its link.  It therefore reacts to bandwidth differences — unlike
MoDNN/MeDNN — but still assumes latency is proportional to assigned rows and
still transmits between every pair of consecutive layers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.baselines.base import BaselinePlanner, capability_vector
from repro.baselines.linear_model import LinearLatencyModel
from repro.devices.profiles import LatencyProfile
from repro.devices.specs import DeviceInstance
from repro.network.topology import NetworkModel
from repro.nn.graph import ModelSpec
from repro.nn.splitting import SplitDecision
from repro.runtime.plan import DistributionPlan
from repro.utils.units import FP16_BYTES


class CoEdgePlanner(BaselinePlanner):
    """Layer-by-layer splitting balancing linear compute + transmission time."""

    method_name = "coedge"

    def plan(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        profiles: Optional[Sequence[LatencyProfile]] = None,
    ) -> DistributionPlan:
        capabilities = capability_vector(model, devices, profiles)
        linear = LinearLatencyModel(model, devices, network, capabilities)
        boundaries = model.layer_by_layer_partition()
        volumes = model.partition(boundaries)
        decisions = []
        for volume in volumes:
            macs_per_row = volume.macs / max(volume.output_height, 1)
            # Bytes a device must pull per assigned output row: the matching
            # rows of the layer's input tensor (stride-scaled).
            row_bytes = (
                volume.first.in_w * volume.first.in_c * FP16_BYTES * volume.first.stride
            )
            fractions = linear.proportional_fractions(
                macs_per_row, volume_row_bytes=row_bytes, use_network=True
            )
            decisions.append(SplitDecision.from_fractions(fractions, volume.output_height))
        return DistributionPlan(
            model=model,
            devices=devices,
            boundaries=boundaries,
            decisions=decisions,
            method=self.method_name,
        )


__all__ = ["CoEdgePlanner"]
