"""MeDNN (Mao et al., ICCAD 2017): MoDNN with enhanced partition/deployment.

MeDNN keeps MoDNN's linear capability model and layer-by-layer splitting but
adds a deployment-pruning step: devices whose capability share is too small
to amortise their coordination overhead are excluded and their share is
redistributed over the remaining devices.  (In the original system this is
the "greedy two-dimensional partition" plus its deployment heuristics; the
pruning captures the behaviour that matters for heterogeneous clusters —
e.g. a Raspberry Pi alongside Jetson boards no longer receives a sliver of
every layer.)
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.baselines.base import BaselinePlanner, capability_vector
from repro.baselines.linear_model import LinearLatencyModel
from repro.devices.profiles import LatencyProfile
from repro.devices.specs import DeviceInstance
from repro.network.topology import NetworkModel
from repro.nn.graph import ModelSpec
from repro.nn.splitting import SplitDecision
from repro.runtime.plan import DistributionPlan


class MeDNNPlanner(BaselinePlanner):
    """Layer-by-layer capability-proportional split with weak-device pruning."""

    method_name = "mednn"

    def __init__(self, prune_threshold: float = 0.05) -> None:
        if not 0.0 <= prune_threshold < 1.0:
            raise ValueError(f"prune_threshold must be in [0, 1), got {prune_threshold}")
        self.prune_threshold = float(prune_threshold)

    def plan(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        profiles: Optional[Sequence[LatencyProfile]] = None,
    ) -> DistributionPlan:
        capabilities = capability_vector(model, devices, profiles)
        share = capabilities / capabilities.sum()
        active = share >= self.prune_threshold
        if not np.any(active):
            active = share == share.max()
        linear = LinearLatencyModel(model, devices, network, capabilities)
        boundaries = model.layer_by_layer_partition()
        volumes = model.partition(boundaries)
        decisions = []
        for volume in volumes:
            macs_per_row = volume.macs / max(volume.output_height, 1)
            fractions = linear.proportional_fractions(
                macs_per_row, volume_row_bytes=0.0, use_network=False, active=active
            )
            decisions.append(SplitDecision.from_fractions(fractions, volume.output_height))
        return DistributionPlan(
            model=model,
            devices=devices,
            boundaries=boundaries,
            decisions=decisions,
            method=self.method_name,
        )


__all__ = ["MeDNNPlanner"]
