"""AOFL (Zhou et al., SEC 2019): adaptive fused-layer parallelisation.

AOFL is the strongest baseline in the paper: it fuses layers into multiple
fused blocks, *searches* for the best fusion points, and splits each block
across devices with a ratio derived from linear device and network models.
The paper's critique — which this reproduction preserves — is twofold:

* the split ratio comes from a linear latency model, so tile quantisation,
  launch overheads and memory-bound layers cause imbalance on real devices;
* the partition search itself is effectively brute force, which is why the
  online variant needs ~10 minutes to re-plan when the network changes
  (Section V-F).

The search enumerates subsets of the pooling-boundary fusion grid (bounded
by ``max_candidate_boundaries`` to keep the enumeration the same order of
magnitude as the original's) and scores each candidate with the linear
latency model of :class:`~repro.baselines.linear_model.LinearLatencyModel`.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple


from repro.baselines.base import BaselinePlanner, capability_vector, pool_boundaries
from repro.baselines.linear_model import LinearLatencyModel
from repro.devices.profiles import LatencyProfile
from repro.devices.specs import DeviceInstance
from repro.network.topology import NetworkModel
from repro.nn.graph import ModelSpec
from repro.nn.splitting import SplitDecision
from repro.runtime.plan import DistributionPlan
from repro.utils.units import FP16_BYTES


class AOFLPlanner(BaselinePlanner):
    """Brute-force fused-layer partition search + linear-ratio splitting."""

    method_name = "aofl"

    def __init__(self, max_candidate_boundaries: int = 12) -> None:
        if max_candidate_boundaries < 0:
            raise ValueError(
                f"max_candidate_boundaries must be >= 0, got {max_candidate_boundaries}"
            )
        self.max_candidate_boundaries = int(max_candidate_boundaries)

    # ------------------------------------------------------------------ #
    def _candidate_interior_boundaries(self, model: ModelSpec) -> List[int]:
        """Interior fusion points considered by the search (pool boundaries)."""
        interior = [b for b in pool_boundaries(model) if 0 < b < model.num_spatial_layers]
        return interior[: self.max_candidate_boundaries]

    def _decisions_for(
        self,
        model: ModelSpec,
        boundaries: Sequence[int],
        linear: LinearLatencyModel,
    ) -> List[SplitDecision]:
        """Linear-ratio split decisions for every volume of a partition."""
        decisions = []
        for volume in model.partition(boundaries):
            macs_per_row = volume.macs / max(volume.output_height, 1)
            row_bytes = (
                volume.first.in_w * volume.first.in_c * FP16_BYTES * volume.first.stride
            )
            fractions = linear.proportional_fractions(
                macs_per_row, volume_row_bytes=row_bytes, use_network=True
            )
            decisions.append(SplitDecision.from_fractions(fractions, volume.output_height))
        return decisions

    def plan(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        profiles: Optional[Sequence[LatencyProfile]] = None,
    ) -> DistributionPlan:
        capabilities = capability_vector(model, devices, profiles)
        linear = LinearLatencyModel(model, devices, network, capabilities)
        interior = self._candidate_interior_boundaries(model)
        n_spatial = model.num_spatial_layers

        best: Optional[Tuple[float, List[int], List[SplitDecision]]] = None
        # Brute-force enumeration over subsets of the candidate fusion points.
        for r in range(len(interior) + 1):
            for combo in itertools.combinations(interior, r):
                boundaries = [0, *combo, n_spatial]
                decisions = self._decisions_for(model, boundaries, linear)
                predicted = linear.predict_plan_latency_ms(boundaries, decisions)
                if best is None or predicted < best[0]:
                    best = (predicted, boundaries, decisions)
        assert best is not None
        _, boundaries, decisions = best
        return DistributionPlan(
            model=model,
            devices=devices,
            boundaries=boundaries,
            decisions=decisions,
            method=self.method_name,
        )


__all__ = ["AOFLPlanner"]
