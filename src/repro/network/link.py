"""Transmission-latency model for device-to-device transfers.

The paper measures transmission latency "from the time when the data are read
from the computing unit (i.e., GPU or CPU) on the sending device to the time
when the data are loaded to the memory on the receiving device (both
transmission latency and I/O reading/writing latency are included)" and
explicitly criticises baselines that model it as ``bytes / throughput`` only.

:class:`TransmissionModel` therefore decomposes a transfer into

    latency = io_fixed            (socket/syscall/serialisation setup)
            + bytes * io_per_byte (GPU<->host copies, kernel buffer copies)
            + bytes / throughput  (air time at the instantaneous link rate)

with the throughput supplied by the sender/receiver bandwidth traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.network.bandwidth import BandwidthTrace, ConstantTrace
from repro.utils.units import bytes_per_second
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class TransmissionModel:
    """Parameters of the fixed + per-byte I/O overhead added to air time.

    Defaults: 0.4 ms fixed overhead per transfer (TCP + serialisation +
    scheduling over an already-established connection) and a 2 GB/s effective
    host I/O path, in line with the memcpy/socket costs on Jetson-class
    devices once connections are kept open and buffers are reused (as the
    testbed does — connections are established once by the controller).
    """

    io_fixed_ms: float = 0.4
    io_bytes_per_second: float = 2.0e9

    def __post_init__(self) -> None:
        check_non_negative(self.io_fixed_ms, "io_fixed_ms")
        if self.io_bytes_per_second <= 0:
            raise ValueError("io_bytes_per_second must be positive")

    def io_overhead_ms(self, n_bytes: float) -> float:
        """I/O (non-air-time) component of a transfer of ``n_bytes``."""
        check_non_negative(n_bytes, "n_bytes")
        if n_bytes == 0:
            return 0.0
        return self.io_fixed_ms + n_bytes / self.io_bytes_per_second * 1000.0

    def air_time_ms(self, n_bytes: float, throughput_mbps: float) -> float:
        """Pure network component at the given instantaneous throughput."""
        check_non_negative(n_bytes, "n_bytes")
        if n_bytes == 0:
            return 0.0
        if throughput_mbps <= 0:
            raise ValueError(f"throughput must be positive, got {throughput_mbps}")
        return n_bytes / bytes_per_second(throughput_mbps) * 1000.0

    def transfer_latency_ms(self, n_bytes: float, throughput_mbps: float) -> float:
        """Total transfer latency including I/O overhead."""
        if n_bytes == 0:
            return 0.0
        return self.io_overhead_ms(n_bytes) + self.air_time_ms(n_bytes, throughput_mbps)


@dataclass
class Link:
    """A single device's attachment to the WiFi router.

    Combines a bandwidth trace with the transmission model.  Transfers
    between two devices traverse both endpoints' links; the
    :class:`~repro.network.topology.NetworkModel` takes the minimum of the
    two instantaneous rates, which is how a shaped star topology behaves.
    """

    trace: BandwidthTrace
    model: TransmissionModel = TransmissionModel()

    @classmethod
    def constant(cls, mbps: float, model: Optional[TransmissionModel] = None) -> "Link":
        """Convenience constructor for a fixed-rate link."""
        return cls(trace=ConstantTrace(mbps=mbps), model=model or TransmissionModel())

    def throughput_mbps(self, t_seconds: float) -> float:
        return self.trace.throughput_mbps(t_seconds)

    def transfer_latency_ms(self, n_bytes: float, t_seconds: float = 0.0) -> float:
        """Latency of pushing ``n_bytes`` through this link alone."""
        return self.model.transfer_latency_ms(n_bytes, self.throughput_mbps(t_seconds))


__all__ = ["TransmissionModel", "Link"]
