"""Network substrate: WiFi bandwidth traces and transmission-latency model.

The paper's testbed connects every device to a Linksys AC1900 router over
5 GHz WiFi; the router's OpenWrt firmware shapes each device's bandwidth to
the level under study (50/100/200/300 Mbps for the stable experiments of
Fig. 4, and the highly dynamic 40-100 Mbps traces of Fig. 12).  Transmission
latency is measured end-to-end "from the time when the data are read from the
computing unit on the sending device to the time when the data are loaded to
the memory on the receiving device", i.e. it includes I/O reading/writing in
addition to the air time — which is exactly why the paper argues a pure
``bytes / throughput`` model (CoEdge, AOFL) is inaccurate.
"""

from repro.network.bandwidth import (
    BandwidthTrace,
    ConstantTrace,
    DynamicTrace,
    WiFiTrace,
    make_trace,
)
from repro.network.link import Link, TransmissionModel
from repro.network.topology import REQUESTER, NetworkModel

__all__ = [
    "BandwidthTrace",
    "ConstantTrace",
    "WiFiTrace",
    "DynamicTrace",
    "make_trace",
    "TransmissionModel",
    "Link",
    "NetworkModel",
    "REQUESTER",
]
