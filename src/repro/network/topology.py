"""Star (WiFi-router) network topology connecting requester and providers.

All devices — the service requester, the controller and every service
provider — associate with a single WiFi router (Fig. 3).  A transfer from
device *i* to device *j* therefore traverses *i*'s uplink and *j*'s downlink;
its achievable rate is the minimum of the two shaped rates at that moment.

Device addressing: providers are integers ``0..N-1`` in the order of the
provider list; the requester is the sentinel :data:`REQUESTER`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.devices.specs import DeviceInstance
from repro.network.bandwidth import ConstantTrace, make_trace
from repro.network.link import Link, TransmissionModel
from repro.utils.rng import SeedLike, as_rng, spawn_rng

#: Sentinel endpoint identifier for the service requester (the mobile phone).
REQUESTER: int = -1

Endpoint = int


@dataclass
class NetworkModel:
    """Network view of a cluster: one link per provider plus the requester link.

    Parameters
    ----------
    provider_links:
        One :class:`~repro.network.link.Link` per service provider, indexed
        like the provider list.
    requester_link:
        The requester's own link (defaults to an unshaped 300 Mbps WiFi link,
        matching the phone in the testbed which is never the bottleneck).
    """

    provider_links: List[Link]
    requester_link: Link = field(default_factory=lambda: Link.constant(300.0))

    # ------------------------------------------------------------------ #
    @classmethod
    def from_devices(
        cls,
        devices: Sequence[DeviceInstance],
        kind: str = "wifi",
        seed: SeedLike = 0,
        transmission: Optional[TransmissionModel] = None,
        requester_mbps: float = 300.0,
    ) -> "NetworkModel":
        """Build link objects from device nominal bandwidths.

        ``kind`` selects the trace family (``"constant"``, ``"wifi"`` or
        ``"dynamic"``); each provider gets an independent trace seeded from
        ``seed`` so traces are uncorrelated but reproducible.
        """
        rng = as_rng(seed)
        child_rngs = spawn_rng(rng, len(devices) + 1)
        tm = transmission or TransmissionModel()
        links = [
            Link(trace=make_trace(d.bandwidth_mbps, kind=kind, seed=r), model=tm)
            for d, r in zip(devices, child_rngs[:-1])
        ]
        requester_link = Link(
            trace=make_trace(requester_mbps, kind=kind, seed=child_rngs[-1]), model=tm
        )
        return cls(provider_links=links, requester_link=requester_link)

    @classmethod
    def constant_from_devices(
        cls,
        devices: Sequence[DeviceInstance],
        transmission: Optional[TransmissionModel] = None,
        requester_mbps: float = 300.0,
    ) -> "NetworkModel":
        """Idealised constant-rate variant (used by planners and fast tests)."""
        tm = transmission or TransmissionModel()
        links = [Link(trace=ConstantTrace(d.bandwidth_mbps), model=tm) for d in devices]
        return cls(
            provider_links=links,
            requester_link=Link(trace=ConstantTrace(requester_mbps), model=tm),
        )

    # ------------------------------------------------------------------ #
    @property
    def num_providers(self) -> int:
        return len(self.provider_links)

    @property
    def is_static(self) -> bool:
        """Whether every link's throughput is provably time-invariant.

        True only when all traces (providers and requester) are
        :class:`~repro.network.bandwidth.ConstantTrace` — the network-state
        signature is then the same at every instant, which lets the array
        serving engine commit whole speculated timelines without per-request
        signature verification.  Unknown trace subclasses conservatively
        report ``False``.
        """
        return all(
            isinstance(link.trace, ConstantTrace)
            for link in [*self.provider_links, self.requester_link]
        )

    def link_of(self, endpoint: Endpoint) -> Link:
        """The link attached to ``endpoint`` (provider index or REQUESTER)."""
        if endpoint == REQUESTER:
            return self.requester_link
        if not 0 <= endpoint < len(self.provider_links):
            raise IndexError(f"unknown endpoint {endpoint}")
        return self.provider_links[endpoint]

    def throughput_mbps(self, src: Endpoint, dst: Endpoint, t_seconds: float = 0.0) -> float:
        """Achievable rate between two endpoints at time ``t_seconds``."""
        if src == dst:
            raise ValueError("source and destination endpoints must differ")
        return min(
            self.link_of(src).throughput_mbps(t_seconds),
            self.link_of(dst).throughput_mbps(t_seconds),
        )

    def transfer_latency_ms(
        self,
        src: Endpoint,
        dst: Endpoint,
        n_bytes: float,
        t_seconds: float = 0.0,
    ) -> float:
        """End-to-end latency of moving ``n_bytes`` from ``src`` to ``dst``.

        Local "transfers" (same endpoint) are free: the data already sits in
        the device's memory, which is exactly why fused layer-volumes save
        transmission.
        """
        if src == dst:
            return 0.0
        if n_bytes == 0:
            return 0.0
        model = self.link_of(src).model
        return model.transfer_latency_ms(n_bytes, self.throughput_mbps(src, dst, t_seconds))

    def nominal_mbps(self, endpoint: Endpoint) -> float:
        """Nominal (configured) bandwidth of an endpoint's link."""
        return self.link_of(endpoint).trace.nominal_mbps


__all__ = ["NetworkModel", "REQUESTER", "Endpoint"]
