"""WiFi throughput traces.

Three trace families reproduce the network conditions of the paper:

* :class:`ConstantTrace` — an idealised fixed-throughput link (useful in
  unit tests and for isolating compute effects).
* :class:`WiFiTrace` — a shaped WiFi link at a nominal bandwidth with the
  small fluctuation visible in Fig. 4 (a few percent around the nominal
  value, varying on a seconds time-scale).
* :class:`DynamicTrace` — the highly dynamic traces of Fig. 12: throughput
  wanders between roughly 40 and 100 Mbps with large minute-scale swings.

All traces are deterministic functions of their seed, so planners and the
runtime observe identical conditions across repeated runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.validation import check_positive


class BandwidthTrace:
    """Interface: instantaneous throughput (Mbps) as a function of time (s)."""

    #: Nominal bandwidth (Mbps); used by planners that only look at the mean.
    nominal_mbps: float = 0.0

    def throughput_mbps(self, t_seconds: float) -> float:
        """Instantaneous throughput at time ``t_seconds``."""
        raise NotImplementedError

    def throughput_mbps_array(self, t_seconds: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`throughput_mbps` over an array of times.

        Bit-exact to the scalar method element for element (the array
        serving engine's speculation verifier depends on that); subclasses
        override with a true array evaluation, this fallback just loops.
        """
        return np.array([self.throughput_mbps(float(t)) for t in t_seconds])

    def mean_mbps(self, t_start: float = 0.0, t_end: float = 3600.0, samples: int = 361) -> float:
        """Mean throughput over a window (simple uniform sampling)."""
        ts = np.linspace(t_start, t_end, samples)
        return float(np.mean([self.throughput_mbps(float(t)) for t in ts]))

    def sample(self, t_start: float, t_end: float, step_seconds: float) -> np.ndarray:
        """Sample the trace on a regular grid; returns an ``(N, 2)`` array of
        ``(time_s, mbps)`` rows (handy for plotting Fig. 4 / Fig. 12)."""
        ts = np.arange(t_start, t_end + 1e-9, step_seconds)
        vals = np.array([self.throughput_mbps(float(t)) for t in ts])
        return np.column_stack([ts, vals])


@dataclass
class ConstantTrace(BandwidthTrace):
    """A perfectly stable link at ``mbps``."""

    mbps: float

    def __post_init__(self) -> None:
        check_positive(self.mbps, "mbps")
        self.nominal_mbps = float(self.mbps)

    def throughput_mbps(self, t_seconds: float) -> float:
        return float(self.mbps)

    def throughput_mbps_array(self, t_seconds: np.ndarray) -> np.ndarray:
        return np.full(len(t_seconds), float(self.mbps))


@dataclass
class WiFiTrace(BandwidthTrace):
    """A shaped WiFi link with small stochastic fluctuation (Fig. 4).

    The fluctuation is a smooth mean-reverting (AR(1)) process sampled once
    per ``slot_seconds`` and linearly interpolated, with relative standard
    deviation ``rel_std`` and a hard floor at 50% of nominal — matching the
    narrow bands visible in the paper's sampled traces.
    """

    mbps: float
    rel_std: float = 0.04
    slot_seconds: float = 10.0
    duration_seconds: float = 3600.0
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        check_positive(self.mbps, "mbps")
        check_positive(self.slot_seconds, "slot_seconds")
        check_positive(self.duration_seconds, "duration_seconds")
        if self.rel_std < 0:
            raise ValueError(f"rel_std must be >= 0, got {self.rel_std}")
        self.nominal_mbps = float(self.mbps)
        rng = as_rng(self.seed)
        n = int(np.ceil(self.duration_seconds / self.slot_seconds)) + 2
        # AR(1) around 0 with coefficient 0.8, scaled to the requested std.
        innovations = rng.normal(0.0, 1.0, size=n)
        ar = np.zeros(n)
        for i in range(1, n):
            ar[i] = 0.8 * ar[i - 1] + innovations[i] * np.sqrt(1 - 0.8**2)
        values = self.mbps * (1.0 + self.rel_std * ar)
        self._grid = np.arange(n) * self.slot_seconds
        self._values = np.clip(values, 0.5 * self.mbps, 1.15 * self.mbps)

    def throughput_mbps(self, t_seconds: float) -> float:
        t = float(np.clip(t_seconds, 0.0, self._grid[-1]))
        return float(np.interp(t, self._grid, self._values))

    def throughput_mbps_array(self, t_seconds: np.ndarray) -> np.ndarray:
        ts = np.clip(np.asarray(t_seconds, dtype=np.float64), 0.0, self._grid[-1])
        return np.interp(ts, self._grid, self._values)


@dataclass
class DynamicTrace(BandwidthTrace):
    """A highly dynamic link (Fig. 12): large swings between ``low`` and ``high``.

    Constructed as a bounded random walk sampled once per ``slot_seconds``
    (default one minute, matching the paper's time-slot granularity), with
    occasional large jumps so that the *average* throughput over a long
    window also shifts — the situation that forces AOFL and DistrEdge to
    re-plan partition locations online.
    """

    low_mbps: float = 40.0
    high_mbps: float = 100.0
    slot_seconds: float = 60.0
    duration_seconds: float = 3600.0
    jump_probability: float = 0.15
    seed: SeedLike = 0

    def __post_init__(self) -> None:
        check_positive(self.low_mbps, "low_mbps")
        check_positive(self.high_mbps, "high_mbps")
        if self.high_mbps <= self.low_mbps:
            raise ValueError("high_mbps must exceed low_mbps")
        check_positive(self.slot_seconds, "slot_seconds")
        check_positive(self.duration_seconds, "duration_seconds")
        rng = as_rng(self.seed)
        n = int(np.ceil(self.duration_seconds / self.slot_seconds)) + 2
        span = self.high_mbps - self.low_mbps
        values = np.empty(n)
        values[0] = rng.uniform(self.low_mbps, self.high_mbps)
        for i in range(1, n):
            if rng.random() < self.jump_probability:
                values[i] = rng.uniform(self.low_mbps, self.high_mbps)
            else:
                step = rng.normal(0.0, 0.15 * span)
                values[i] = np.clip(values[i - 1] + step, self.low_mbps, self.high_mbps)
        self._grid = np.arange(n) * self.slot_seconds
        self._values = values
        self.nominal_mbps = float(values.mean())

    def throughput_mbps(self, t_seconds: float) -> float:
        t = float(np.clip(t_seconds, 0.0, self._grid[-1]))
        return float(np.interp(t, self._grid, self._values))

    def throughput_mbps_array(self, t_seconds: np.ndarray) -> np.ndarray:
        ts = np.clip(np.asarray(t_seconds, dtype=np.float64), 0.0, self._grid[-1])
        return np.interp(ts, self._grid, self._values)


def make_trace(
    mbps: float,
    kind: str = "wifi",
    seed: SeedLike = 0,
    **kwargs,
) -> BandwidthTrace:
    """Factory: build a trace of the requested ``kind`` at nominal ``mbps``.

    ``kind`` is one of ``"constant"``, ``"wifi"`` or ``"dynamic"`` (for
    dynamic traces ``mbps`` sets the midpoint of the 40-100 style band).
    """
    if kind == "constant":
        return ConstantTrace(mbps=mbps)
    if kind == "wifi":
        return WiFiTrace(mbps=mbps, seed=seed, **kwargs)
    if kind == "dynamic":
        half_span = kwargs.pop("half_span_mbps", 30.0)
        return DynamicTrace(
            low_mbps=max(mbps - half_span, 1.0),
            high_mbps=mbps + half_span,
            seed=seed,
            **kwargs,
        )
    raise ValueError(f"unknown trace kind {kind!r}; expected constant|wifi|dynamic")


__all__ = ["BandwidthTrace", "ConstantTrace", "WiFiTrace", "DynamicTrace", "make_trace"]
