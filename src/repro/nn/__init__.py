"""NumPy CNN substrate.

This subpackage provides everything the distribution algorithms need from the
neural-network side:

* layer configuration dataclasses (:mod:`repro.nn.layers`),
* NumPy reference implementations of the operators
  (:mod:`repro.nn.tensor_ops`),
* a sequential model container with shape validation and op/byte accounting
  (:mod:`repro.nn.graph`),
* the Vertical-Splitting Law and exact row-range arithmetic used to split
  layer-volumes along the height dimension (:mod:`repro.nn.splitting`),
* numerical execution of whole models and of split-parts, used to verify that
  distributed execution is lossless (:mod:`repro.nn.execution`),
* a model zoo with the eight CNN architectures evaluated in the paper
  (:mod:`repro.nn.model_zoo`).
"""

from repro.nn.layers import (
    ConvSpec,
    DenseSpec,
    LayerSpec,
    PoolSpec,
)
from repro.nn.graph import LayerVolume, ModelBuilder, ModelSpec
from repro.nn.splitting import (
    SplitDecision,
    SplitPart,
    propagate_output_height,
    required_input_rows,
    required_input_rows_chain,
    split_volume,
    vsl_input_height,
)
from repro.nn.execution import ModelExecutor, SplitExecutor
from repro.nn import model_zoo

__all__ = [
    "LayerSpec",
    "ConvSpec",
    "PoolSpec",
    "DenseSpec",
    "ModelSpec",
    "ModelBuilder",
    "LayerVolume",
    "SplitDecision",
    "SplitPart",
    "split_volume",
    "vsl_input_height",
    "propagate_output_height",
    "required_input_rows",
    "required_input_rows_chain",
    "ModelExecutor",
    "SplitExecutor",
    "model_zoo",
]
