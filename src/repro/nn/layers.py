"""Layer configuration dataclasses.

The distribution algorithms in the paper never look at weights; they operate
purely on *layer configurations*: input height/width/depth, output depth,
filter size, stride, padding (Section III-B of the paper).  These dataclasses
capture exactly that information and derive the quantities the algorithms
need — output shape, multiply-accumulate count, activation/weight sizes.

All tensor shapes follow the ``(H, W, C)`` channel-last convention and all
sizes are reported for FP16 activations (the paper runs TensorRT FP16 with
batch size 1).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Tuple

from repro.utils.units import FP16_BYTES
from repro.utils.validation import check_non_negative, check_positive

#: Activation functions understood by the executor.
ACTIVATIONS = ("linear", "relu", "leaky_relu", "sigmoid")


def conv_output_size(size_in: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling along one dimension."""
    if size_in + 2 * padding < kernel:
        raise ValueError(
            f"input size {size_in} with padding {padding} is smaller than kernel {kernel}"
        )
    return (size_in + 2 * padding - kernel) // stride + 1


@dataclass(frozen=True)
class LayerSpec:
    """Base class for all layer configurations.

    Attributes
    ----------
    name:
        Human-readable unique layer name (e.g. ``"conv1_1"``).
    in_h, in_w, in_c:
        Input tensor height, width and channel count.
    """

    name: str
    in_h: int
    in_w: int
    in_c: int

    def __post_init__(self) -> None:
        check_positive(self.in_h, "in_h")
        check_positive(self.in_w, "in_w")
        check_positive(self.in_c, "in_c")

    # -- shape ------------------------------------------------------------
    @property
    def out_h(self) -> int:
        raise NotImplementedError

    @property
    def out_w(self) -> int:
        raise NotImplementedError

    @property
    def out_c(self) -> int:
        raise NotImplementedError

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        """``(H, W, C)`` of the input tensor."""
        return (self.in_h, self.in_w, self.in_c)

    @property
    def output_shape(self) -> Tuple[int, int, int]:
        """``(H, W, C)`` of the output tensor."""
        return (self.out_h, self.out_w, self.out_c)

    # -- spatial arithmetic -------------------------------------------------
    @property
    def kernel(self) -> int:
        """Filter size ``F`` along the height dimension (1 for dense layers)."""
        return 1

    @property
    def stride(self) -> int:
        """Stride ``S`` along the height dimension (1 for dense layers)."""
        return 1

    @property
    def padding(self) -> int:
        """Zero padding ``P`` along the height dimension."""
        return 0

    # -- accounting ---------------------------------------------------------
    @property
    def macs(self) -> int:
        """Multiply-accumulate operations needed for one inference."""
        raise NotImplementedError

    @property
    def weight_count(self) -> int:
        """Number of learned parameters."""
        return 0

    @property
    def input_bytes(self) -> int:
        """Size of the input activation tensor in bytes (FP16)."""
        return self.in_h * self.in_w * self.in_c * FP16_BYTES

    @property
    def output_bytes(self) -> int:
        """Size of the output activation tensor in bytes (FP16)."""
        return self.out_h * self.out_w * self.out_c * FP16_BYTES

    @property
    def weight_bytes(self) -> int:
        """Size of the parameters in bytes (FP16)."""
        return self.weight_count * FP16_BYTES

    @property
    def is_spatial(self) -> bool:
        """True for layers that keep a spatial (H, W) structure and can be
        split along the height dimension (conv/pool), False otherwise."""
        return False

    def macs_for_rows(self, out_rows: int) -> int:
        """MACs needed to produce ``out_rows`` rows of the output tensor.

        Spatial layers scale linearly in the number of produced output rows;
        non-spatial layers are all-or-nothing.
        """
        check_non_negative(out_rows, "out_rows")
        if out_rows == 0:
            return 0
        if not self.is_spatial:
            return self.macs
        out_rows = min(out_rows, self.out_h)
        return int(round(self.macs * out_rows / self.out_h))

    def output_bytes_for_rows(self, out_rows: int) -> int:
        """Bytes of output activation restricted to ``out_rows`` rows."""
        check_non_negative(out_rows, "out_rows")
        if out_rows == 0:
            return 0
        if not self.is_spatial:
            return self.output_bytes
        out_rows = min(out_rows, self.out_h)
        return out_rows * self.out_w * self.out_c * FP16_BYTES

    def with_input(self, in_h: int, in_w: int, in_c: int) -> "LayerSpec":
        """Return a copy of this spec with a different input shape."""
        return dataclasses.replace(self, in_h=in_h, in_w=in_w, in_c=in_c)


@dataclass(frozen=True)
class ConvSpec(LayerSpec):
    """2-D convolution layer configuration.

    Parameters follow the paper's Section III-B: output depth ``out_c``,
    filter size ``kernel_size`` (square filters), stride, symmetric zero
    padding, and an activation fused into the layer.
    """

    out_channels: int = 1
    kernel_size: int = 3
    stride_size: int = 1
    padding_size: int = 0
    activation: str = "relu"
    has_bias: bool = True
    #: Optional grouping factor (1 = dense convolution). Depthwise separable
    #: approximations in the model zoo use ``groups == in_c``.
    groups: int = 1

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive(self.out_channels, "out_channels")
        check_positive(self.kernel_size, "kernel_size")
        check_positive(self.stride_size, "stride_size")
        check_non_negative(self.padding_size, "padding_size")
        check_positive(self.groups, "groups")
        if self.activation not in ACTIVATIONS:
            raise ValueError(
                f"unknown activation {self.activation!r}; expected one of {ACTIVATIONS}"
            )
        if self.in_c % self.groups != 0 or self.out_channels % self.groups != 0:
            raise ValueError(
                f"groups={self.groups} must divide in_c={self.in_c} and out_channels={self.out_channels}"
            )
        # Trigger shape validation early so invalid configurations fail at
        # construction rather than deep inside a planner.
        _ = self.out_h
        _ = self.out_w

    @property
    def out_h(self) -> int:
        return conv_output_size(self.in_h, self.kernel_size, self.stride_size, self.padding_size)

    @property
    def out_w(self) -> int:
        return conv_output_size(self.in_w, self.kernel_size, self.stride_size, self.padding_size)

    @property
    def out_c(self) -> int:
        return self.out_channels

    @property
    def kernel(self) -> int:
        return self.kernel_size

    @property
    def stride(self) -> int:
        return self.stride_size

    @property
    def padding(self) -> int:
        return self.padding_size

    @property
    def is_spatial(self) -> bool:
        return True

    @property
    def macs(self) -> int:
        per_output = self.kernel_size * self.kernel_size * (self.in_c // self.groups)
        return self.out_h * self.out_w * self.out_c * per_output

    @property
    def weight_count(self) -> int:
        w = self.kernel_size * self.kernel_size * (self.in_c // self.groups) * self.out_c
        if self.has_bias:
            w += self.out_c
        return w


@dataclass(frozen=True)
class PoolSpec(LayerSpec):
    """Max-pooling (or average-pooling) layer configuration."""

    kernel_size: int = 2
    stride_size: int = 2
    padding_size: int = 0
    mode: str = "max"

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive(self.kernel_size, "kernel_size")
        check_positive(self.stride_size, "stride_size")
        check_non_negative(self.padding_size, "padding_size")
        if self.mode not in ("max", "avg"):
            raise ValueError(f"mode must be 'max' or 'avg', got {self.mode!r}")
        _ = self.out_h
        _ = self.out_w

    @property
    def out_h(self) -> int:
        return conv_output_size(self.in_h, self.kernel_size, self.stride_size, self.padding_size)

    @property
    def out_w(self) -> int:
        return conv_output_size(self.in_w, self.kernel_size, self.stride_size, self.padding_size)

    @property
    def out_c(self) -> int:
        return self.in_c

    @property
    def kernel(self) -> int:
        return self.kernel_size

    @property
    def stride(self) -> int:
        return self.stride_size

    @property
    def padding(self) -> int:
        return self.padding_size

    @property
    def is_spatial(self) -> bool:
        return True

    @property
    def macs(self) -> int:
        # Comparisons/additions are counted as one operation per window element.
        return self.out_h * self.out_w * self.out_c * self.kernel_size * self.kernel_size

    @property
    def weight_count(self) -> int:
        return 0


@dataclass(frozen=True)
class DenseSpec(LayerSpec):
    """Fully-connected layer configuration.

    The paper computes the trailing fully-connected layer(s) on the provider
    holding the largest share of the last layer-volume, so dense layers are
    never split; they are tracked for op/byte accounting and numerical
    verification only.
    """

    out_features: int = 1000
    activation: str = "linear"
    has_bias: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        check_positive(self.out_features, "out_features")
        if self.activation not in ACTIVATIONS:
            raise ValueError(
                f"unknown activation {self.activation!r}; expected one of {ACTIVATIONS}"
            )

    @property
    def in_features(self) -> int:
        """Flattened input feature count."""
        return self.in_h * self.in_w * self.in_c

    @property
    def out_h(self) -> int:
        return 1

    @property
    def out_w(self) -> int:
        return 1

    @property
    def out_c(self) -> int:
        return self.out_features

    @property
    def is_spatial(self) -> bool:
        return False

    @property
    def macs(self) -> int:
        return self.in_features * self.out_features

    @property
    def weight_count(self) -> int:
        w = self.in_features * self.out_features
        if self.has_bias:
            w += self.out_features
        return w


def same_padding(kernel_size: int) -> int:
    """Zero padding that keeps the spatial size unchanged at stride 1."""
    if kernel_size % 2 == 0:
        raise ValueError(f"'same' padding requires an odd kernel, got {kernel_size}")
    return (kernel_size - 1) // 2


__all__ = [
    "ACTIVATIONS",
    "LayerSpec",
    "ConvSpec",
    "PoolSpec",
    "DenseSpec",
    "conv_output_size",
    "same_padding",
]
