"""NumPy reference implementations of the CNN operators.

These operators are the numerical substrate used to *verify* that vertically
split execution produces exactly the same result as whole-model execution
(the property the real DistrEdge system relies on, since it distributes
models without modification and therefore without retraining).

Performance notes (per the HPC guides): convolution uses an im2col +
single-GEMM formulation so the heavy lifting happens inside BLAS, pooling
uses a strided window reduction, and no operator copies its input more than
once.  All tensors are channel-last ``(H, W, C)`` ``float32`` arrays.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _as_f32(x: np.ndarray) -> np.ndarray:
    arr = np.asarray(x)
    if arr.dtype != np.float32:
        arr = arr.astype(np.float32)
    return arr


def apply_activation(x: np.ndarray, activation: str) -> np.ndarray:
    """Apply a named activation function element-wise."""
    if activation == "linear":
        return x
    if activation == "relu":
        return np.maximum(x, 0.0)
    if activation == "leaky_relu":
        return np.where(x >= 0.0, x, 0.1 * x)
    if activation == "sigmoid":
        return 1.0 / (1.0 + np.exp(-x))
    raise ValueError(f"unknown activation {activation!r}")


def pad_hw(
    x: np.ndarray,
    pad_top: int,
    pad_bottom: int,
    pad_left: int,
    pad_right: int,
    value: float = 0.0,
) -> np.ndarray:
    """Zero-pad a ``(H, W, C)`` tensor along the spatial dimensions only."""
    if min(pad_top, pad_bottom, pad_left, pad_right) < 0:
        raise ValueError("padding amounts must be non-negative")
    if pad_top == pad_bottom == pad_left == pad_right == 0:
        return x
    return np.pad(
        x,
        ((pad_top, pad_bottom), (pad_left, pad_right), (0, 0)),
        mode="constant",
        constant_values=value,
    )


def im2col(x: np.ndarray, kernel: int, stride: int) -> Tuple[np.ndarray, int, int]:
    """Extract sliding ``kernel x kernel`` patches from a padded tensor.

    Parameters
    ----------
    x:
        Input tensor of shape ``(H, W, C)`` — already padded by the caller.
    kernel, stride:
        Square window size and stride.

    Returns
    -------
    (patches, out_h, out_w):
        ``patches`` has shape ``(out_h * out_w, kernel * kernel * C)`` and is
        laid out so that a single matrix multiplication with a reshaped
        weight tensor implements the convolution.
    """
    x = _as_f32(x)
    h, w, c = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"window {kernel}x{kernel} stride {stride} does not fit input {h}x{w}"
        )
    # Stride-tricks view: (out_h, out_w, kernel, kernel, C), no copy.
    s0, s1, s2 = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(out_h, out_w, kernel, kernel, c),
        strides=(s0 * stride, s1 * stride, s0, s1, s2),
        writeable=False,
    )
    patches = windows.reshape(out_h * out_w, kernel * kernel * c)
    return np.ascontiguousarray(patches), out_h, out_w


def conv2d(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    pad_top: int,
    pad_bottom: int,
    pad_left: int,
    pad_right: int,
    activation: str = "linear",
) -> np.ndarray:
    """2-D convolution on a channel-last tensor.

    Parameters
    ----------
    x:
        Input of shape ``(H, W, C_in)``.
    weights:
        Filter bank of shape ``(kernel, kernel, C_in, C_out)``.
    bias:
        Optional per-output-channel bias of shape ``(C_out,)``.
    stride:
        Spatial stride (same in both dimensions).
    pad_top, pad_bottom, pad_left, pad_right:
        Explicit asymmetric padding.  Split-part execution pads only at true
        tensor edges, which is why the four sides are independent.
    activation:
        Name of the fused activation.
    """
    x = _as_f32(x)
    weights = _as_f32(weights)
    kernel = weights.shape[0]
    if weights.shape[1] != kernel:
        raise ValueError(f"only square kernels are supported, got {weights.shape[:2]}")
    if weights.shape[2] != x.shape[2]:
        raise ValueError(
            f"weight input channels {weights.shape[2]} do not match tensor channels {x.shape[2]}"
        )
    padded = pad_hw(x, pad_top, pad_bottom, pad_left, pad_right)
    patches, out_h, out_w = im2col(padded, kernel, stride)
    w_mat = weights.reshape(kernel * kernel * x.shape[2], weights.shape[3])
    out = patches @ w_mat
    if bias is not None:
        out = out + _as_f32(bias)[None, :]
    out = out.reshape(out_h, out_w, weights.shape[3])
    return apply_activation(out, activation)


def pool2d(
    x: np.ndarray,
    kernel: int,
    stride: int,
    pad_top: int,
    pad_bottom: int,
    pad_left: int,
    pad_right: int,
    mode: str = "max",
) -> np.ndarray:
    """Max or average pooling on a channel-last tensor."""
    x = _as_f32(x)
    if mode not in ("max", "avg"):
        raise ValueError(f"mode must be 'max' or 'avg', got {mode!r}")
    pad_value = -np.inf if mode == "max" else 0.0
    padded = pad_hw(x, pad_top, pad_bottom, pad_left, pad_right, value=pad_value)
    h, w, c = padded.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"window {kernel}x{kernel} stride {stride} does not fit input {h}x{w}"
        )
    s0, s1, s2 = padded.strides
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=(out_h, out_w, kernel, kernel, c),
        strides=(s0 * stride, s1 * stride, s0, s1, s2),
        writeable=False,
    )
    if mode == "max":
        return windows.max(axis=(2, 3))
    return windows.mean(axis=(2, 3))


def dense(
    x: np.ndarray,
    weights: np.ndarray,
    bias: np.ndarray | None,
    activation: str = "linear",
) -> np.ndarray:
    """Fully-connected layer on a flattened input.

    ``x`` may be of any shape; it is flattened to a vector of length
    ``weights.shape[0]``.
    """
    x = _as_f32(x).reshape(-1)
    weights = _as_f32(weights)
    if x.shape[0] != weights.shape[0]:
        raise ValueError(
            f"flattened input has {x.shape[0]} features, weights expect {weights.shape[0]}"
        )
    out = x @ weights
    if bias is not None:
        out = out + _as_f32(bias)
    return apply_activation(out, activation)


__all__ = ["apply_activation", "pad_hw", "im2col", "conv2d", "pool2d", "dense"]
