"""Vertical-Splitting Law and split-part construction.

Section III-B of the paper defines the *Vertical-Splitting Law* (VSL): for a
split-part of a layer-volume, once the output height of its last sub-layer is
fixed, the required heights of every earlier sub-layer — and in particular
the input height of the first sub-layer — follow from

    h^{i}_out = (h^{i+1}_out - 1) * S_{i+1} + F_{i+1}          (Eq. 1)
    h^{1}_in  = (h^{1}_out  - 1) * S_1     + F_1               (Eq. 2)

Two flavours of this arithmetic live here:

* :func:`vsl_input_height` / :func:`propagate_output_height` implement the
  paper's formulas verbatim (no padding, no clipping).  The cost models and
  the MDP state use these.
* :func:`required_input_rows` / :func:`required_input_rows_chain` compute the
  *exact* half-open row ranges a split-part needs, accounting for padding and
  tensor edges.  The numerical split executor and the transmission-volume
  accounting use these, which is what makes split execution bit-exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.nn.graph import LayerVolume
from repro.nn.layers import LayerSpec
from repro.utils.units import FP16_BYTES


# --------------------------------------------------------------------------- #
# Paper formulas (Eq. 1 / Eq. 2)
# --------------------------------------------------------------------------- #
def vsl_layer_input_height(layer: LayerSpec, h_out: int) -> int:
    """Input height implied by Eq. 1/2 for a single layer (no padding/clipping)."""
    if h_out <= 0:
        return 0
    return (h_out - 1) * layer.stride + layer.kernel


def propagate_output_height(layers: Sequence[LayerSpec], h_out_last: int) -> List[int]:
    """Output heights of every sub-layer given the last sub-layer's output height.

    Returns a list ``[h^1_out, h^2_out, ..., h^n_out]`` where ``h^n_out`` is
    ``h_out_last`` and earlier entries follow Eq. 1 (the output height of
    sub-layer *i* equals the input height of sub-layer *i+1*).
    """
    if not layers:
        raise ValueError("layers must not be empty")
    heights = [0] * len(layers)
    heights[-1] = int(h_out_last)
    for i in range(len(layers) - 2, -1, -1):
        heights[i] = vsl_layer_input_height(layers[i + 1], heights[i + 1])
    return heights


def vsl_input_height(layers: Sequence[LayerSpec], h_out_last: int) -> int:
    """Input height of the first sub-layer per the Vertical-Splitting Law."""
    if h_out_last <= 0:
        return 0
    heights = propagate_output_height(layers, h_out_last)
    return vsl_layer_input_height(layers[0], heights[0])


# --------------------------------------------------------------------------- #
# Exact row-range arithmetic (padding & clipping aware)
# --------------------------------------------------------------------------- #
def required_input_rows(layer: LayerSpec, out_start: int, out_end: int) -> Tuple[int, int]:
    """Exact input row range needed to compute output rows ``[out_start, out_end)``.

    The returned range is clipped to the real tensor extent ``[0, in_h)``;
    rows that fall outside it are provided by zero padding at the true tensor
    edge and therefore never need to be transmitted.
    """
    if out_start < 0 or out_end > layer.out_h or out_start > out_end:
        raise ValueError(
            f"output rows [{out_start}, {out_end}) invalid for layer {layer.name!r} "
            f"with out_h={layer.out_h}"
        )
    if out_start == out_end:
        return (0, 0)
    lo = out_start * layer.stride - layer.padding
    hi = (out_end - 1) * layer.stride - layer.padding + layer.kernel
    return (max(lo, 0), min(hi, layer.in_h))


def required_input_rows_chain(
    layers: Sequence[LayerSpec], out_start: int, out_end: int
) -> Tuple[int, int]:
    """Input row range of the *first* layer needed for output rows of the *last*.

    Composes :func:`required_input_rows` backwards through the chain.
    """
    if not layers:
        raise ValueError("layers must not be empty")
    start, end = out_start, out_end
    for layer in reversed(layers):
        start, end = required_input_rows(layer, start, end)
        if start == end:
            return (0, 0)
    return (start, end)


def per_layer_row_ranges(
    layers: Sequence[LayerSpec], out_start: int, out_end: int
) -> List[Tuple[int, int]]:
    """Output row ranges of every sub-layer needed for the final output rows.

    Entry ``i`` is the half-open range of rows of sub-layer ``i``'s *output*
    that a split-part must compute so that the last sub-layer can produce
    rows ``[out_start, out_end)``.
    """
    if not layers:
        raise ValueError("layers must not be empty")
    ranges: List[Tuple[int, int]] = [(0, 0)] * len(layers)
    ranges[-1] = (out_start, out_end)
    start, end = out_start, out_end
    for i in range(len(layers) - 1, 0, -1):
        start, end = required_input_rows(layers[i], start, end)
        ranges[i - 1] = (start, end)
    return ranges


# --------------------------------------------------------------------------- #
# Split decisions and split parts
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SplitDecision:
    """Cut points on the last layer's output height for one layer-volume.

    ``cuts`` holds the paper's action ``(x_1, ..., x_{|D|-1})``: non-negative,
    non-decreasing integers in ``[0, H_l]``.  Device ``i`` (0-based) is
    assigned output rows ``[x_i, x_{i+1})`` with the convention ``x_0 = 0``
    and ``x_{|D|} = H_l``.
    """

    cuts: Tuple[int, ...]
    output_height: int

    def __post_init__(self) -> None:
        if self.output_height <= 0:
            raise ValueError(f"output_height must be positive, got {self.output_height}")
        prev = 0
        for x in self.cuts:
            if x < 0 or x > self.output_height:
                raise ValueError(
                    f"cut {x} outside [0, {self.output_height}] in {self.cuts}"
                )
            if x < prev:
                raise ValueError(f"cuts must be non-decreasing, got {self.cuts}")
            prev = x

    @property
    def num_devices(self) -> int:
        return len(self.cuts) + 1

    def row_ranges(self) -> List[Tuple[int, int]]:
        """Half-open output row range assigned to each device."""
        edges = [0, *self.cuts, self.output_height]
        return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]

    def rows_per_device(self) -> List[int]:
        """Number of output rows assigned to each device."""
        return [end - start for start, end in self.row_ranges()]

    # -- constructors ----------------------------------------------------- #
    @classmethod
    def from_fractions(
        cls, fractions: Sequence[float], output_height: int
    ) -> "SplitDecision":
        """Build a decision assigning each device a fraction of the rows.

        Fractions are normalised; rounding keeps the total exactly equal to
        ``output_height`` (largest-remainder assignment so a device with a
        non-zero fraction is never silently starved by rounding).
        """
        frac = np.asarray(fractions, dtype=float)
        if frac.ndim != 1 or frac.size == 0:
            raise ValueError("fractions must be a non-empty 1-D sequence")
        if np.any(frac < 0):
            raise ValueError("fractions must be non-negative")
        total = frac.sum()
        if total <= 0:
            # Degenerate request: give everything to the first device.
            rows = np.zeros(frac.size, dtype=int)
            rows[0] = output_height
        else:
            share = frac / total * output_height
            rows = np.floor(share).astype(int)
            remainder = output_height - int(rows.sum())
            if remainder > 0:
                order = np.argsort(-(share - rows))
                for idx in order[:remainder]:
                    rows[idx] += 1
        cuts = np.cumsum(rows)[:-1]
        return cls(cuts=tuple(int(c) for c in cuts), output_height=int(output_height))

    @classmethod
    def equal(cls, num_devices: int, output_height: int) -> "SplitDecision":
        """Equal split across ``num_devices`` (DeepThings / DeeperThings)."""
        return cls.from_fractions([1.0] * num_devices, output_height)

    @classmethod
    def single_device(
        cls, device_index: int, num_devices: int, output_height: int
    ) -> "SplitDecision":
        """Assign all rows to one device (Offload baseline)."""
        fractions = [0.0] * num_devices
        fractions[device_index] = 1.0
        return cls.from_fractions(fractions, output_height)


@dataclass(frozen=True)
class SplitPart:
    """One device's share of a layer-volume.

    Attributes
    ----------
    device_index:
        Position of the assigned service provider in the provider list.
    out_rows:
        Half-open row range of the volume's final output this part produces.
    in_rows:
        Exact half-open row range of the volume's *input* tensor this part
        needs (clipped to the tensor extent; padding rows excluded).
    layer_out_rows:
        Per-sub-layer output row ranges (exact arithmetic).
    macs:
        Multiply-accumulates this part performs, including the recomputation
        overlap inherent to fused vertical splitting.
    """

    device_index: int
    volume_start: int
    volume_end: int
    out_rows: Tuple[int, int]
    in_rows: Tuple[int, int]
    layer_out_rows: Tuple[Tuple[int, int], ...]
    macs: int
    input_bytes: int
    output_bytes: int

    @property
    def is_empty(self) -> bool:
        """True when the device was assigned no rows of this volume."""
        return self.out_rows[0] >= self.out_rows[1]

    @property
    def num_output_rows(self) -> int:
        return max(0, self.out_rows[1] - self.out_rows[0])

    @property
    def num_input_rows(self) -> int:
        return max(0, self.in_rows[1] - self.in_rows[0])


def split_volume(volume: LayerVolume, decision: SplitDecision) -> List[SplitPart]:
    """Split a layer-volume into per-device :class:`SplitPart` objects.

    The decision's ``output_height`` must match the volume's output height.
    Devices assigned zero rows receive an empty part (``is_empty`` True),
    which the runtime interprets as "this provider does not participate in
    this volume" — the paper notes this can legitimately happen (e.g. the
    Raspberry Pi 3 in Group-DC receives no work).
    """
    if decision.output_height != volume.output_height:
        raise ValueError(
            f"decision output height {decision.output_height} does not match volume "
            f"output height {volume.output_height}"
        )
    layers = list(volume.layers)
    in_w = volume.first.in_w
    in_c = volume.first.in_c
    out_w = volume.last.out_w
    out_c = volume.last.out_c

    parts: List[SplitPart] = []
    for device_index, (start, end) in enumerate(decision.row_ranges()):
        if start >= end:
            parts.append(
                SplitPart(
                    device_index=device_index,
                    volume_start=volume.start,
                    volume_end=volume.end,
                    out_rows=(start, start),
                    in_rows=(0, 0),
                    layer_out_rows=tuple((0, 0) for _ in layers),
                    macs=0,
                    input_bytes=0,
                    output_bytes=0,
                )
            )
            continue
        ranges = per_layer_row_ranges(layers, start, end)
        in_start, in_end = required_input_rows(layers[0], *ranges[0])
        macs = 0
        for layer, (r0, r1) in zip(layers, ranges):
            macs += layer.macs_for_rows(r1 - r0)
        input_bytes = (in_end - in_start) * in_w * in_c * FP16_BYTES
        output_bytes = (end - start) * out_w * out_c * FP16_BYTES
        parts.append(
            SplitPart(
                device_index=device_index,
                volume_start=volume.start,
                volume_end=volume.end,
                out_rows=(start, end),
                in_rows=(in_start, in_end),
                layer_out_rows=tuple(ranges),
                macs=int(macs),
                input_bytes=int(input_bytes),
                output_bytes=int(output_bytes),
            )
        )
    return parts


def total_overlap_rows(parts: Sequence[SplitPart]) -> int:
    """Total number of duplicated input rows across parts (recomputation halo).

    Useful for analysing the recomputation overhead that deeper layer-volumes
    incur — the trade-off LC-PSS's ``alpha`` controls.
    """
    total = sum(p.num_input_rows for p in parts if not p.is_empty)
    if not parts:
        return 0
    covered_lo = min((p.in_rows[0] for p in parts if not p.is_empty), default=0)
    covered_hi = max((p.in_rows[1] for p in parts if not p.is_empty), default=0)
    return max(0, total - (covered_hi - covered_lo))


__all__ = [
    "vsl_layer_input_height",
    "propagate_output_height",
    "vsl_input_height",
    "required_input_rows",
    "required_input_rows_chain",
    "per_layer_row_ranges",
    "SplitDecision",
    "SplitPart",
    "split_volume",
    "total_overlap_rows",
]
