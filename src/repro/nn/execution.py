"""Numerical execution of whole models and of vertically split layer-volumes.

DistrEdge distributes *unmodified* CNN models, so its accuracy is exactly the
single-device accuracy; the property that makes this true is that splitting a
layer-volume by output height and concatenating the per-device results
reproduces the original output bit-for-bit.  :class:`SplitExecutor` provides
that check, and the test-suite uses it as the core correctness invariant of
the whole reproduction.

Weights are synthesised deterministically from a seed (the distribution
algorithms never look at weight values, only at shapes), so executing the
same model twice — whole or split — always produces identical tensors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.graph import LayerVolume, ModelSpec
from repro.nn.layers import ConvSpec, DenseSpec, LayerSpec, PoolSpec
from repro.nn.splitting import SplitDecision, SplitPart, split_volume
from repro.nn.tensor_ops import conv2d, dense, pool2d
from repro.utils.rng import as_rng


class ModelExecutor:
    """Executes a :class:`~repro.nn.graph.ModelSpec` with synthetic weights.

    Parameters
    ----------
    model:
        The model specification.
    seed:
        Seed for weight synthesis.  The same ``(model, seed)`` pair always
        yields the same weights, which keeps split-vs-whole comparisons and
        regression tests deterministic.
    weight_scale:
        Standard deviation of the synthetic Gaussian weights.  Kept small so
        deep models do not overflow float32 during verification runs.
    """

    def __init__(self, model: ModelSpec, seed: int = 0, weight_scale: float = 0.05) -> None:
        self.model = model
        self.seed = seed
        self.weight_scale = float(weight_scale)
        self._weights: Dict[str, Tuple[np.ndarray, Optional[np.ndarray]]] = {}
        self._materialize()

    # ------------------------------------------------------------------ #
    def _materialize(self) -> None:
        rng = as_rng(self.seed)
        for layer in self.model.layers:
            if isinstance(layer, ConvSpec):
                w = rng.normal(
                    0.0,
                    self.weight_scale,
                    size=(
                        layer.kernel_size,
                        layer.kernel_size,
                        layer.in_c // layer.groups,
                        layer.out_c,
                    ),
                ).astype(np.float32)
                b = (
                    rng.normal(0.0, self.weight_scale, size=(layer.out_c,)).astype(np.float32)
                    if layer.has_bias
                    else None
                )
                self._weights[layer.name] = (w, b)
            elif isinstance(layer, DenseSpec):
                w = rng.normal(
                    0.0, self.weight_scale, size=(layer.in_features, layer.out_features)
                ).astype(np.float32)
                b = (
                    rng.normal(0.0, self.weight_scale, size=(layer.out_features,)).astype(
                        np.float32
                    )
                    if layer.has_bias
                    else None
                )
                self._weights[layer.name] = (w, b)
            # Pooling layers have no weights.

    def weights_for(self, layer: LayerSpec) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Return ``(weights, bias)`` for a parameterised layer."""
        if layer.name not in self._weights:
            raise KeyError(f"layer {layer.name!r} has no weights")
        return self._weights[layer.name]

    # ------------------------------------------------------------------ #
    def random_input(self, seed: Optional[int] = None) -> np.ndarray:
        """Draw a deterministic random input tensor of the model's input shape."""
        rng = as_rng(self.seed + 104729 if seed is None else seed)
        return rng.normal(0.0, 1.0, size=self.model.input_shape).astype(np.float32)

    def _forward_conv(
        self,
        layer: ConvSpec,
        x: np.ndarray,
        pad_top: int,
        pad_bottom: int,
        pad_left: int,
        pad_right: int,
    ) -> np.ndarray:
        w, b = self.weights_for(layer)
        if layer.groups == 1:
            return conv2d(
                x, w, b, layer.stride_size, pad_top, pad_bottom, pad_left, pad_right, layer.activation
            )
        # Grouped convolution: run each channel group independently and
        # concatenate along the output-channel axis.
        in_per_group = layer.in_c // layer.groups
        out_per_group = layer.out_c // layer.groups
        outputs: List[np.ndarray] = []
        for g in range(layer.groups):
            xg = x[:, :, g * in_per_group : (g + 1) * in_per_group]
            wg = w[:, :, :, g * out_per_group : (g + 1) * out_per_group]
            bg = b[g * out_per_group : (g + 1) * out_per_group] if b is not None else None
            outputs.append(
                conv2d(
                    xg,
                    wg,
                    bg,
                    layer.stride_size,
                    pad_top,
                    pad_bottom,
                    pad_left,
                    pad_right,
                    layer.activation,
                )
            )
        return np.concatenate(outputs, axis=2)

    def forward_layer(self, layer: LayerSpec, x: np.ndarray) -> np.ndarray:
        """Run a single layer on a full (unsplit) input tensor."""
        if isinstance(layer, ConvSpec):
            p = layer.padding_size
            return self._forward_conv(layer, x, p, p, p, p)
        if isinstance(layer, PoolSpec):
            p = layer.padding_size
            return pool2d(x, layer.kernel_size, layer.stride_size, p, p, p, p, layer.mode)
        if isinstance(layer, DenseSpec):
            w, b = self.weights_for(layer)
            return dense(x, w, b, layer.activation)
        raise TypeError(f"unsupported layer type {type(layer).__name__}")

    def run(self, x: np.ndarray, upto: Optional[int] = None) -> np.ndarray:
        """Run the model (optionally only the first ``upto`` layers) on ``x``."""
        layers = self.model.layers if upto is None else self.model.layers[:upto]
        out = np.asarray(x, dtype=np.float32)
        for layer in layers:
            out = self.forward_layer(layer, out)
        return out

    def run_volume(self, volume: LayerVolume, x: np.ndarray) -> np.ndarray:
        """Run every layer of a layer-volume on a full-width/height input."""
        out = np.asarray(x, dtype=np.float32)
        for layer in volume.layers:
            out = self.forward_layer(layer, out)
        return out


class SplitExecutor:
    """Executes vertically split layer-volumes and merges the results.

    The executor takes the same :class:`ModelExecutor` used for whole-model
    runs so both paths share identical weights.
    """

    def __init__(self, executor: ModelExecutor) -> None:
        self.executor = executor

    # ------------------------------------------------------------------ #
    def run_part(self, volume: LayerVolume, part: SplitPart, volume_input: np.ndarray) -> np.ndarray:
        """Run one split-part given the *full* input tensor of the volume.

        ``volume_input`` is the complete ``(H, W, C)`` tensor entering the
        volume; the part slices out the rows it needs (``part.in_rows``),
        which mirrors the real system where only those rows are transmitted
        to the provider.
        """
        if part.is_empty:
            last = volume.last
            return np.zeros((0, last.out_w, last.out_c), dtype=np.float32)
        x = np.asarray(volume_input, dtype=np.float32)
        if x.shape != volume.first.input_shape:
            raise ValueError(
                f"volume input shape {x.shape} does not match expected {volume.first.input_shape}"
            )
        current = x[part.in_rows[0] : part.in_rows[1], :, :]
        for layer, (a, b) in zip(volume.layers, part.layer_out_rows):
            if b <= a:
                raise ValueError(
                    f"degenerate row range {(a, b)} for layer {layer.name!r} in non-empty part"
                )
            stride = layer.stride
            kernel = layer.kernel
            padding = layer.padding
            # Top/bottom padding is only real at the true tensor edges; the
            # interior cut boundaries receive actual neighbouring rows, which
            # the row-range arithmetic already included in ``current``.
            pad_top = max(0, padding - a * stride)
            unclipped_hi = (b - 1) * stride + kernel - padding
            pad_bottom = max(0, unclipped_hi - layer.in_h)
            if isinstance(layer, ConvSpec):
                current = self.executor._forward_conv(
                    layer, current, pad_top, pad_bottom, padding, padding
                )
            elif isinstance(layer, PoolSpec):
                current = pool2d(
                    current,
                    layer.kernel_size,
                    layer.stride_size,
                    pad_top,
                    pad_bottom,
                    padding,
                    padding,
                    layer.mode,
                )
            else:  # pragma: no cover - guarded by LayerVolume validation
                raise TypeError(f"non-spatial layer {layer.name!r} inside a volume")
            expected_rows = b - a
            if current.shape[0] != expected_rows:
                raise AssertionError(
                    f"layer {layer.name!r} produced {current.shape[0]} rows, expected {expected_rows}"
                )
        return current

    def run_split(
        self,
        volume: LayerVolume,
        decision: SplitDecision,
        volume_input: np.ndarray,
    ) -> Tuple[np.ndarray, List[SplitPart]]:
        """Split a volume, run every part, and merge the outputs by height.

        Returns the merged output tensor (identical to whole-volume execution)
        and the list of parts for inspection.
        """
        parts = split_volume(volume, decision)
        outputs = []
        for part in parts:
            out = self.run_part(volume, part, volume_input)
            if not part.is_empty:
                outputs.append((part.out_rows[0], out))
        outputs.sort(key=lambda item: item[0])
        merged = np.concatenate([o for _, o in outputs], axis=0)
        expected_shape = volume.last.output_shape
        if merged.shape != expected_shape:
            raise AssertionError(
                f"merged split output shape {merged.shape} != expected {expected_shape}"
            )
        return merged, parts

    def run_plan_volumes(
        self,
        volumes: Sequence[LayerVolume],
        decisions: Sequence[SplitDecision],
        model_input: np.ndarray,
    ) -> np.ndarray:
        """Run a whole partitioned backbone with per-volume split decisions.

        Each volume is split, executed part-by-part, merged, and the merged
        tensor feeds the next volume — exactly the data flow of the
        distributed system (merge happens implicitly through the
        redistribution step between volumes).
        """
        if len(volumes) != len(decisions):
            raise ValueError(
                f"got {len(volumes)} volumes but {len(decisions)} split decisions"
            )
        current = np.asarray(model_input, dtype=np.float32)
        for volume, decision in zip(volumes, decisions):
            current, _ = self.run_split(volume, decision, current)
        return current


__all__ = ["ModelExecutor", "SplitExecutor"]
