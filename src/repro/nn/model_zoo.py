"""Model zoo: the eight CNN architectures evaluated in the paper.

The distribution algorithms consume *layer configurations* only (heights,
widths, channels, kernels, strides), so each zoo entry reproduces the layer
configuration sequence of the corresponding architecture.  Branching
architectures (ResNet bottlenecks, Inception modules, SSD heads, OpenPose
stages, VoxelNet's RPN) are represented by their sequential main path with
channel counts chosen to preserve the per-stage output shapes and the
approximate operation counts — the paper itself treats models as sequential
chains of conv/pool layers when partitioning ("for most CNN models, the
layers are connected sequentially", Section III-C).

Every deviation from the original architecture is noted in the builder's
docstring.  Two small synthetic models (:func:`tiny_cnn`,
:func:`small_vgg`) are provided for fast numerical verification in tests.

Use :func:`get` to build a model by name and :func:`list_models` to enumerate
the registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.nn.graph import ModelBuilder, ModelSpec

#: All model names evaluated in the paper's Figs. 10-11 plus VGG-16.
PAPER_MODELS: Tuple[str, ...] = (
    "vgg16",
    "resnet50",
    "inception_v3",
    "yolov2",
    "ssd_vgg16",
    "ssd_resnet50",
    "openpose",
    "voxelnet",
)


# --------------------------------------------------------------------------- #
# Test-scale models
# --------------------------------------------------------------------------- #
def tiny_cnn(input_size: int = 32) -> ModelSpec:
    """A four-layer CNN used by unit tests for exact numerical verification."""
    return (
        ModelBuilder("tiny_cnn", input_shape=(input_size, input_size, 3))
        .conv(8, kernel=3, padding="same")
        .pool()
        .conv(16, kernel=3, padding="same")
        .pool()
        .dense(10)
        .build()
    )


def small_vgg(input_size: int = 64) -> ModelSpec:
    """A reduced VGG-style network: same layer pattern as VGG-16 at 1/8 width.

    Small enough for end-to-end numerical split verification and DRL smoke
    tests, while preserving the alternating conv/pool structure that makes
    partition-scheme search non-trivial.
    """
    b = ModelBuilder("small_vgg", input_shape=(input_size, input_size, 3))
    b.conv(8).conv(8).pool()
    b.conv(16).conv(16).pool()
    b.conv(32).conv(32).pool()
    b.conv(32).conv(32).pool()
    b.dense(64, activation="relu").dense(10)
    return b.build()


# --------------------------------------------------------------------------- #
# Paper models
# --------------------------------------------------------------------------- #
def vgg16(input_size: int = 224) -> ModelSpec:
    """VGG-16 (Simonyan & Zisserman): 13 conv layers, 5 max-pools, 3 FC layers."""
    b = ModelBuilder("vgg16", input_shape=(input_size, input_size, 3))
    b.conv(64, name="conv1_1").conv(64, name="conv1_2").pool(name="pool1")
    b.conv(128, name="conv2_1").conv(128, name="conv2_2").pool(name="pool2")
    b.conv(256, name="conv3_1").conv(256, name="conv3_2").conv(256, name="conv3_3").pool(name="pool3")
    b.conv(512, name="conv4_1").conv(512, name="conv4_2").conv(512, name="conv4_3").pool(name="pool4")
    b.conv(512, name="conv5_1").conv(512, name="conv5_2").conv(512, name="conv5_3").pool(name="pool5")
    b.dense(4096, activation="relu", name="fc6")
    b.dense(4096, activation="relu", name="fc7")
    b.dense(1000, name="fc8")
    return b.build()


def resnet50(input_size: int = 224) -> ModelSpec:
    """ResNet-50 main path, sequentialised.

    Deviations from the original: residual additions and the 1x1 projection
    shortcuts are omitted (they contribute <2% of the MACs and no additional
    activation traffic along the main path); down-sampling is performed by
    the 3x3 convolution of the first bottleneck of each stage, as in the
    ResNet-v1.5 variant commonly deployed with TensorRT.
    """
    b = ModelBuilder("resnet50", input_shape=(input_size, input_size, 3))
    b.conv(64, kernel=7, stride=2, padding=3, name="conv1")
    b.pool(kernel=3, stride=2, padding=1, name="pool1")

    stages = [
        # (num_blocks, mid_channels, out_channels)
        (3, 64, 256),
        (4, 128, 512),
        (6, 256, 1024),
        (3, 512, 2048),
    ]
    for stage_idx, (blocks, mid, out) in enumerate(stages, start=2):
        for block in range(blocks):
            stride = 2 if (block == 0 and stage_idx > 2) else 1
            prefix = f"res{stage_idx}_{block + 1}"
            b.conv(mid, kernel=1, padding=0, name=f"{prefix}_a")
            b.conv(mid, kernel=3, stride=stride, padding=1, name=f"{prefix}_b")
            b.conv(out, kernel=1, padding=0, name=f"{prefix}_c")
    b.pool(kernel=7, stride=7, mode="avg", name="avgpool")
    b.dense(1000, name="fc")
    return b.build()


def inception_v3(input_size: int = 299) -> ModelSpec:
    """InceptionV3, sequentialised.

    Deviations: each Inception module (A/B/C/reduction) is replaced by a pair
    of convolutions whose output shape equals the module's concatenated
    output and whose MAC count approximates the sum of the module's parallel
    branches.  Auxiliary classifiers are omitted.
    """
    b = ModelBuilder("inception_v3", input_shape=(input_size, input_size, 3))
    # Stem
    b.conv(32, kernel=3, stride=2, padding=0, name="stem1")
    b.conv(32, kernel=3, padding=0, name="stem2")
    b.conv(64, kernel=3, padding=1, name="stem3")
    b.pool(kernel=3, stride=2, name="stem_pool1")
    b.conv(80, kernel=1, padding=0, name="stem4")
    b.conv(192, kernel=3, padding=0, name="stem5")
    b.pool(kernel=3, stride=2, name="stem_pool2")
    # 3 x Inception-A (35x35, 288 channels out)
    for i in range(3):
        b.conv(192, kernel=1, padding=0, name=f"incA{i + 1}_reduce")
        b.conv(288 if i == 2 else 256, kernel=3, padding=1, name=f"incA{i + 1}_conv")
    # Reduction-A to 17x17
    b.conv(384, kernel=3, stride=2, padding=0, name="redA")
    # 4 x Inception-B (17x17, 768 channels)
    for i in range(4):
        b.conv(256, kernel=1, padding=0, name=f"incB{i + 1}_reduce")
        b.conv(768, kernel=3, padding=1, name=f"incB{i + 1}_conv")
    # Reduction-B to 8x8
    b.conv(1280, kernel=3, stride=2, padding=0, name="redB")
    # 2 x Inception-C (8x8, 2048 channels)
    for i in range(2):
        b.conv(448, kernel=1, padding=0, name=f"incC{i + 1}_reduce")
        b.conv(2048, kernel=3, padding=1, name=f"incC{i + 1}_conv")
    b.pool(kernel=8, stride=8, mode="avg", name="avgpool")
    b.dense(1000, name="fc")
    return b.build()


def yolov2(input_size: int = 416) -> ModelSpec:
    """YOLOv2 (Darknet-19 backbone + detection head), no FC layers.

    Deviations: the passthrough (reorg) connection from the 26x26 feature map
    is omitted; its contribution is re-added as extra channels on the first
    head convolution so the head MAC count is preserved.
    """
    b = ModelBuilder("yolov2", input_shape=(input_size, input_size, 3))
    b.conv(32, name="conv1").pool(name="pool1")
    b.conv(64, name="conv2").pool(name="pool2")
    b.conv(128, name="conv3_1").conv(64, kernel=1, padding=0, name="conv3_2").conv(128, name="conv3_3")
    b.pool(name="pool3")
    b.conv(256, name="conv4_1").conv(128, kernel=1, padding=0, name="conv4_2").conv(256, name="conv4_3")
    b.pool(name="pool4")
    b.conv(512, name="conv5_1").conv(256, kernel=1, padding=0, name="conv5_2").conv(512, name="conv5_3")
    b.conv(256, kernel=1, padding=0, name="conv5_4").conv(512, name="conv5_5")
    b.pool(name="pool5")
    b.conv(1024, name="conv6_1").conv(512, kernel=1, padding=0, name="conv6_2").conv(1024, name="conv6_3")
    b.conv(512, kernel=1, padding=0, name="conv6_4").conv(1024, name="conv6_5")
    # Detection head
    b.conv(1024, name="conv7_1").conv(1024, name="conv7_2")
    b.conv(1024, name="conv8")
    b.conv(425, kernel=1, padding=0, activation="linear", name="detect")
    return b.build()


def _vgg16_backbone_300(b: ModelBuilder) -> ModelBuilder:
    """VGG-16 backbone at 300x300 input as used by SSD300 (through conv5_3)."""
    b.conv(64, name="conv1_1").conv(64, name="conv1_2").pool(name="pool1")
    b.conv(128, name="conv2_1").conv(128, name="conv2_2").pool(name="pool2")
    b.conv(256, name="conv3_1").conv(256, name="conv3_2").conv(256, name="conv3_3")
    b.pool(kernel=2, stride=2, padding=1, name="pool3")
    b.conv(512, name="conv4_1").conv(512, name="conv4_2").conv(512, name="conv4_3").pool(name="pool4")
    b.conv(512, name="conv5_1").conv(512, name="conv5_2").conv(512, name="conv5_3")
    b.pool(kernel=3, stride=1, padding=1, name="pool5")
    return b


def ssd_vgg16(input_size: int = 300) -> ModelSpec:
    """SSD300 with a VGG-16 backbone.

    Deviations: the six multi-scale detection heads are folded into one 3x3
    convolution on the last extra feature map with an equivalent MAC count;
    the intermediate multi-scale taps do not change the backbone layer
    configurations that the partitioner sees.
    """
    b = ModelBuilder("ssd_vgg16", input_shape=(input_size, input_size, 3))
    _vgg16_backbone_300(b)
    # fc6/fc7 converted to (dilated) convolutions, as in the SSD paper.
    b.conv(1024, kernel=3, padding=1, name="conv6")
    b.conv(1024, kernel=1, padding=0, name="conv7")
    # Extra feature layers.
    b.conv(256, kernel=1, padding=0, name="conv8_1")
    b.conv(512, kernel=3, stride=2, padding=1, name="conv8_2")
    b.conv(128, kernel=1, padding=0, name="conv9_1")
    b.conv(256, kernel=3, stride=2, padding=1, name="conv9_2")
    b.conv(128, kernel=1, padding=0, name="conv10_1")
    b.conv(256, kernel=3, padding=0, name="conv10_2")
    # Folded detection head.
    b.conv(324, kernel=3, padding=1, activation="linear", name="det_head")
    return b.build()


def ssd_resnet50(input_size: int = 300) -> ModelSpec:
    """SSD with a ResNet-50 backbone (RetinaNet-style feature extractor).

    Deviations: as with :func:`resnet50`, residual additions are omitted; the
    backbone is truncated after stage 4 (as in the standard SSD-ResNet50
    detector), extra feature layers are appended, and the detection heads are
    folded into a single convolution with an equivalent MAC count.
    """
    b = ModelBuilder("ssd_resnet50", input_shape=(input_size, input_size, 3))
    b.conv(64, kernel=7, stride=2, padding=3, name="conv1")
    b.pool(kernel=3, stride=2, padding=1, name="pool1")
    stages = [(3, 64, 256), (4, 128, 512), (6, 256, 1024)]
    for stage_idx, (blocks, mid, out) in enumerate(stages, start=2):
        for block in range(blocks):
            stride = 2 if (block == 0 and stage_idx > 2) else 1
            prefix = f"res{stage_idx}_{block + 1}"
            b.conv(mid, kernel=1, padding=0, name=f"{prefix}_a")
            b.conv(mid, kernel=3, stride=stride, padding=1, name=f"{prefix}_b")
            b.conv(out, kernel=1, padding=0, name=f"{prefix}_c")
    # Extra SSD feature layers.
    b.conv(256, kernel=1, padding=0, name="extra1_1")
    b.conv(512, kernel=3, stride=2, padding=1, name="extra1_2")
    b.conv(128, kernel=1, padding=0, name="extra2_1")
    b.conv(256, kernel=3, stride=2, padding=1, name="extra2_2")
    b.conv(324, kernel=3, padding=1, activation="linear", name="det_head")
    return b.build()


def openpose(input_size: int = 368) -> ModelSpec:
    """OpenPose (body-25) pose-estimation network.

    Deviations: the two-branch (part-affinity-field / confidence-map) refine
    stages are serialised into a single chain with the combined channel
    counts; the original runs them in parallel on the same 46x46 feature map,
    so the sequential chain preserves both output shape and MAC totals.
    """
    b = ModelBuilder("openpose", input_shape=(input_size, input_size, 3))
    # VGG-19 first ten convolutions (feature extractor F).
    b.conv(64, name="conv1_1").conv(64, name="conv1_2").pool(name="pool1")
    b.conv(128, name="conv2_1").conv(128, name="conv2_2").pool(name="pool2")
    b.conv(256, name="conv3_1").conv(256, name="conv3_2").conv(256, name="conv3_3").conv(
        256, name="conv3_4"
    ).pool(name="pool3")
    b.conv(512, name="conv4_1").conv(512, name="conv4_2")
    b.conv(256, name="conv4_3_cpm").conv(128, name="conv4_4_cpm")
    # Stage 1 (both branches folded: 38 PAF + 19 heatmap channels).
    b.conv(128, name="s1_1").conv(128, name="s1_2").conv(128, name="s1_3")
    b.conv(512, kernel=1, padding=0, name="s1_4")
    b.conv(57, kernel=1, padding=0, activation="linear", name="s1_out")
    # Two refinement stages with 7x7 convolutions.
    for stage in (2, 3):
        b.conv(128, kernel=7, padding=3, name=f"s{stage}_1")
        b.conv(128, kernel=7, padding=3, name=f"s{stage}_2")
        b.conv(128, kernel=7, padding=3, name=f"s{stage}_3")
        b.conv(128, kernel=7, padding=3, name=f"s{stage}_4")
        b.conv(128, kernel=7, padding=3, name=f"s{stage}_5")
        b.conv(128, kernel=1, padding=0, name=f"s{stage}_6")
        b.conv(57, kernel=1, padding=0, activation="linear", name=f"s{stage}_out")
    return b.build()


def voxelnet(bev_h: int = 200, bev_w: int = 176) -> ModelSpec:
    """VoxelNet 3-D detector, middle + region-proposal network portion.

    Deviations: the point-wise voxel feature encoder (which runs on sparse
    point data, not on a dense feature map) is replaced by an equivalent-MAC
    1x1 convolution on the dense bird's-eye-view pseudo-image, and the 3-D
    middle convolutions are flattened into 2-D convolutions over the BEV map
    with the depth folded into channels — the standard "pillar"
    simplification.  The RPN's three blocks and upsampling heads are folded
    into their sequential main path.
    """
    b = ModelBuilder("voxelnet", input_shape=(bev_h, bev_w, 128))
    b.conv(128, kernel=1, padding=0, name="vfe_proj")
    # RPN block 1 (stride 2, 4 convs at 128 channels).
    b.conv(128, kernel=3, stride=2, padding=1, name="rpn1_1")
    for i in range(3):
        b.conv(128, kernel=3, padding=1, name=f"rpn1_{i + 2}")
    # RPN block 2 (stride 2, 6 convs at 128 channels).
    b.conv(128, kernel=3, stride=2, padding=1, name="rpn2_1")
    for i in range(5):
        b.conv(128, kernel=3, padding=1, name=f"rpn2_{i + 2}")
    # RPN block 3 (stride 2, 6 convs at 256 channels).
    b.conv(256, kernel=3, stride=2, padding=1, name="rpn3_1")
    for i in range(5):
        b.conv(256, kernel=3, padding=1, name=f"rpn3_{i + 2}")
    # Detection heads (score + regression) folded into one convolution.
    b.conv(16, kernel=1, padding=0, activation="linear", name="det_head")
    return b.build()


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
MODEL_BUILDERS: Dict[str, Callable[[], ModelSpec]] = {
    "tiny_cnn": tiny_cnn,
    "small_vgg": small_vgg,
    "vgg16": vgg16,
    "resnet50": resnet50,
    "inception_v3": inception_v3,
    "yolov2": yolov2,
    "ssd_vgg16": ssd_vgg16,
    "ssd_resnet50": ssd_resnet50,
    "openpose": openpose,
    "voxelnet": voxelnet,
}


def list_models() -> List[str]:
    """Names of every model in the registry."""
    return sorted(MODEL_BUILDERS)


def get(name: str) -> ModelSpec:
    """Build a model by name.

    Raises ``KeyError`` with the list of known names if ``name`` is unknown.
    """
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; known models: {', '.join(list_models())}"
        ) from None
    return builder()


__all__ = [
    "PAPER_MODELS",
    "MODEL_BUILDERS",
    "list_models",
    "get",
    "tiny_cnn",
    "small_vgg",
    "vgg16",
    "resnet50",
    "inception_v3",
    "yolov2",
    "ssd_vgg16",
    "ssd_resnet50",
    "openpose",
    "voxelnet",
]
