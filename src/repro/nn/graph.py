"""Sequential CNN model container.

The paper treats CNN models as sequences of convolutional / pooling layers
followed by (optionally) fully-connected layers, and distributes only the
spatial (conv/pool) prefix; the trailing dense layers are computed on the
provider that holds the largest share of the last layer-volume
(Section V-A).  :class:`ModelSpec` captures that structure, validates that
consecutive layer shapes chain correctly, and provides the op/byte accounting
the partitioner's cost model needs.

A *layer-volume* (paper term, equivalent to "fused layers" in DeepThings /
DeeperThings / AOFL) is a contiguous run of spatial layers; it is represented
by :class:`LayerVolume`.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.nn.layers import (
    ConvSpec,
    DenseSpec,
    LayerSpec,
    PoolSpec,
    same_padding,
)


@dataclass(frozen=True)
class LayerVolume:
    """A contiguous run of spatial layers ``[start, end)`` of a model.

    Attributes
    ----------
    layers:
        The layer specifications in the volume, in execution order.
    start, end:
        Index range (0-based, half-open) into the owning model's layer list.
    """

    layers: Tuple[LayerSpec, ...]
    start: int
    end: int

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a layer-volume must contain at least one layer")
        if self.end - self.start != len(self.layers):
            raise ValueError(
                f"index range [{self.start}, {self.end}) does not match {len(self.layers)} layers"
            )
        for layer in self.layers:
            if not layer.is_spatial:
                raise ValueError(
                    f"layer {layer.name!r} is not spatial; only conv/pool layers can form a layer-volume"
                )

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    @property
    def first(self) -> LayerSpec:
        """First layer of the volume."""
        return self.layers[0]

    @property
    def last(self) -> LayerSpec:
        """Last layer of the volume (the one whose output height is split)."""
        return self.layers[-1]

    @property
    def output_height(self) -> int:
        """Height of the volume's final output tensor (``H_l`` in the paper)."""
        return self.last.out_h

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return self.first.input_shape

    @property
    def output_shape(self) -> Tuple[int, int, int]:
        return self.last.output_shape

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations over the volume."""
        return sum(layer.macs for layer in self.layers)

    @property
    def input_bytes(self) -> int:
        """Bytes of the tensor entering the volume."""
        return self.first.input_bytes

    @property
    def output_bytes(self) -> int:
        """Bytes of the tensor leaving the volume."""
        return self.last.output_bytes

    @property
    def weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"LayerVolume[{self.start}:{self.end}] "
            f"{self.first.name}..{self.last.name} "
            f"in={self.input_shape} out={self.output_shape} macs={self.macs:,}"
        )


class ModelSpec:
    """An ordered, shape-validated sequence of layer specifications.

    Parameters
    ----------
    name:
        Model name (e.g. ``"vgg16"``).
    layers:
        Layer specifications in execution order.  All spatial layers must
        precede all dense layers (the standard CNN backbone + head shape the
        paper distributes).
    input_shape:
        ``(H, W, C)`` of the model input.  Must equal the first layer's
        declared input shape.
    """

    def __init__(
        self,
        name: str,
        layers: Sequence[LayerSpec],
        input_shape: Tuple[int, int, int],
    ) -> None:
        if not layers:
            raise ValueError("a model must contain at least one layer")
        self.name = name
        self.layers: Tuple[LayerSpec, ...] = tuple(layers)
        self.input_shape = tuple(int(v) for v in input_shape)
        self._validate()

    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        first = self.layers[0]
        if first.input_shape != self.input_shape:
            raise ValueError(
                f"model input shape {self.input_shape} does not match first layer "
                f"{first.name!r} input {first.input_shape}"
            )
        seen_dense = False
        names = set()
        prev = None
        for layer in self.layers:
            if layer.name in names:
                raise ValueError(f"duplicate layer name {layer.name!r}")
            names.add(layer.name)
            if prev is not None:
                if layer.is_spatial:
                    if layer.input_shape != prev.output_shape:
                        raise ValueError(
                            f"layer {layer.name!r} input {layer.input_shape} does not match "
                            f"previous layer {prev.name!r} output {prev.output_shape}"
                        )
                else:
                    expected = prev.out_h * prev.out_w * prev.out_c
                    got = layer.in_h * layer.in_w * layer.in_c
                    if expected != got:
                        raise ValueError(
                            f"dense layer {layer.name!r} expects {got} features but previous "
                            f"layer {prev.name!r} produces {expected}"
                        )
            if not layer.is_spatial:
                seen_dense = True
            elif seen_dense:
                raise ValueError(
                    f"spatial layer {layer.name!r} appears after a dense layer; "
                    "models must be backbone (conv/pool) followed by head (dense)"
                )
            prev = layer

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self):
        return iter(self.layers)

    def __getitem__(self, idx: int) -> LayerSpec:
        return self.layers[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ModelSpec(name={self.name!r}, layers={len(self.layers)}, "
            f"input={self.input_shape}, macs={self.total_macs:,})"
        )

    # -- structure ------------------------------------------------------ #
    @property
    def spatial_layers(self) -> Tuple[LayerSpec, ...]:
        """The distributable conv/pool prefix."""
        return tuple(l for l in self.layers if l.is_spatial)

    @property
    def head_layers(self) -> Tuple[LayerSpec, ...]:
        """The trailing dense layers (computed on a single provider)."""
        return tuple(l for l in self.layers if not l.is_spatial)

    @property
    def num_spatial_layers(self) -> int:
        return len(self.spatial_layers)

    # -- accounting ------------------------------------------------------ #
    @property
    def total_macs(self) -> int:
        """Total MACs of one full inference."""
        return sum(layer.macs for layer in self.layers)

    @property
    def backbone_macs(self) -> int:
        """MACs of the distributable spatial prefix."""
        return sum(layer.macs for layer in self.spatial_layers)

    @property
    def head_macs(self) -> int:
        return sum(layer.macs for layer in self.head_layers)

    @property
    def total_weight_bytes(self) -> int:
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def input_bytes(self) -> int:
        h, w, c = self.input_shape
        from repro.utils.units import FP16_BYTES

        return h * w * c * FP16_BYTES

    @property
    def output_bytes(self) -> int:
        return self.layers[-1].output_bytes

    def layer_output_bytes(self) -> List[int]:
        """Per-layer output activation sizes (bytes) over the spatial prefix."""
        return [layer.output_bytes for layer in self.spatial_layers]

    def layer_macs(self) -> List[int]:
        """Per-layer MAC counts over the spatial prefix."""
        return [layer.macs for layer in self.spatial_layers]

    # -- partitioning ----------------------------------------------------- #
    def volume(self, start: int, end: int) -> LayerVolume:
        """Return the layer-volume spanning spatial layers ``[start, end)``."""
        spatial = self.spatial_layers
        if not (0 <= start < end <= len(spatial)):
            raise ValueError(
                f"invalid volume range [{start}, {end}) for {len(spatial)} spatial layers"
            )
        return LayerVolume(layers=spatial[start:end], start=start, end=end)

    def partition(self, boundaries: Sequence[int]) -> List[LayerVolume]:
        """Cut the spatial prefix into layer-volumes at ``boundaries``.

        ``boundaries`` is the *partition scheme* of the paper expressed as a
        sorted list of boundary indices that must start with 0 and end with
        ``num_spatial_layers``; volume ``i`` spans
        ``[boundaries[i], boundaries[i+1])``.
        """
        bounds = list(boundaries)
        n = self.num_spatial_layers
        if len(bounds) < 2:
            raise ValueError("a partition scheme needs at least two boundaries")
        if bounds[0] != 0 or bounds[-1] != n:
            raise ValueError(
                f"partition boundaries must start at 0 and end at {n}, got {bounds}"
            )
        if sorted(bounds) != bounds or len(set(bounds)) != len(bounds):
            raise ValueError(f"partition boundaries must be strictly increasing, got {bounds}")
        return [self.volume(bounds[i], bounds[i + 1]) for i in range(len(bounds) - 1)]

    def single_volume_partition(self) -> List[int]:
        """The trivial partition scheme with one layer-volume (DeepThings style)."""
        return [0, self.num_spatial_layers]

    def layer_by_layer_partition(self) -> List[int]:
        """The finest partition scheme with one layer per volume (CoEdge style)."""
        return list(range(self.num_spatial_layers + 1))


class ModelBuilder:
    """Fluent builder for sequential CNN models.

    Example
    -------
    >>> spec = (ModelBuilder("tiny", input_shape=(32, 32, 3))
    ...         .conv(16, kernel=3, padding="same")
    ...         .pool()
    ...         .conv(32, kernel=3, padding="same")
    ...         .pool()
    ...         .dense(10)
    ...         .build())
    >>> spec.num_spatial_layers
    4
    """

    def __init__(self, name: str, input_shape: Tuple[int, int, int]) -> None:
        self.name = name
        self.input_shape = tuple(int(v) for v in input_shape)
        self._layers: List[LayerSpec] = []
        self._counter = 0

    # ------------------------------------------------------------------ #
    def _current_shape(self) -> Tuple[int, int, int]:
        if not self._layers:
            return self.input_shape
        return self._layers[-1].output_shape

    def _next_name(self, prefix: str, name: Optional[str]) -> str:
        if name is not None:
            return name
        self._counter += 1
        return f"{prefix}{self._counter}"

    @staticmethod
    def _resolve_padding(padding: Union[int, str], kernel: int) -> int:
        if isinstance(padding, str):
            if padding == "same":
                return same_padding(kernel)
            if padding == "valid":
                return 0
            raise ValueError(f"unknown padding mode {padding!r}")
        return int(padding)

    # ------------------------------------------------------------------ #
    def conv(
        self,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: Union[int, str] = "same",
        activation: str = "relu",
        groups: int = 1,
        name: Optional[str] = None,
    ) -> "ModelBuilder":
        """Append a convolution layer."""
        h, w, c = self._current_shape()
        pad = self._resolve_padding(padding, kernel)
        self._layers.append(
            ConvSpec(
                name=self._next_name("conv", name),
                in_h=h,
                in_w=w,
                in_c=c,
                out_channels=out_channels,
                kernel_size=kernel,
                stride_size=stride,
                padding_size=pad,
                activation=activation,
                groups=groups,
            )
        )
        return self

    def pool(
        self,
        kernel: int = 2,
        stride: Optional[int] = None,
        padding: Union[int, str] = 0,
        mode: str = "max",
        name: Optional[str] = None,
    ) -> "ModelBuilder":
        """Append a pooling layer."""
        h, w, c = self._current_shape()
        stride = kernel if stride is None else stride
        pad = self._resolve_padding(padding, kernel)
        self._layers.append(
            PoolSpec(
                name=self._next_name("pool", name),
                in_h=h,
                in_w=w,
                in_c=c,
                kernel_size=kernel,
                stride_size=stride,
                padding_size=pad,
                mode=mode,
            )
        )
        return self

    def dense(
        self,
        out_features: int,
        activation: str = "linear",
        name: Optional[str] = None,
    ) -> "ModelBuilder":
        """Append a fully-connected layer."""
        h, w, c = self._current_shape()
        self._layers.append(
            DenseSpec(
                name=self._next_name("fc", name),
                in_h=h,
                in_w=w,
                in_c=c,
                out_features=out_features,
                activation=activation,
            )
        )
        return self

    def build(self) -> ModelSpec:
        """Finalize and validate the model."""
        return ModelSpec(self.name, self._layers, self.input_shape)


#: (model -> {boundaries tuple -> volumes tuple}) memo behind
#: :func:`cached_partition`.  Keyed weakly so dropping a model drops its
#: cached partitions.
_PARTITION_MEMO: "weakref.WeakKeyDictionary[ModelSpec, Dict[Tuple[int, ...], Tuple[LayerVolume, ...]]]" = (
    weakref.WeakKeyDictionary()
)


def cached_partition(model: ModelSpec, boundaries: Sequence[int]) -> List[LayerVolume]:
    """Memoized :meth:`ModelSpec.partition` keyed on ``(model, boundaries)``.

    Partitioning is pure — the same model and boundaries always produce
    structurally identical (and frozen, hence shareable)
    :class:`LayerVolume` objects — but it is rebuilt for every
    :class:`~repro.runtime.plan.DistributionPlan`, which at 32+ devices is a
    large share of plan-deserialisation cost in sharded workers and of
    per-episode plan construction in OSDS.  This memo shares the volume
    objects and re-runs validation only on the first sighting of a
    boundaries tuple; the returned list is a fresh copy, so callers may
    mutate the *list* freely.
    """
    per_model = _PARTITION_MEMO.get(model)
    if per_model is None:
        per_model = {}
        _PARTITION_MEMO[model] = per_model
    key = tuple(int(b) for b in boundaries)
    volumes = per_model.get(key)
    if volumes is None:
        volumes = tuple(model.partition(key))
        per_model[key] = volumes
    return list(volumes)


__all__ = ["LayerVolume", "ModelSpec", "ModelBuilder", "cached_partition"]
