"""Command-line interface for the DistrEdge reproduction.

Five subcommands cover the common workflows without writing Python:

``plan``
    Run a distribution method (DistrEdge or any baseline) on a named model
    and an ad-hoc cluster specification, print the resulting strategy and its
    predicted IPS, and optionally save the plan to JSON.
``evaluate``
    Load a saved plan and evaluate it — under an overridden bandwidth, or on
    any ``--scenario`` fleet ``plan``/``compare`` resolve — reporting
    latency, IPS and the per-device breakdown.
``compare``
    Run every method on one scenario from the paper's catalogue and print the
    IPS table (a single cell of Figs. 7-9).
``serve``
    Simulate multi-tenant open-loop serving: several methods' plans share one
    fleet under ``traffic:`` arrival processes with per-tenant SLOs, served
    through the epoch-batched event loop of
    :class:`~repro.serving.simulator.ServingSimulator`.
``analyze``
    Attribute every request's critical-path latency to queue / gate /
    per-lane compute / send / recv / stall segments — from an exported
    ``--trace-json`` file or an inline serving run — and rank the fleet's
    bottleneck lanes (see :mod:`repro.obs.analysis`).

Clusters are given either as ad-hoc ``--devices`` specs or as ``--scenario``
references — a catalogue name (``DB``, ``LA``...) or a procedural-generator
spec like ``gen:n=32,seed=7,bw=50-300,types=mixed``.  ``--workers N`` shards
plan-batch evaluation across ``N`` worker processes (see
:class:`~repro.runtime.shard.ShardedPlanEvaluator`).

Examples
--------
::

    python -m repro.cli plan --model vgg16 --devices xavier:300 nano:300 \
        --method distredge --episodes 200 --output plan.json
    python -m repro.cli plan --model vgg16 --scenario gen:n=32,seed=7 \
        --method aofl
    python -m repro.cli evaluate plan.json --bandwidth 50
    python -m repro.cli evaluate plan.json --scenario gen:n=32,seed=7
    python -m repro.cli compare --scenario DB --bandwidth 300 --episodes 150
    python -m repro.cli compare --scenario gen:n=32,seed=7 --workers 4
    python -m repro.cli serve --scenario gen:n=16,seed=7 --duration 30 \
        --tenant coedge --tenant offload --traffic traffic:poisson,rate=2
    python -m repro.cli serve --scenario DB --contention --discipline wfq \
        --weight 3 --weight 1 --max-inflight 4 --report-json serve.json
    python -m repro.cli serve --scenario DB --figure --figure-rates 0.5,1,2,4
    python -m repro.cli serve --scenario gen:n=32,seed=7 --engine array \
        --mode parity --duration 60
    python -m repro.cli serve --scenario gen:n=16,seed=7 --duration 30 \
        --churn churn:crashes=2,seed=7 --retry-max 3 --degrade-min-live 0.5
    python -m repro.cli serve --scenario DB --contention --alerts \
        --alert-fast-s 5 --alert-slow-s 30 --duration 60
    python -m repro.cli analyze --scenario DB --contention --max-inflight 2 \
        --duration 10 --figure
    python -m repro.cli analyze --trace-json serve_trace.json --top 5
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

from repro.baselines import BASELINE_REGISTRY
from repro.core.distredge import DistrEdge, DistrEdgeConfig
from repro.core.osds import OSDSConfig
from repro.experiments.harness import ALL_METHODS, ExperimentHarness, HarnessConfig
from repro.experiments.reporting import format_ips_table
from repro.experiments.scenarios import GENERATOR_PREFIX, Scenario, resolve_scenario
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.serialization import evaluation_to_dict, save_plan


def _parse_device_specs(specs: Sequence[str]) -> List[tuple]:
    """Parse ``type[:bandwidth]`` strings into make_cluster entries."""
    out = []
    for spec in specs:
        if ":" in spec:
            name, bandwidth = spec.split(":", 1)
            out.append((name, float(bandwidth)))
        else:
            out.append((spec, 300.0))
    return out


def _scenario_from_args(name: str, bandwidth: Optional[float]) -> Optional[Scenario]:
    """Resolve a ``--scenario`` argument, applying ``--bandwidth`` if given.

    Shared by ``plan`` and ``compare`` so a scenario name means the *same
    fleet* in both commands (catalogue Table-I groups default to 200 Mbps;
    reshape with ``--bandwidth``).  Prints an error and returns ``None`` on
    failure.
    """
    if name.startswith(GENERATOR_PREFIX) and bandwidth is not None:
        print(
            "note: --bandwidth does not apply to gen: scenarios; "
            "use the spec's bw= key (e.g. gen:n=8,bw=100)",
            file=sys.stderr,
        )
    try:
        scenario = resolve_scenario(name)
    except KeyError as exc:
        # str(KeyError) is the repr of its message; unwrap it.
        print(exc.args[0], file=sys.stderr)
        return None
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return None
    if bandwidth is not None and not name.startswith(GENERATOR_PREFIX):
        scenario = scenario.with_bandwidth(bandwidth)
    return scenario


def _cmd_plan(args: argparse.Namespace) -> int:
    model = model_zoo.get(args.model)
    if args.scenario is not None:
        scenario = _scenario_from_args(args.scenario, args.bandwidth)
        if scenario is None:
            return 2
    else:
        if args.bandwidth is not None:
            print(
                "note: --bandwidth only applies with --scenario; "
                "give per-device rates as type:mbps specs",
                file=sys.stderr,
            )
        scenario = Scenario.adhoc(_parse_device_specs(args.devices))
    devices, network = scenario.build(seed=args.seed)
    if scenario.name != "adhoc":
        print(f"scenario: {scenario.name} ({scenario.num_devices} providers)")
    from repro.obs import NULL_PROFILER, Profiler

    profiler = Profiler() if args.profile else NULL_PROFILER
    if args.method == "distredge":
        planner = DistrEdge(
            DistrEdgeConfig(
                alpha=args.alpha,
                num_random_splits=args.random_splits,
                osds=OSDSConfig(
                    max_episodes=args.episodes,
                    seed=args.seed,
                    episode_batch=args.episode_batch,
                    policy_refresh=args.policy_refresh,
                ),
                seed=args.seed,
            )
        )
        with profiler.section("plan.search"):
            plan = planner.plan(model, devices, network)
    else:
        with profiler.section("plan.search"):
            plan = BASELINE_REGISTRY[args.method]().plan(model, devices, network)
    print(plan.describe())
    if args.workers > 1:
        # Sharding pays off on plan *batches*; a single plan is always
        # evaluated in-process (see `compare --workers` for the batch path).
        print(f"note: --workers {args.workers} has no effect on a single-plan evaluation")
    with profiler.section("plan.evaluate"):
        result = PlanEvaluator(devices, network).evaluate(plan)
    print(f"predicted latency: {result.end_to_end_ms:.1f} ms ({result.ips:.2f} IPS)")
    if profiler.enabled:
        print(profiler.format_table())
    if args.output:
        path = save_plan(plan, args.output)
        print(f"plan written to {path}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.runtime.plan import DistributionPlan
    from repro.runtime.serialization import plan_from_dict

    data = json.loads(Path(args.plan).read_text())
    if args.scenario is not None:
        # Re-evaluate the saved strategy on a fleet resolved exactly as
        # plan/compare resolve it (catalogue name or gen: spec, --bandwidth
        # reshaping catalogue links).  Device types must match the plan.
        scenario = _scenario_from_args(args.scenario, args.bandwidth)
        if scenario is None:
            return 2
        plan = plan_from_dict(data)
        devices, network = scenario.build(seed=args.seed)
        if [d.type_name for d in devices] != [d.type_name for d in plan.devices]:
            print(
                f"scenario {scenario.name!r} fleet "
                f"({[d.type_name for d in devices]}) does not match the plan's "
                f"devices ({[d.type_name for d in plan.devices]})",
                file=sys.stderr,
            )
            return 2
        plan = DistributionPlan(
            plan.model,
            devices,
            plan.boundaries,
            plan.decisions,
            head_device=plan.head_device,
            method=plan.method,
        )
        print(f"scenario: {scenario.name} ({scenario.num_devices} providers)")
    else:
        if args.bandwidth is not None:
            for entry in data["devices"]:
                entry["bandwidth_mbps"] = float(args.bandwidth)
        plan = plan_from_dict(data)
        devices = plan.devices
        network = NetworkModel.constant_from_devices(devices)
    if args.workers > 1:
        print(f"note: --workers {args.workers} has no effect on a single-plan evaluation")
    result = PlanEvaluator(devices, network).evaluate(plan)
    summary = evaluation_to_dict(result)
    print(f"method: {plan.method}  model: {plan.model.name}")
    print(f"latency: {summary['end_to_end_ms']:.1f} ms   IPS: {summary['ips']:.2f}")
    print(f"max compute: {summary['max_compute_ms']:.1f} ms   "
          f"max transmission: {summary['max_transmission_ms']:.1f} ms")
    for device, compute in zip(devices, summary["per_device_compute_ms"]):
        print(f"  {device.device_id:12s} compute {compute:8.1f} ms")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.obs import NULL_PROFILER, Profiler

    scenario = _scenario_from_args(args.scenario, args.bandwidth)
    if scenario is None:
        return 2
    profiler = Profiler() if args.profile else NULL_PROFILER
    with ExperimentHarness(
        HarnessConfig(
            osds_episodes=args.episodes,
            num_random_splits=args.random_splits,
            seed=args.seed,
            workers=args.workers,
            osds_episode_batch=args.episode_batch,
            osds_policy_refresh=args.policy_refresh,
        )
    ) as harness:
        with profiler.section("compare.run"):
            results = harness.compare(scenario, methods=ALL_METHODS, model_name=args.model)
        print(
            format_ips_table({scenario.name: harness.ips_table(results)}, methods=list(ALL_METHODS))
        )
        print(f"DistrEdge speedup over best baseline: "
              f"{harness.speedup_over_best_baseline(results):.2f}x")
    if profiler.enabled:
        print(profiler.format_table())
    return 0


def _parse_tenant_ref(ref: str, default_model: str) -> tuple:
    """Parse a ``--tenant`` reference ``method[@model]``."""
    method, _, model_name = ref.partition("@")
    method = method.strip()
    model_name = model_name.strip() or default_model
    known = ["distredge", *sorted(BASELINE_REGISTRY)]
    if method not in known:
        raise ValueError(f"unknown tenant method {method!r}; known: {known}")
    if model_name not in model_zoo.list_models():
        raise ValueError(
            f"unknown tenant model {model_name!r}; known: {model_zoo.list_models()}"
        )
    return method, model_name


def _broadcast(values, count: int, default, flag: str) -> List:
    """One value per tenant: broadcast a single value, pass lists through."""
    if not values:
        return [default] * count
    if len(values) == 1:
        return list(values) * count
    if len(values) != count:
        raise ValueError(f"{flag} given {len(values)} times for {count} tenants; pass 1 or {count}")
    return list(values)


def _provenance(args: argparse.Namespace) -> dict:
    """Reproducibility stamp attached to every ``--report-json`` payload.

    Records what produced the file: the repro version, the exact invocation
    argv, and the resolved scenario spec — enough to re-run the experiment
    without the shell history that generated it.
    """
    from repro.version import __version__

    return {
        "repro_version": __version__,
        "argv": list(getattr(args, "_argv", sys.argv[1:])),
        "scenario": getattr(args, "scenario", None),
    }


def _write_report_json(path: str, payload, provenance=None) -> None:
    import json
    from pathlib import Path

    if provenance is not None and isinstance(payload, dict):
        payload = {**payload, "provenance": provenance}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"report written to {path}")


def _cmd_serve_figure(args: argparse.Namespace, parsed, deadlines, weights, policy) -> int:
    """The ``serve --figure`` path: deadline-miss vs offered-load sweep."""
    from repro.experiments.figures import serving_load_curve
    from repro.experiments.reporting import format_series

    if args.mode != "batched":
        print(f"note: --figure always sweeps in batched mode; --mode {args.mode} ignored",
              file=sys.stderr)
    models = {model_name for _, model_name in parsed}
    if len(models) > 1:
        print(
            f"--figure sweeps one model across rates; tenants name {sorted(models)}",
            file=sys.stderr,
        )
        return 2
    try:
        rates = [float(part) for part in args.figure_rates.split(",") if part.strip()]
    except ValueError:
        print(f"--figure-rates {args.figure_rates!r} contains a non-number", file=sys.stderr)
        return 2
    if not rates or any(rate <= 0 for rate in rates):
        print(f"--figure-rates must be positive rates, got {args.figure_rates!r}", file=sys.stderr)
        return 2
    scenario = _scenario_from_args(args.scenario, args.bandwidth)
    if scenario is None:
        return 2
    with ExperimentHarness(
        HarnessConfig(osds_episodes=args.episodes, seed=args.seed, workers=args.workers)
    ) as harness:
        curve = serving_load_curve(
            harness,
            scenario,
            rates_rps=rates,
            methods=[method for method, _ in parsed],
            model_name=next(iter(models)),
            duration_s=args.duration,
            deadline_ms=deadlines,
            policy=policy,
            seed=args.seed,
            weight=weights,
        )
    print(format_series(curve, title="deadline-miss rate vs offered load"))
    if args.report_json:
        _write_report_json(args.report_json, curve, provenance=_provenance(args))
    return 0


def _parse_fleet_range(spec: str) -> Tuple[int, int]:
    """Parse a ``MIN:MAX`` fleet-size range."""
    parts = spec.split(":")
    if len(parts) != 2:
        raise ValueError(f"--fleet-range must be MIN:MAX, got {spec!r}")
    try:
        lo, hi = int(parts[0]), int(parts[1])
    except ValueError:
        raise ValueError(f"--fleet-range must be two integers MIN:MAX, got {spec!r}")
    return lo, hi


def _control_plane_inputs(args: argparse.Namespace, parsed, traffics):
    """Shared validation for --plan-capacity / --autoscale.

    Both resize the fleet between runs, so they need a seeded ``gen:``
    scenario spec (catalogue fleets have a fixed size) and a single model
    across tenants (one :meth:`ExperimentHarness.serve_scenario` call).
    Returns ``(methods, model_name, traffic_list)`` or ``None`` after
    printing the reason to stderr.
    """
    if not args.scenario.startswith(GENERATOR_PREFIX):
        print(
            f"--plan-capacity/--autoscale resize the fleet, so --scenario must "
            f"be a seeded {GENERATOR_PREFIX!r} spec (e.g. gen:n=2,seed=3); "
            f"got {args.scenario!r}",
            file=sys.stderr,
        )
        return None
    models = {model_name for _, model_name in parsed}
    if len(models) > 1:
        print(
            f"--plan-capacity/--autoscale serve one model across fleet sizes; "
            f"tenants name {sorted(models)}",
            file=sys.stderr,
        )
        return None
    try:
        traffic_list = [
            _resolve_traffic_or_poisson(spec, args.rate, args.seed + i)
            for i, spec in enumerate(traffics)
        ]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return None
    return [m for m, _ in parsed], next(iter(models)), traffic_list


def _fault_policies_from_args(args: argparse.Namespace):
    """Resolve ``--churn``/``--retry-*``/``--degrade-min-live`` into policies.

    Returns ``(faults, retry, degradation)`` — all ``None`` without
    ``--churn`` — or ``None`` after printing the reason to stderr when the
    combination is invalid (mirroring the ``--contention`` gate: the retry
    and degradation knobs require ``--churn``).
    """
    from repro.runtime.faults import DegradationPolicy, RetryPolicy, parse_churn_spec

    if args.churn is None:
        if (
            args.retry_max != 3
            or args.retry_backoff_ms != 50.0
            or args.retry_jitter_ms != 10.0
            or args.retry_timeout_ms is not None
            or args.degrade_min_live is not None
        ):
            print(
                "--retry-max/--retry-backoff-ms/--retry-jitter-ms/"
                "--retry-timeout-ms/--degrade-min-live model fleet churn; "
                "pass --churn to enable them",
                file=sys.stderr,
            )
            return None
        return (None, None, None)
    try:
        faults = parse_churn_spec(args.churn)
        retry = RetryPolicy(
            max_attempts=args.retry_max,
            backoff_ms=args.retry_backoff_ms,
            jitter_ms=args.retry_jitter_ms,
            timeout_ms=args.retry_timeout_ms,
            seed=args.seed,
        )
        degradation = (
            DegradationPolicy(min_live_fraction=args.degrade_min_live)
            if args.degrade_min_live is not None
            else None
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return None
    return (faults, retry, degradation)


def _resolve_traffic_or_poisson(spec, rate: float, seed: int):
    """A ``traffic:`` spec, or the default Poisson process when absent."""
    from repro.serving import PoissonArrivals, resolve_traffic

    return resolve_traffic(spec) if spec is not None else PoissonArrivals(
        rate_rps=rate, seed=seed
    )


def _policy_from_args(args: argparse.Namespace):
    """Resolve ``--contention`` and its knobs into a cluster policy.

    Returns ``(True, policy_or_None)`` — ``None`` without ``--contention`` —
    or ``(False, None)`` after printing the reason to stderr (the contention
    knobs require ``--contention``, mirroring the ``--churn`` gate).  Shared
    by ``serve`` and ``analyze`` so the same flags resolve identically.
    """
    from repro.serving import ClusterPolicy

    if args.contention:
        try:
            return True, ClusterPolicy(
                discipline=args.discipline,
                max_inflight=args.max_inflight,
                admission=args.admission,
                on_predicted_miss=args.on_predicted_miss,
                window_ms=args.window_ms,
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return False, None
    if (
        args.discipline != "fifo"
        or args.max_inflight is not None
        or args.weight
        or args.admission != "none"
        or args.window_ms is not None
    ):
        print(
            "--discipline/--max-inflight/--weight/--admission/--window-ms model "
            "shared-fleet contention; pass --contention to enable it",
            file=sys.stderr,
        )
        return False, None
    return True, None


def _build_tenants(
    args: argparse.Namespace, parsed, devices, network,
    traffics, deadlines, capacities, weights, slot_counts,
):
    """Plan each ``--tenant`` method on the fleet and wrap it in a TenantSpec.

    Returns the tenant list, or ``None`` after printing a bad ``--traffic``
    spec to stderr.  Shared by ``serve`` and ``analyze``.
    """
    from repro.serving import SLO, PoissonArrivals, TenantSpec, resolve_traffic

    tenants = []
    methods_only = [m for m, _ in parsed]
    for i, (method, model_name) in enumerate(parsed):
        model = model_zoo.get(model_name)
        if method == "distredge":
            planner = DistrEdge(
                DistrEdgeConfig(
                    osds=OSDSConfig(max_episodes=args.episodes, seed=args.seed),
                    seed=args.seed,
                )
            )
            plan = planner.plan(model, devices, network)
        else:
            plan = BASELINE_REGISTRY[method]().plan(model, devices, network)
        try:
            traffic = (
                resolve_traffic(traffics[i])
                if traffics[i] is not None
                else PoissonArrivals(rate_rps=args.rate, seed=args.seed + i)
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return None
        # Suffix only on duplicate methods (same rule as
        # ExperimentHarness.serve_scenario, so reports correlate).
        tenants.append(
            TenantSpec(
                name=method if methods_only.count(method) == 1 else f"{method}-{i}",
                plan=plan,
                traffic=traffic,
                slo=SLO(deadline_ms=deadlines[i]),
                queue_capacity=capacities[i],
                weight=weights[i],
                slots=slot_counts[i],
            )
        )
    return tenants


def _cmd_serve_plan_capacity(
    args: argparse.Namespace, parsed, traffics, deadlines, weights, policy,
    faults, retry, degradation,
) -> int:
    """The ``serve --plan-capacity`` path: min fleet size for a miss target."""
    from repro.experiments.reporting import format_capacity_plan
    from repro.serving.control import CapacityPlanConfig, CapacityPlanner

    inputs = _control_plane_inputs(args, parsed, traffics)
    if inputs is None:
        return 2
    methods, model_name, traffic_list = inputs
    try:
        lo, hi = _parse_fleet_range(args.fleet_range)
        config = CapacityPlanConfig(
            min_devices=lo, max_devices=hi, target_miss_rate=args.target_miss_rate
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    with ExperimentHarness(
        HarnessConfig(osds_episodes=args.episodes, seed=args.seed, workers=args.workers)
    ) as harness:
        probe = harness.capacity_probe_runner(
            args.scenario,
            methods=methods,
            model_name=model_name,
            traffic=traffic_list,
            deadline_ms=deadlines,
            queue_capacity=None,
            duration_s=args.duration,
            policy=policy,
            weight=weights,
            engine=args.engine,
            slots=args.slots or 1,
            faults=faults,
            retry=retry,
            degradation=degradation,
        )
        tracer = None
        if args.trace_json:
            from repro.obs import Tracer

            tracer = Tracer()
        planner = CapacityPlanner(probe, config, tracer=tracer)
        plan = planner.plan()
    print(format_capacity_plan(plan, title="capacity plan"))
    if tracer is not None:
        tracer.write_chrome(args.trace_json, provenance=_provenance(args))
        print(f"trace written to {args.trace_json}")
    if args.report_json:
        _write_report_json(args.report_json, plan.to_dict(), provenance=_provenance(args))
    return 0


def _cmd_serve_autoscale(
    args: argparse.Namespace, parsed, traffics, deadlines, weights, policy,
    faults, retry, degradation,
) -> int:
    """The ``serve --autoscale`` path: windowed fleet resizing."""
    from repro.experiments.reporting import format_autoscale_report
    from repro.serving.control import AutoscalerConfig, FleetAutoscaler

    inputs = _control_plane_inputs(args, parsed, traffics)
    if inputs is None:
        return 2
    methods, model_name, traffic_list = inputs
    try:
        lo, hi = _parse_fleet_range(args.fleet_range)
        config = AutoscalerConfig(
            min_devices=lo,
            max_devices=hi,
            window_s=args.window_s,
            low_utilization=args.scale_low,
            high_utilization=args.scale_high,
            step=args.scale_step,
            target_miss_rate=args.target_miss_rate,
            capacity_per_device_rps=args.capacity_per_device_rps,
            trigger=args.scale_trigger.replace("-", "_"),
            burn_threshold=args.burn_threshold,
            burn_windows=args.burn_windows,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    with ExperimentHarness(
        HarnessConfig(osds_episodes=args.episodes, seed=args.seed, workers=args.workers)
    ) as harness:
        run_window = harness.autoscale_window_runner(
            args.scenario,
            window_s=args.window_s,
            num_windows=args.windows,
            methods=methods,
            model_name=model_name,
            traffic=traffic_list,
            deadline_ms=deadlines,
            queue_capacity=None,
            policy=policy,
            weight=weights,
            engine=args.engine,
            slots=args.slots or 1,
            faults=faults,
            retry=retry,
            degradation=degradation,
        )
        tracer = None
        if args.trace_json:
            from repro.obs import Tracer

            tracer = Tracer()
        report = FleetAutoscaler(run_window, config, tracer=tracer).run(
            args.windows, initial_devices=lo
        )
    print(format_autoscale_report(report, title="autoscaled serving"))
    if tracer is not None:
        tracer.write_chrome(args.trace_json, provenance=_provenance(args))
        print(f"trace written to {args.trace_json}")
    if args.report_json:
        _write_report_json(args.report_json, report.to_dict(), provenance=_provenance(args))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.runtime.batch import BatchPlanEvaluator
    from repro.runtime.shard import ShardedPlanEvaluator
    from repro.serving import ServingSimulator, run_with_parity
    from repro.experiments.reporting import (
        format_fault_report,
        format_fleet_table,
        format_serving_table,
    )
    from repro.runtime.faults import resolve_churn

    refs = args.tenants or ["coedge", "offload"]
    try:
        parsed = [_parse_tenant_ref(ref, args.model) for ref in refs]
        traffics = _broadcast(args.traffic, len(parsed), None, "--traffic")
        deadlines = _broadcast(args.deadline_ms, len(parsed), 1000.0, "--deadline-ms")
        capacities = _broadcast(args.queue_capacity, len(parsed), None, "--queue-capacity")
        weights = _broadcast(args.weight, len(parsed), 1.0, "--weight")
        slot_counts = [int(s) for s in _broadcast(args.slots, len(parsed), 1, "--slots")]
        if any(w <= 0 for w in weights):
            raise ValueError(f"--weight values must be > 0, got {weights}")
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    ok, policy = _policy_from_args(args)
    if not ok:
        return 2
    fault_args = _fault_policies_from_args(args)
    if fault_args is None:
        return 2
    faults, retry, degradation = fault_args
    alert_monitor = None
    if args.alerts or args.alerts_json:
        from repro.obs.slo import BurnRateRule, SLOMonitor

        try:
            rule = BurnRateRule(
                "burn", args.alert_fast_s, args.alert_slow_s, args.alert_burn
            )
            alert_monitor = SLOMonitor(rules=(rule,), default_target=args.alert_target)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    elif (
        args.alert_fast_s != 5.0
        or args.alert_slow_s != 30.0
        or args.alert_burn != 1.0
        or args.alert_target != 0.05
    ):
        print(
            "--alert-fast-s/--alert-slow-s/--alert-burn/--alert-target tune "
            "SLO burn-rate alerting; pass --alerts or --alerts-json to "
            "enable it",
            file=sys.stderr,
        )
        return 2
    if args.plan_capacity or args.autoscale:
        if args.plan_capacity and args.autoscale:
            print("--plan-capacity and --autoscale are mutually exclusive",
                  file=sys.stderr)
            return 2
        if args.metrics_json or args.profile or alert_monitor is not None:
            print(
                "--metrics-json/--profile/--alerts instrument a single "
                "serving run; --plan-capacity/--autoscale run many (use "
                "--trace-json for the control-plane timeline)",
                file=sys.stderr,
            )
            return 2
        if policy is None:
            print(
                "--plan-capacity/--autoscale size fleets against contended "
                "serving; pass --contention (typically with "
                "--admission predictive)",
                file=sys.stderr,
            )
            return 2
        if args.plan_capacity:
            return _cmd_serve_plan_capacity(
                args, parsed, traffics, deadlines, weights, policy,
                faults, retry, degradation,
            )
        return _cmd_serve_autoscale(
            args, parsed, traffics, deadlines, weights, policy,
            faults, retry, degradation,
        )
    if args.figure:
        if args.trace_json or args.metrics_json or args.profile or alert_monitor is not None:
            print(
                "--trace-json/--metrics-json/--profile/--alerts instrument a "
                "single serving run; --figure sweeps many (drop --figure or "
                "the observability flags)",
                file=sys.stderr,
            )
            return 2
        if faults is not None:
            print(
                "--figure sweeps offered load on an immortal fleet; use "
                "repro.experiments.figures.degradation_curve for the "
                "crash-count sweep",
                file=sys.stderr,
            )
            return 2
        return _cmd_serve_figure(args, parsed, deadlines, weights, policy)
    scenario = _scenario_from_args(args.scenario, args.bandwidth)
    if scenario is None:
        return 2
    if faults is not None:
        # Resolve against the fleet up front so a bad device id in the spec
        # fails with exit code 2 instead of a traceback mid-run.
        try:
            faults = resolve_churn(faults, scenario.num_devices)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    sharded = None
    if args.workers >= 2:
        sharded = ShardedPlanEvaluator(scenario, num_workers=args.workers, seed=args.seed)
        evaluator = sharded
        devices, network = sharded.devices, sharded.network
    else:
        devices, network = scenario.build(seed=args.seed)
        evaluator = BatchPlanEvaluator(devices, network)
    print(f"scenario: {scenario.name} ({scenario.num_devices} providers)")
    tracer = metrics = profiler = None
    if args.trace_json or args.metrics_json or args.profile:
        from repro.obs import MetricsRegistry, Profiler, Tracer, record_serving_report

        if args.trace_json:
            tracer = Tracer()
        if args.metrics_json:
            metrics = MetricsRegistry()
        if args.profile:
            profiler = Profiler()
            evaluator.profiler = profiler
    try:
        tenants = _build_tenants(
            args, parsed, devices, network,
            traffics, deadlines, capacities, weights, slot_counts,
        )
        if tenants is None:
            return 2
        if args.mode == "parity":
            reference = PlanEvaluator(devices, network)
            report = run_with_parity(
                evaluator,
                reference,
                tenants,
                duration_s=args.duration,
                policy=policy,
                engine=args.engine,
                faults=faults,
                retry=retry,
                degradation=degradation,
                tracer=tracer,
            )
            print(
                f"parity: {args.engine} engine batched loop is bit-identical "
                "to the reference loop"
            )
            if metrics is not None:
                # run_with_parity returns the committed report; derive the
                # registry from it exactly as ServingSimulator.run would.
                record_serving_report(metrics, report)
        else:
            if args.engine == "array" and args.mode == "reference":
                print(
                    "--engine array has no reference mode; the reference loop "
                    "is the object-engine oracle (use --mode parity to check "
                    "the array engine against it)",
                    file=sys.stderr,
                )
                return 2
            simulator = ServingSimulator(evaluator)
            if profiler is not None:
                simulator.profiler = profiler
            report = simulator.run(
                tenants,
                duration_s=args.duration,
                mode=args.mode,
                policy=policy,
                engine=args.engine,
                faults=faults,
                retry=retry,
                degradation=degradation,
                tracer=tracer,
                metrics=metrics,
            )
        print(format_serving_table(report))
        if report.fleet is not None:
            print(format_fleet_table(report, title="fleet lane load"))
        if report.faults is not None:
            print(format_fault_report(report, title="fleet churn"))
        if report.slo_violations:
            print(f"SLO violations: {', '.join(report.slo_violations)}")
        if alert_monitor is not None:
            from repro.experiments.reporting import format_alert_timeline

            # Evaluate before the trace is written so the alert instants
            # land on the control:slo track of --trace-json.
            timeline = alert_monitor.evaluate(report, tracer=tracer)
            if args.alerts:
                print(format_alert_timeline(timeline, title="SLO burn-rate alerts"))
            if args.alerts_json:
                _write_report_json(
                    args.alerts_json, timeline.to_dict(), provenance=_provenance(args)
                )
        if tracer is not None:
            tracer.write_chrome(args.trace_json, provenance=_provenance(args))
            print(f"trace written to {args.trace_json}")
        if metrics is not None:
            import json
            from pathlib import Path

            snapshot = {**metrics.snapshot(), "provenance": _provenance(args)}
            Path(args.metrics_json).write_text(
                json.dumps(snapshot, indent=2) + "\n"
            )
            print(f"metrics written to {args.metrics_json}")
        if profiler is not None:
            print(profiler.format_table())
        if args.report_json:
            _write_report_json(args.report_json, report.to_dict(), provenance=_provenance(args))
    finally:
        if sharded is not None:
            sharded.close()
    return 0


def _analyze_inline_run(args: argparse.Namespace):
    """Run one traced batched serving run for ``repro analyze``.

    Returns the :class:`~repro.obs.analysis.AnalysisReport`, or an ``int``
    exit code after printing a CLI error to stderr.
    """
    from repro.obs import Tracer
    from repro.obs.analysis import analyze_serving
    from repro.runtime.batch import BatchPlanEvaluator
    from repro.runtime.faults import RetryPolicy, parse_churn_spec, resolve_churn
    from repro.serving import ServingSimulator

    refs = args.tenants or ["coedge", "offload"]
    try:
        parsed = [_parse_tenant_ref(ref, args.model) for ref in refs]
        traffics = _broadcast(args.traffic, len(parsed), None, "--traffic")
        deadlines = _broadcast(args.deadline_ms, len(parsed), 1000.0, "--deadline-ms")
        weights = _broadcast(args.weight, len(parsed), 1.0, "--weight")
        if any(w <= 0 for w in weights):
            raise ValueError(f"--weight values must be > 0, got {weights}")
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    ok, policy = _policy_from_args(args)
    if not ok:
        return 2
    scenario = _scenario_from_args(args.scenario, args.bandwidth)
    if scenario is None:
        return 2
    faults = retry = None
    if args.churn is not None:
        try:
            faults = resolve_churn(parse_churn_spec(args.churn), scenario.num_devices)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        retry = RetryPolicy(seed=args.seed)
    devices, network = scenario.build(seed=args.seed)
    print(f"scenario: {scenario.name} ({scenario.num_devices} providers)")
    tenants = _build_tenants(
        args, parsed, devices, network,
        traffics, deadlines, [None] * len(parsed), weights, [1] * len(parsed),
    )
    if tenants is None:
        return 2
    tracer = Tracer()
    report = ServingSimulator(BatchPlanEvaluator(devices, network)).run(
        tenants,
        duration_s=args.duration,
        policy=policy,
        engine=args.engine,
        faults=faults,
        retry=retry,
        tracer=tracer,
    )
    return analyze_serving(report, tracer)


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.experiments.reporting import (
        format_attribution_table,
        format_bottleneck_table,
        format_breakdown_chart,
    )
    from repro.obs.analysis import AnalysisError, analyze_chrome

    if args.trace_json is not None:
        import json
        from pathlib import Path

        try:
            data = json.loads(Path(args.trace_json).read_text())
        except OSError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"{args.trace_json} is not valid JSON: {exc}", file=sys.stderr)
            return 2
        try:
            analysis = analyze_chrome(data)
        except (AnalysisError, ValueError) as exc:
            print(
                f"{args.trace_json} is not an analyzable serving trace: {exc}",
                file=sys.stderr,
            )
            return 2
    else:
        result = _analyze_inline_run(args)
        if isinstance(result, int):
            return result
        analysis = result
    print(format_attribution_table(analysis, title="critical-path attribution"))
    print(format_bottleneck_table(analysis, title="fleet bottleneck ranking", top=args.top))
    if args.figure:
        print(format_breakdown_chart(analysis, title="latency breakdown"))
    if args.report_json:
        _write_report_json(args.report_json, analysis.to_dict(), provenance=_provenance(args))
    if not analysis.exact:
        print(
            "attribution is INEXACT: segments do not telescope to the "
            "measured latency (a bug, or a hand-edited trace file)",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_plan = sub.add_parser("plan", help="plan a distribution strategy")
    p_plan.add_argument("--model", default="vgg16", choices=model_zoo.list_models())
    cluster = p_plan.add_mutually_exclusive_group(required=True)
    cluster.add_argument("--devices", nargs="+",
                         help="device specs like xavier:300 nano:50")
    cluster.add_argument("--scenario", default=None,
                         help="catalogue name (DB, LA, ...) or generator spec "
                              "like gen:n=32,seed=7,bw=50-300,types=mixed; "
                              "catalogue Table-I groups default to 200 Mbps "
                              "(override with --bandwidth)")
    p_plan.add_argument("--bandwidth", type=float, default=None,
                        help="re-shape every link of a catalogue --scenario "
                             "to this rate in Mbps")
    p_plan.add_argument("--method", default="distredge",
                        choices=["distredge", *sorted(BASELINE_REGISTRY)])
    p_plan.add_argument("--episodes", type=int, default=200)
    p_plan.add_argument("--episode-batch", type=int, default=8,
                        help="OSDS episodes rolled out in lockstep per vectorised "
                             "round (execution width only; results are bit-identical "
                             "at any value, 1 = scalar loop). Rounds never cross a "
                             "policy-refresh boundary, so widths beyond "
                             "--policy-refresh need that knob raised too")
    p_plan.add_argument("--policy-refresh", type=int, default=8,
                        help="episodes between OSDS acting-policy snapshot refreshes "
                             "(semantic: changing it changes which policy explores)")
    p_plan.add_argument("--alpha", type=float, default=0.75)
    p_plan.add_argument("--random-splits", type=int, default=30)
    p_plan.add_argument("--seed", type=int, default=0)
    p_plan.add_argument("--workers", type=int, default=1,
                        help="worker processes for sharded batch evaluation "
                             "(no effect on a single plan; see compare)")
    p_plan.add_argument("--output", default=None, help="write the plan to this JSON file")
    p_plan.add_argument("--profile", action="store_true",
                        help="print a wall-clock profile of the planning search "
                             "and final evaluation (host time only)")
    p_plan.set_defaults(func=_cmd_plan)

    p_eval = sub.add_parser("evaluate", help="evaluate a saved plan")
    p_eval.add_argument("plan", help="path to a plan JSON file")
    p_eval.add_argument("--bandwidth", type=float, default=None,
                        help="override every provider's bandwidth (Mbps); with "
                             "--scenario, re-shapes a catalogue scenario's links "
                             "instead (same semantics as plan/compare)")
    p_eval.add_argument("--scenario", default=None,
                        help="re-evaluate the plan on this fleet — catalogue name "
                             "or gen: spec, resolved exactly as plan/compare "
                             "resolve it; device types must match the plan")
    p_eval.add_argument("--seed", type=int, default=0,
                        help="scenario build seed (trace construction)")
    p_eval.add_argument("--workers", type=int, default=1,
                        help="worker processes for sharded batch evaluation "
                             "(no effect on a single plan; accepted for "
                             "interface consistency with plan/compare)")
    p_eval.set_defaults(func=_cmd_evaluate)

    p_serve = sub.add_parser(
        "serve", help="simulate multi-tenant open-loop serving on one fleet"
    )
    p_serve.add_argument("--scenario", default="DB",
                         help="catalogue name or gen: spec (same resolution as "
                              "plan/compare)")
    p_serve.add_argument("--bandwidth", type=float, default=None,
                         help="re-shape every link of a catalogue --scenario (Mbps)")
    p_serve.add_argument("--tenant", action="append", dest="tenants",
                         metavar="METHOD[@MODEL]",
                         help="repeatable tenant spec, e.g. coedge@vgg16 "
                              "(model defaults to --model); default: "
                              "coedge + offload")
    p_serve.add_argument("--model", default="vgg16", choices=model_zoo.list_models(),
                         help="default model for --tenant entries without @MODEL")
    p_serve.add_argument("--traffic", action="append", default=None,
                         help="repeatable traffic: spec, one per tenant or one "
                              "shared (e.g. traffic:poisson,rate=5 or "
                              "traffic:mmpp,low=1,high=20); default: Poisson at "
                              "--rate with per-tenant seeds")
    p_serve.add_argument("--rate", type=float, default=2.0,
                         help="default Poisson arrival rate (req/s) when no "
                              "--traffic is given")
    p_serve.add_argument("--deadline-ms", action="append", type=float, default=None,
                         help="repeatable per-tenant SLO deadline (ms); default 1000")
    p_serve.add_argument("--queue-capacity", action="append", type=int, default=None,
                         help="repeatable per-tenant admission bound (waiting "
                              "requests); default unbounded")
    p_serve.add_argument("--duration", type=float, default=30.0,
                         help="open-loop arrival horizon (simulated seconds)")
    p_serve.add_argument("--mode", choices=["batched", "reference", "parity"],
                         default="batched",
                         help="event loop: epoch-batched (default), naive "
                              "per-request reference, or parity (run both and "
                              "assert bit-identical)")
    p_serve.add_argument("--engine", choices=["object", "array"], default="object",
                         help="execution engine: per-tenant object loops "
                              "(default) or the vectorised array time-wheel "
                              "(bit-identical results, ~10x faster on large "
                              "fleets; with --mode parity the array engine is "
                              "checked against the scalar reference loop)")
    p_serve.add_argument("--episodes", type=int, default=50,
                         help="OSDS episodes for distredge tenants")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--workers", type=int, default=1,
                         help="shard epoch batches over N worker processes")
    p_serve.add_argument("--contention", action="store_true",
                         help="model shared-fleet lane contention: concurrent "
                              "requests queue on per-device compute/send/recv "
                              "lanes instead of each seeing an idle fleet")
    p_serve.add_argument("--discipline", choices=["fifo", "deadline", "wfq"],
                         default="fifo",
                         help="cross-tenant dispatch order under --contention: "
                              "release-time FIFO, least deadline slack first, "
                              "or weighted fair queueing (see --weight)")
    p_serve.add_argument("--max-inflight", type=int, default=None,
                         help="cluster-wide cap on concurrently in-flight "
                              "requests under --contention (admission gate); "
                              "default unlimited")
    p_serve.add_argument("--weight", action="append", type=float, default=None,
                         help="repeatable per-tenant WFQ fair-share weight "
                              "(with --contention --discipline wfq); default 1")
    p_serve.add_argument("--slots", action="append", type=int, default=None,
                         help="repeatable per-tenant service-slot count "
                              "(within-tenant concurrency); default 1, the "
                              "paper's one-image-in-flight protocol")
    p_serve.add_argument("--admission", choices=["none", "predictive"],
                         default="none",
                         help="admission control under --contention: "
                              "'predictive' asks the contention evaluator for "
                              "each request's completion at release time and "
                              "intercepts predicted SLO misses before they "
                              "occupy the fleet")
    p_serve.add_argument("--on-predicted-miss", choices=["reject", "requeue"],
                         default="reject",
                         help="what --admission predictive does with an "
                              "intercepted request: deny it (counted per "
                              "tenant) or defer it to the fleet's next "
                              "lane-free event and re-predict")
    p_serve.add_argument("--churn", default=None, metavar="SPEC",
                         help="inject seeded fleet churn from a churn: spec, "
                              "e.g. churn:events=crash:0@500;join:0@2000 or "
                              "churn:crashes=2,seed=7; crashes kill in-flight "
                              "requests, which retry on a strategy replanned "
                              "around the surviving devices")
    p_serve.add_argument("--retry-max", type=int, default=3,
                         help="retry attempts per request under --churn before "
                              "it is abandoned (default 3)")
    p_serve.add_argument("--retry-backoff-ms", type=float, default=50.0,
                         help="base exponential-backoff delay between retry "
                              "attempts under --churn (default 50)")
    p_serve.add_argument("--retry-jitter-ms", type=float, default=10.0,
                         help="seeded uniform jitter added to each backoff "
                              "delay under --churn (default 10)")
    p_serve.add_argument("--retry-timeout-ms", type=float, default=None,
                         help="per-request wall-clock budget across all retry "
                              "attempts under --churn; default unbounded")
    p_serve.add_argument("--degrade-min-live", type=float, default=None,
                         help="graceful degradation under --churn: while the "
                              "live fleet fraction is below this threshold, "
                              "shed arrivals of the lowest-weight tenants "
                              "(deterministically) instead of queueing them; "
                              "default: no shedding")
    p_serve.add_argument("--window-ms", type=float, default=None,
                         help="attach a windowed fleet-load time series "
                              "(busy/wait/inflight per device per window of "
                              "this width) to the contended run's report")
    p_serve.add_argument("--plan-capacity", action="store_true",
                         help="binary-search the minimum fleet size (within "
                              "--fleet-range) whose run meets "
                              "--target-miss-rate, instead of one serving run; "
                              "needs a gen: --scenario and --contention")
    p_serve.add_argument("--autoscale", action="store_true",
                         help="serve --windows windows of --window-s seconds, "
                              "resizing the fleet between windows from "
                              "measured utilisation; needs a gen: --scenario "
                              "and --contention")
    p_serve.add_argument("--fleet-range", default="1:8", metavar="MIN:MAX",
                         help="fleet-size bounds for --plan-capacity / "
                              "--autoscale (default 1:8)")
    p_serve.add_argument("--target-miss-rate", type=float, default=0.0,
                         help="highest acceptable effective miss rate "
                              "(denials count as misses) for --plan-capacity "
                              "and the autoscaler's grow trigger; default 0")
    p_serve.add_argument("--windows", type=int, default=6,
                         help="number of autoscaler windows (default 6)")
    p_serve.add_argument("--window-s", type=float, default=5.0,
                         help="autoscaler window length in simulated seconds "
                              "(default 5)")
    p_serve.add_argument("--scale-low", type=float, default=0.3,
                         help="autoscaler shrink threshold: mean compute "
                              "utilisation below this shrinks the fleet by "
                              "--scale-step (default 0.3)")
    p_serve.add_argument("--scale-high", type=float, default=0.8,
                         help="autoscaler grow threshold: mean compute "
                              "utilisation above this grows the fleet by "
                              "--scale-step (default 0.8)")
    p_serve.add_argument("--scale-step", type=int, default=1,
                         help="devices added/removed per autoscaler decision "
                              "(default 1)")
    p_serve.add_argument("--scale-trigger", choices=["utilization", "burn-rate"],
                         default="utilization",
                         help="autoscaler decision signal: windowed compute "
                              "utilisation (default) or the SRE-style SLO "
                              "burn rate (window miss fraction over the "
                              "--target-miss-rate budget, which must be > 0; "
                              "see --burn-threshold/--burn-windows)")
    p_serve.add_argument("--burn-threshold", type=float, default=1.0,
                         help="burn-rate autoscaler grow trigger: both the "
                              "window burn and its trailing mean must reach "
                              "this multiple of the miss budget (default 1); "
                              "shrink needs both below half of it")
    p_serve.add_argument("--burn-windows", type=int, default=4,
                         help="trailing windows averaged into the slow burn "
                              "signal for --scale-trigger burn-rate "
                              "(default 4)")
    p_serve.add_argument("--capacity-per-device-rps", type=float, default=None,
                         help="calibrated per-device capacity (req/s), e.g. a "
                              "serving_load_curve knee divided by its fleet "
                              "size; the autoscaler then jumps straight to "
                              "ceil(arrival rate / capacity) devices")
    p_serve.add_argument("--report-json", default=None, metavar="PATH",
                         help="write the serving report (or the --figure curve) "
                              "as JSON to PATH, stamped with a provenance "
                              "block (repro version, argv, scenario)")
    p_serve.add_argument("--trace-json", default=None, metavar="PATH",
                         help="write a Chrome trace-event JSON timeline of the "
                              "run to PATH (open in Perfetto / "
                              "chrome://tracing, or feed to repro analyze); "
                              "simulated-clock, deterministic, identical "
                              "across engines and modes, stamped with the "
                              "same provenance block as --report-json; with "
                              "--plan-capacity/--autoscale, the control-plane "
                              "probe/window timeline instead")
    p_serve.add_argument("--metrics-json", default=None, metavar="PATH",
                         help="write the run's metrics registry snapshot "
                              "(counters, gauges, latency histograms) as JSON "
                              "to PATH, stamped with the same provenance "
                              "block as --report-json; see "
                              "docs/observability.md for the catalogue")
    p_serve.add_argument("--alerts", action="store_true",
                         help="evaluate deterministic SLO burn-rate alerting "
                              "over the run on the simulated clock and print "
                              "the alert timeline (a fast/slow window pair "
                              "must both exceed --alert-burn to fire; see "
                              "docs/observability.md)")
    p_serve.add_argument("--alerts-json", default=None, metavar="PATH",
                         help="write the alert timeline as JSON to PATH "
                              "(implies alert evaluation), stamped with the "
                              "same provenance block as --report-json")
    p_serve.add_argument("--alert-fast-s", type=float, default=5.0,
                         help="fast burn window for --alerts in simulated "
                              "seconds (default 5)")
    p_serve.add_argument("--alert-slow-s", type=float, default=30.0,
                         help="slow burn window for --alerts in simulated "
                              "seconds (default 30)")
    p_serve.add_argument("--alert-burn", type=float, default=1.0,
                         help="burn-rate threshold both windows must reach to "
                              "fire, as a multiple of the SLO miss budget "
                              "(default 1)")
    p_serve.add_argument("--alert-target", type=float, default=0.05,
                         help="fallback SLO miss-rate budget for tenants "
                              "whose SLO does not set target_miss_rate "
                              "(default 0.05)")
    p_serve.add_argument("--profile", action="store_true",
                         help="print a wall-clock profile of where the run's "
                              "host time went (evaluator sweeps, shard "
                              "dispatch/merge, cache hit rates); wall-clock "
                              "only — never affects simulated results")
    p_serve.add_argument("--figure", action="store_true",
                         help="sweep Poisson offered load over --figure-rates and "
                              "print the deadline-miss-vs-load curve instead of "
                              "one serving run (ignores --traffic/--queue-capacity)")
    p_serve.add_argument("--figure-rates", default="0.5,1,2,4,8",
                         help="comma-separated per-tenant req/s rates for --figure")
    p_serve.set_defaults(func=_cmd_serve)

    p_an = sub.add_parser(
        "analyze",
        help="attribute per-request critical-path latency from a serving trace",
    )
    p_an.add_argument("--trace-json", default=None, metavar="PATH",
                      help="analyze an exported serve --trace-json file "
                           "(Chrome trace-event JSON) instead of running "
                           "inline; the event stream round-trips bit-exactly, "
                           "so the attribution matches the original run")
    p_an.add_argument("--report-json", default=None, metavar="PATH",
                      help="write the analysis report as JSON to PATH, "
                           "stamped with a provenance block (repro version, "
                           "argv, scenario)")
    p_an.add_argument("--figure", action="store_true",
                      help="print a stacked per-tenant latency-breakdown "
                           "chart (queue/gate/compute/send/recv/stall)")
    p_an.add_argument("--top", type=int, default=None, metavar="N",
                      help="show only the N hottest lanes in the bottleneck "
                           "ranking (default: all)")
    # Inline-run flags spell exactly like `repro serve`, so a serve
    # invocation becomes an analysis by swapping the subcommand.
    p_an.add_argument("--scenario", default="DB",
                      help="catalogue name or gen: spec for an inline run "
                           "(same resolution as serve); ignored with "
                           "--trace-json")
    p_an.add_argument("--bandwidth", type=float, default=None,
                      help="re-shape every link of a catalogue --scenario (Mbps)")
    p_an.add_argument("--tenant", action="append", dest="tenants",
                      metavar="METHOD[@MODEL]",
                      help="repeatable tenant spec as in serve; default: "
                           "coedge + offload")
    p_an.add_argument("--model", default="vgg16", choices=model_zoo.list_models(),
                      help="default model for --tenant entries without @MODEL")
    p_an.add_argument("--traffic", action="append", default=None,
                      help="repeatable traffic: spec as in serve; default: "
                           "Poisson at --rate with per-tenant seeds")
    p_an.add_argument("--rate", type=float, default=2.0,
                      help="default Poisson arrival rate (req/s)")
    p_an.add_argument("--deadline-ms", action="append", type=float, default=None,
                      help="repeatable per-tenant SLO deadline (ms); default 1000")
    p_an.add_argument("--duration", type=float, default=30.0,
                      help="open-loop arrival horizon (simulated seconds)")
    p_an.add_argument("--seed", type=int, default=0)
    p_an.add_argument("--episodes", type=int, default=50,
                      help="OSDS episodes for distredge tenants")
    p_an.add_argument("--engine", choices=["object", "array"], default="object",
                      help="execution engine for the inline run (the "
                           "attribution is engine-invariant)")
    p_an.add_argument("--contention", action="store_true",
                      help="model shared-fleet lane contention, as in serve "
                           "(lane attribution needs it to show waiting)")
    p_an.add_argument("--discipline", choices=["fifo", "deadline", "wfq"],
                      default="fifo",
                      help="cross-tenant dispatch order under --contention")
    p_an.add_argument("--max-inflight", type=int, default=None,
                      help="cluster-wide in-flight cap under --contention "
                           "(gate wait shows up as the 'gate' segment)")
    p_an.add_argument("--weight", action="append", type=float, default=None,
                      help="repeatable per-tenant WFQ weight (with "
                           "--contention --discipline wfq); default 1")
    p_an.add_argument("--admission", choices=["none", "predictive"],
                      default="none",
                      help="admission control under --contention, as in serve")
    p_an.add_argument("--on-predicted-miss", choices=["reject", "requeue"],
                      default="reject",
                      help="predictive-admission action, as in serve")
    p_an.add_argument("--window-ms", type=float, default=None,
                      help="attach a windowed fleet-load series to the inline "
                           "run's report, as in serve")
    p_an.add_argument("--churn", default=None, metavar="SPEC",
                      help="inject seeded fleet churn (churn: spec, as in "
                           "serve) into the inline run; retries use the "
                           "default policy, and their backoff shows up in "
                           "the per-tenant backoff_ms column")
    p_an.set_defaults(func=_cmd_analyze)

    p_cmp = sub.add_parser("compare", help="compare all methods on a paper scenario")
    p_cmp.add_argument("--scenario", default="DB",
                       help="catalogue name (DA..DC, NA-nano.., LA..LD, homog-nano, "
                            "dynamic-nano) or gen:... spec; same resolution as plan "
                            "(Table-I groups default to 200 Mbps)")
    p_cmp.add_argument("--bandwidth", type=float, default=None,
                       help="re-shape every link of a catalogue --scenario to this "
                            "rate in Mbps; not applicable to gen: scenarios")
    p_cmp.add_argument("--model", default="vgg16", choices=model_zoo.list_models())
    p_cmp.add_argument("--episodes", type=int, default=150)
    p_cmp.add_argument("--episode-batch", type=int, default=8,
                       help="OSDS episodes rolled out in lockstep per vectorised round "
                            "(capped at --policy-refresh)")
    p_cmp.add_argument("--policy-refresh", type=int, default=8,
                       help="episodes between OSDS acting-policy snapshot refreshes")
    p_cmp.add_argument("--random-splits", type=int, default=20)
    p_cmp.add_argument("--seed", type=int, default=0)
    p_cmp.add_argument("--workers", type=int, default=1,
                       help="worker processes for sharded plan evaluation")
    p_cmp.add_argument("--profile", action="store_true",
                       help="print a wall-clock profile of the comparison run "
                            "(host time only)")
    p_cmp.set_defaults(func=_cmd_compare)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Kept on the namespace so --report-json can stamp the exact invocation
    # into its provenance block (see _provenance).
    args._argv = list(argv) if argv is not None else sys.argv[1:]
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
