"""Scenario catalogue: the device/bandwidth groups of the paper.

Table I (heterogeneous device types), Table II (heterogeneous bandwidths),
Table III (large-scale, 16 providers), plus the homogeneous environment used
by the alpha study (Fig. 5a).  A :class:`Scenario` is a declarative
description; :meth:`Scenario.build` materialises the provider list and the
network model so harness code never hand-assembles clusters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.devices.specs import DeviceInstance, make_cluster
from repro.network.topology import NetworkModel
from repro.utils.rng import SeedLike

#: (device type, bandwidth in Mbps) pair.
DeviceSpec = Tuple[str, float]


@dataclass(frozen=True)
class Scenario:
    """A named deployment: providers with their nominal bandwidths."""

    name: str
    device_specs: Tuple[DeviceSpec, ...]
    description: str = ""
    trace_kind: str = "constant"  # "constant", "wifi" or "dynamic"

    @property
    def num_devices(self) -> int:
        return len(self.device_specs)

    @property
    def device_types(self) -> List[str]:
        return [t for t, _ in self.device_specs]

    @property
    def bandwidths_mbps(self) -> List[float]:
        return [b for _, b in self.device_specs]

    def with_bandwidth(self, mbps: float, suffix: Optional[str] = None) -> "Scenario":
        """Same devices, every link re-shaped to ``mbps`` (Fig. 7's 50/300 sweep)."""
        specs = tuple((t, float(mbps)) for t, _ in self.device_specs)
        name = f"{self.name}-{suffix or f'{mbps:g}Mbps'}"
        return Scenario(
            name=name,
            device_specs=specs,
            description=f"{self.description} @ {mbps:g} Mbps",
            trace_kind=self.trace_kind,
        )

    def with_device_type(self, device_type: str, suffix: Optional[str] = None) -> "Scenario":
        """Same bandwidths, every provider replaced by ``device_type`` (Fig. 8)."""
        specs = tuple((device_type, b) for _, b in self.device_specs)
        name = f"{self.name}-{suffix or device_type}"
        return Scenario(
            name=name,
            device_specs=specs,
            description=f"{self.description} on {device_type}",
            trace_kind=self.trace_kind,
        )

    def build(
        self, seed: SeedLike = 0, trace_kind: Optional[str] = None
    ) -> Tuple[List[DeviceInstance], NetworkModel]:
        """Materialise the provider list and the network model."""
        devices = make_cluster(list(self.device_specs))
        kind = trace_kind or self.trace_kind
        if kind == "constant":
            network = NetworkModel.constant_from_devices(devices)
        else:
            network = NetworkModel.from_devices(devices, kind=kind, seed=seed)
        return devices, network


def _repeat(pattern: Sequence[DeviceSpec], times: int) -> Tuple[DeviceSpec, ...]:
    return tuple(pattern) * times


class ScenarioCatalog:
    """All named scenarios used in the paper's evaluation."""

    DEFAULT_BANDWIDTH = 200.0

    # ------------------------------------------------------------------ #
    # Table I: heterogeneous device types (bandwidth applied per experiment)
    # ------------------------------------------------------------------ #
    @staticmethod
    def table1_groups(bandwidth_mbps: float = 200.0) -> Dict[str, Scenario]:
        """Groups DA / DB / DC of Table I at a common bandwidth."""
        b = float(bandwidth_mbps)
        return {
            "DA": Scenario(
                "DA",
                (("tx2", b), ("tx2", b), ("nano", b), ("nano", b)),
                "TX2 x2 + Nano x2 (Table I)",
            ),
            "DB": Scenario(
                "DB",
                (("xavier", b), ("xavier", b), ("nano", b), ("nano", b)),
                "Xavier x2 + Nano x2 (Table I)",
            ),
            "DC": Scenario(
                "DC",
                (("xavier", b), ("tx2", b), ("nano", b), ("pi3", b)),
                "Xavier + TX2 + Nano + Pi3 (Table I)",
            ),
        }

    # ------------------------------------------------------------------ #
    # Table II: heterogeneous bandwidths (device type applied per experiment)
    # ------------------------------------------------------------------ #
    @staticmethod
    def table2_groups(device_type: str = "nano") -> Dict[str, Scenario]:
        """Groups NA / NB / NC / ND of Table II for one device type."""
        d = device_type
        return {
            "NA": Scenario(
                "NA", ((d, 50), (d, 50), (d, 200), (d, 200)), "50x2 + 200x2 Mbps (Table II)"
            ),
            "NB": Scenario(
                "NB", ((d, 100), (d, 100), (d, 200), (d, 200)), "100x2 + 200x2 Mbps (Table II)"
            ),
            "NC": Scenario(
                "NC", ((d, 200), (d, 200), (d, 300), (d, 300)), "200x2 + 300x2 Mbps (Table II)"
            ),
            "ND": Scenario(
                "ND", ((d, 50), (d, 100), (d, 200), (d, 300)), "50+100+200+300 Mbps (Table II)"
            ),
        }

    # ------------------------------------------------------------------ #
    # Table III: large-scale groups (16 providers)
    # ------------------------------------------------------------------ #
    @staticmethod
    def table3_groups() -> Dict[str, Scenario]:
        """Groups LA / LB / LC / LD of Table III (16 service providers)."""
        return {
            "LA": Scenario(
                "LA",
                _repeat((("nano", 300), ("nano", 200), ("nano", 100), ("nano", 50)), 4),
                "{(300,Nano),(200,Nano),(100,Nano),(50,Nano)} x4 (Table III)",
            ),
            "LB": Scenario(
                "LB",
                _repeat((("pi3", 300), ("nano", 200), ("tx2", 100), ("xavier", 50)), 4),
                "{(300,Pi3),(200,Nano),(100,TX2),(50,Xavier)} x4 (Table III)",
            ),
            "LC": Scenario(
                "LC",
                _repeat((("pi3", 200), ("nano", 200), ("tx2", 200), ("xavier", 200)), 4),
                "{(200,Pi3),(200,Nano),(200,TX2),(200,Xavier)} x4 (Table III)",
            ),
            "LD": Scenario(
                "LD",
                _repeat((("pi3", 50), ("nano", 100), ("tx2", 200), ("xavier", 300)), 4),
                "{(50,Pi3),(100,Nano),(200,TX2),(300,Xavier)} x4 (Table III)",
            ),
        }

    # ------------------------------------------------------------------ #
    # Fig. 5: the four environments of the alpha study
    # ------------------------------------------------------------------ #
    @staticmethod
    def homogeneous(device_type: str = "nano", bandwidth_mbps: float = 200.0, count: int = 4) -> Scenario:
        """Homogeneous providers at a single bandwidth (Fig. 5a)."""
        return Scenario(
            f"homog-{device_type}-{bandwidth_mbps:g}",
            tuple((device_type, float(bandwidth_mbps)) for _ in range(count)),
            f"{count} x {device_type} @ {bandwidth_mbps:g} Mbps",
        )

    # ------------------------------------------------------------------ #
    # Fig. 12/13: highly dynamic network on four Nanos
    # ------------------------------------------------------------------ #
    @staticmethod
    def dynamic_nano(count: int = 4, mid_mbps: float = 70.0) -> Scenario:
        """Four Nano providers on highly dynamic 40-100 Mbps links (Fig. 12)."""
        return Scenario(
            "dynamic-nano",
            tuple(("nano", float(mid_mbps)) for _ in range(count)),
            "Nano x4 under highly dynamic throughput (Section V-F)",
            trace_kind="dynamic",
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def all_named(cls) -> Dict[str, Scenario]:
        """Every scenario the benchmark suite may reference, keyed by name."""
        catalog: Dict[str, Scenario] = {}
        catalog.update(cls.table1_groups())
        catalog.update({f"{k}-nano": v for k, v in cls.table2_groups("nano").items()})
        catalog.update({f"{k}-xavier": v for k, v in cls.table2_groups("xavier").items()})
        catalog.update(cls.table3_groups())
        catalog["homog-nano"] = cls.homogeneous()
        catalog["dynamic-nano"] = cls.dynamic_nano()
        return catalog


__all__ = ["Scenario", "ScenarioCatalog", "DeviceSpec"]
