"""Scenario catalogue: the device/bandwidth groups of the paper, plus a
procedural generator for large-scale fleets.

Table I (heterogeneous device types), Table II (heterogeneous bandwidths),
Table III (large-scale, 16 providers), plus the homogeneous environment used
by the alpha study (Fig. 5a).  A :class:`Scenario` is a declarative
description; :meth:`Scenario.build` materialises the provider list and the
network model so harness code never hand-assembles clusters.

Beyond the paper's catalogue, :func:`generate_scenario` produces seeded
random fleets (16-64+ heterogeneous devices) for scaling experiments, and
:func:`resolve_scenario` turns either a catalogue name or a ``gen:`` spec
string (the CLI grammar, e.g. ``gen:n=32,seed=7,bw=50-300,types=mixed``)
into a :class:`Scenario`.  Named scenarios flow through a
:class:`ScenarioRegistry`, which refuses to let two different scenarios
silently share one name — repeated :meth:`Scenario.with_bandwidth` /
:meth:`Scenario.with_device_type` derivations can otherwise collide.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.devices.specs import DEVICE_CATALOG, DeviceInstance, make_cluster
from repro.network.topology import NetworkModel
from repro.utils.rng import SeedLike, as_rng

#: (device type, bandwidth in Mbps) pair.
DeviceSpec = Tuple[str, float]


@dataclass(frozen=True)
class Scenario:
    """A named deployment: providers with their nominal bandwidths."""

    name: str
    device_specs: Tuple[DeviceSpec, ...]
    description: str = ""
    trace_kind: str = "constant"  # "constant", "wifi" or "dynamic"

    @property
    def num_devices(self) -> int:
        return len(self.device_specs)

    @property
    def device_types(self) -> List[str]:
        return [t for t, _ in self.device_specs]

    @property
    def bandwidths_mbps(self) -> List[float]:
        return [b for _, b in self.device_specs]

    def with_bandwidth(self, mbps: float, suffix: Optional[str] = None) -> "Scenario":
        """Same devices, every link re-shaped to ``mbps`` (Fig. 7's 50/300 sweep)."""
        specs = tuple((t, float(mbps)) for t, _ in self.device_specs)
        name = f"{self.name}-{suffix or f'{mbps:g}Mbps'}"
        return Scenario(
            name=name,
            device_specs=specs,
            description=f"{self.description} @ {mbps:g} Mbps",
            trace_kind=self.trace_kind,
        )

    def with_device_type(self, device_type: str, suffix: Optional[str] = None) -> "Scenario":
        """Same bandwidths, every provider replaced by ``device_type`` (Fig. 8)."""
        specs = tuple((device_type, b) for _, b in self.device_specs)
        name = f"{self.name}-{suffix or device_type}"
        return Scenario(
            name=name,
            device_specs=specs,
            description=f"{self.description} on {device_type}",
            trace_kind=self.trace_kind,
        )

    def surviving(self, live: "Sequence[int]", suffix: str = "survivors") -> "Scenario":
        """Post-churn fleet: only the providers whose indices are in ``live``.

        Pairs with :meth:`repro.runtime.faults.FaultTrace.live_indices` so
        capacity planning and re-planning can run against the fleet a churn
        trace actually leaves, rather than the nominal one it started with.
        """
        keep = sorted({int(i) for i in live})
        if not keep:
            raise ValueError("a surviving scenario needs at least one live device")
        bad = [i for i in keep if not 0 <= i < len(self.device_specs)]
        if bad:
            raise ValueError(
                f"live indices out of range for {self.num_devices} devices: {bad}"
            )
        specs = tuple(self.device_specs[i] for i in keep)
        return Scenario(
            name=f"{self.name}-{suffix}",
            device_specs=specs,
            description=f"{self.description} ({len(keep)}/{self.num_devices} survivors)",
            trace_kind=self.trace_kind,
        )

    @classmethod
    def adhoc(
        cls,
        device_specs: Sequence[DeviceSpec],
        name: str = "adhoc",
        trace_kind: str = "constant",
    ) -> "Scenario":
        """Wrap an ad-hoc ``(type, bandwidth)`` list (e.g. a CLI ``--devices``
        cluster) so it can flow through scenario-based machinery such as
        :class:`~repro.runtime.shard.ShardedPlanEvaluator`."""
        specs = tuple((t, float(b)) for t, b in device_specs)
        return cls(
            name=name,
            device_specs=specs,
            description=f"ad-hoc cluster of {len(specs)} providers",
            trace_kind=trace_kind,
        )

    def build(
        self, seed: SeedLike = 0, trace_kind: Optional[str] = None
    ) -> Tuple[List[DeviceInstance], NetworkModel]:
        """Materialise the provider list and the network model."""
        devices = make_cluster(list(self.device_specs))
        kind = trace_kind or self.trace_kind
        if kind == "constant":
            network = NetworkModel.constant_from_devices(devices)
        else:
            network = NetworkModel.from_devices(devices, kind=kind, seed=seed)
        return devices, network


def _repeat(pattern: Sequence[DeviceSpec], times: int) -> Tuple[DeviceSpec, ...]:
    return tuple(pattern) * times


class ScenarioCatalog:
    """All named scenarios used in the paper's evaluation."""

    DEFAULT_BANDWIDTH = 200.0

    # ------------------------------------------------------------------ #
    # Table I: heterogeneous device types (bandwidth applied per experiment)
    # ------------------------------------------------------------------ #
    @staticmethod
    def table1_groups(bandwidth_mbps: float = 200.0) -> Dict[str, Scenario]:
        """Groups DA / DB / DC of Table I at a common bandwidth."""
        b = float(bandwidth_mbps)
        return {
            "DA": Scenario(
                "DA",
                (("tx2", b), ("tx2", b), ("nano", b), ("nano", b)),
                "TX2 x2 + Nano x2 (Table I)",
            ),
            "DB": Scenario(
                "DB",
                (("xavier", b), ("xavier", b), ("nano", b), ("nano", b)),
                "Xavier x2 + Nano x2 (Table I)",
            ),
            "DC": Scenario(
                "DC",
                (("xavier", b), ("tx2", b), ("nano", b), ("pi3", b)),
                "Xavier + TX2 + Nano + Pi3 (Table I)",
            ),
        }

    # ------------------------------------------------------------------ #
    # Table II: heterogeneous bandwidths (device type applied per experiment)
    # ------------------------------------------------------------------ #
    @staticmethod
    def table2_groups(device_type: str = "nano") -> Dict[str, Scenario]:
        """Groups NA / NB / NC / ND of Table II for one device type."""
        d = device_type
        return {
            "NA": Scenario(
                "NA", ((d, 50), (d, 50), (d, 200), (d, 200)), "50x2 + 200x2 Mbps (Table II)"
            ),
            "NB": Scenario(
                "NB", ((d, 100), (d, 100), (d, 200), (d, 200)), "100x2 + 200x2 Mbps (Table II)"
            ),
            "NC": Scenario(
                "NC", ((d, 200), (d, 200), (d, 300), (d, 300)), "200x2 + 300x2 Mbps (Table II)"
            ),
            "ND": Scenario(
                "ND", ((d, 50), (d, 100), (d, 200), (d, 300)), "50+100+200+300 Mbps (Table II)"
            ),
        }

    # ------------------------------------------------------------------ #
    # Table III: large-scale groups (16 providers)
    # ------------------------------------------------------------------ #
    @staticmethod
    def table3_groups() -> Dict[str, Scenario]:
        """Groups LA / LB / LC / LD of Table III (16 service providers)."""
        return {
            "LA": Scenario(
                "LA",
                _repeat((("nano", 300), ("nano", 200), ("nano", 100), ("nano", 50)), 4),
                "{(300,Nano),(200,Nano),(100,Nano),(50,Nano)} x4 (Table III)",
            ),
            "LB": Scenario(
                "LB",
                _repeat((("pi3", 300), ("nano", 200), ("tx2", 100), ("xavier", 50)), 4),
                "{(300,Pi3),(200,Nano),(100,TX2),(50,Xavier)} x4 (Table III)",
            ),
            "LC": Scenario(
                "LC",
                _repeat((("pi3", 200), ("nano", 200), ("tx2", 200), ("xavier", 200)), 4),
                "{(200,Pi3),(200,Nano),(200,TX2),(200,Xavier)} x4 (Table III)",
            ),
            "LD": Scenario(
                "LD",
                _repeat((("pi3", 50), ("nano", 100), ("tx2", 200), ("xavier", 300)), 4),
                "{(50,Pi3),(100,Nano),(200,TX2),(300,Xavier)} x4 (Table III)",
            ),
        }

    # ------------------------------------------------------------------ #
    # Fig. 5: the four environments of the alpha study
    # ------------------------------------------------------------------ #
    @staticmethod
    def homogeneous(device_type: str = "nano", bandwidth_mbps: float = 200.0, count: int = 4) -> Scenario:
        """Homogeneous providers at a single bandwidth (Fig. 5a)."""
        return Scenario(
            f"homog-{device_type}-{bandwidth_mbps:g}",
            tuple((device_type, float(bandwidth_mbps)) for _ in range(count)),
            f"{count} x {device_type} @ {bandwidth_mbps:g} Mbps",
        )

    # ------------------------------------------------------------------ #
    # Fig. 12/13: highly dynamic network on four Nanos
    # ------------------------------------------------------------------ #
    @staticmethod
    def dynamic_nano(count: int = 4, mid_mbps: float = 70.0) -> Scenario:
        """Four Nano providers on highly dynamic 40-100 Mbps links (Fig. 12)."""
        return Scenario(
            "dynamic-nano",
            tuple(("nano", float(mid_mbps)) for _ in range(count)),
            "Nano x4 under highly dynamic throughput (Section V-F)",
            trace_kind="dynamic",
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def all_named(cls) -> Dict[str, Scenario]:
        """Every scenario the benchmark suite may reference, keyed by name.

        Built through a :class:`ScenarioRegistry`, so a future catalogue
        change that makes two different scenarios share a name fails loudly
        here instead of silently shadowing one of them.
        """
        registry = ScenarioRegistry()
        for scenario in cls.table1_groups().values():
            registry.register(scenario)
        for key, scenario in cls.table2_groups("nano").items():
            registry.register(scenario, name=f"{key}-nano")
        for key, scenario in cls.table2_groups("xavier").items():
            registry.register(scenario, name=f"{key}-xavier")
        for scenario in cls.table3_groups().values():
            registry.register(scenario)
        registry.register(cls.homogeneous(), name="homog-nano")
        registry.register(cls.dynamic_nano())
        return registry.as_dict()


class ScenarioRegistry:
    """Name -> :class:`Scenario` registry that refuses silent collisions.

    Repeated :meth:`Scenario.with_bandwidth` / :meth:`Scenario.with_device_type`
    derivations (or two :meth:`ScenarioCatalog.homogeneous` calls with
    different ``count``) can produce *different* scenarios under the *same*
    name; a plain dict would silently keep whichever was inserted last.  The
    registry makes the collision explicit: re-registering an equal scenario is
    an idempotent no-op, while a different scenario under a taken name either
    raises ``ValueError`` or — with ``uniquify=True`` — is renamed with the
    first free ``-2``/``-3``/... suffix.
    """

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def register(
        self,
        scenario: Scenario,
        name: Optional[str] = None,
        uniquify: bool = False,
    ) -> Scenario:
        """Register ``scenario`` (optionally under ``name``); returns the
        scenario as registered, which may carry a uniquified name."""
        if name is not None and name != scenario.name:
            scenario = replace(scenario, name=name)
        existing = self._scenarios.get(scenario.name)
        if existing is not None:
            if existing == scenario:
                return existing
            if not uniquify:
                raise ValueError(
                    f"scenario name {scenario.name!r} is already registered for a "
                    f"different scenario ({existing.num_devices} devices, "
                    f"{existing.description!r}); pass uniquify=True to rename, or "
                    "derive with an explicit suffix"
                )
            base = scenario.name
            counter = 2
            while True:
                candidate = f"{base}-{counter}"
                taken = self._scenarios.get(candidate)
                if taken is None or taken == replace(scenario, name=candidate):
                    scenario = replace(scenario, name=candidate)
                    break
                counter += 1
            if scenario.name in self._scenarios:
                return self._scenarios[scenario.name]
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; registered: {sorted(self._scenarios)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios

    def __len__(self) -> int:
        return len(self._scenarios)

    def __iter__(self) -> Iterator[str]:
        return iter(self._scenarios)

    def as_dict(self) -> Dict[str, Scenario]:
        """Snapshot copy of the registered scenarios."""
        return dict(self._scenarios)


# ---------------------------------------------------------------------- #
# procedural large-scale scenario generation
# ---------------------------------------------------------------------- #

#: Named device-type pools for the generator's heterogeneity knob.
TYPE_POOLS: Dict[str, Tuple[str, ...]] = {
    "mixed": ("pi3", "nano", "tx2", "xavier"),
    "gpu": ("nano", "tx2", "xavier"),
    "cpu": ("pi3",),
}

#: Prefix of generator spec strings accepted by :func:`resolve_scenario`.
GENERATOR_PREFIX = "gen:"


def _resolve_type_pool(heterogeneity: Union[str, Sequence[str]]) -> Tuple[str, ...]:
    """Turn the heterogeneity knob into a concrete tuple of device types."""
    if isinstance(heterogeneity, str):
        if heterogeneity in TYPE_POOLS:
            return TYPE_POOLS[heterogeneity]
        names = tuple(part.strip() for part in heterogeneity.split("+") if part.strip())
    else:
        names = tuple(heterogeneity)
    if not names:
        raise ValueError("heterogeneity resolved to an empty device-type pool")
    for name in names:
        if name.lower() not in DEVICE_CATALOG:
            raise ValueError(
                f"unknown device type {name!r} in heterogeneity spec; pools: "
                f"{sorted(TYPE_POOLS)}, types: {sorted(DEVICE_CATALOG)}"
            )
    return tuple(name.lower() for name in names)


def generate_scenario(
    num_devices: int = 16,
    seed: int = 0,
    bandwidth_mbps: Union[float, Tuple[float, float]] = (50.0, 300.0),
    heterogeneity: Union[str, Sequence[str]] = "mixed",
    trace_kind: str = "constant",
) -> Scenario:
    """Generate a seeded random fleet of heterogeneous providers.

    Parameters
    ----------
    num_devices:
        Fleet size; the large-scale experiments use 16-64.
    seed:
        Seed of the fleet-composition RNG.  The same knob values always
        produce the identical scenario (name included), which is what lets a
        sharded evaluator's worker processes rebuild the fleet from the spec.
    bandwidth_mbps:
        Either a single rate applied to every link or a ``(low, high)`` range
        sampled per device (rounded to whole Mbps, then clamped to the range
        so rounding can never escape it).
    heterogeneity:
        A pool name from :data:`TYPE_POOLS` (``"mixed"``, ``"gpu"``,
        ``"cpu"``), a single device type, a ``"+"``-joined list
        (``"nano+xavier"``) or an explicit sequence of type names; device
        types are drawn uniformly from the pool.
    trace_kind:
        Trace family every link uses when the scenario is built
        (``"constant"``, ``"wifi"`` or ``"dynamic"``).
    """
    if num_devices < 1:
        raise ValueError(f"num_devices must be >= 1, got {num_devices}")
    pool = _resolve_type_pool(heterogeneity)
    if isinstance(bandwidth_mbps, (int, float)):
        low = high = float(bandwidth_mbps)
    else:
        low, high = (float(bandwidth_mbps[0]), float(bandwidth_mbps[1]))
        if low > high:
            raise ValueError(f"bandwidth range is inverted: {low} > {high}")
    if low <= 0:
        raise ValueError(f"bandwidth must be positive, got {low}")
    rng = as_rng(int(seed))
    types = [pool[int(i)] for i in rng.integers(0, len(pool), size=num_devices)]
    if low == high:
        rates = [low] * num_devices
    else:
        rates = [
            float(min(high, max(low, round(r))))
            for r in rng.uniform(low, high, size=num_devices)
        ]
    specs = tuple(zip(types, rates))
    pool_label = heterogeneity if isinstance(heterogeneity, str) else "+".join(pool)
    bw_label = f"{low:g}" if low == high else f"{low:g}-{high:g}"
    return Scenario(
        name=f"gen-{num_devices}d-{pool_label}-bw{bw_label}-{trace_kind}-s{int(seed)}",
        device_specs=specs,
        description=(
            f"generated fleet: {num_devices} devices from pool {pool_label!r} "
            f"at {bw_label} Mbps ({trace_kind} traces, seed {int(seed)})"
        ),
        trace_kind=trace_kind,
    )


def parse_generator_spec(spec: str) -> Scenario:
    """Parse the CLI generator grammar into a :class:`Scenario`.

    Grammar: ``gen:[key=value[,key=value...]]`` with keys

    ``n``      fleet size (default 16)
    ``seed``   composition seed (default 0)
    ``bw``     bandwidth, ``200`` or a ``50-300`` range (default ``50-300``)
    ``types``  heterogeneity pool / type / ``+``-list (default ``mixed``)
    ``trace``  trace kind (default ``constant``)

    Example: ``gen:n=32,seed=7,bw=50-300,types=mixed,trace=constant``.
    """
    if not spec.startswith(GENERATOR_PREFIX):
        raise ValueError(f"generator spec must start with {GENERATOR_PREFIX!r}, got {spec!r}")
    body = spec[len(GENERATOR_PREFIX):]
    options: Dict[str, str] = {}
    for item in filter(None, (part.strip() for part in body.split(","))):
        if "=" not in item:
            raise ValueError(f"malformed generator option {item!r}; expected key=value")
        key, value = item.split("=", 1)
        options[key.strip()] = value.strip()
    known = {"n", "seed", "bw", "types", "trace"}
    unknown = set(options) - known
    if unknown:
        raise ValueError(f"unknown generator option(s) {sorted(unknown)}; known: {sorted(known)}")
    bw = options.get("bw", "50-300")
    if "-" in bw:
        lo, _, hi = bw.partition("-")
        if not lo or not hi:
            raise ValueError(f"malformed bandwidth {bw!r}; expected '200' or '50-300'")
        bandwidth: Union[float, Tuple[float, float]] = (float(lo), float(hi))
    else:
        bandwidth = float(bw)
    return generate_scenario(
        num_devices=int(options.get("n", 16)),
        seed=int(options.get("seed", 0)),
        bandwidth_mbps=bandwidth,
        heterogeneity=options.get("types", "mixed"),
        trace_kind=options.get("trace", "constant"),
    )


def override_generator_spec(spec: str, **overrides) -> str:
    """Rebuild a ``gen:`` spec string with some options replaced.

    The capacity planner and autoscaler probe *fleet sizes*: each probe
    re-derives the candidate scenario from the operator's spec with ``n``
    overridden (``override_generator_spec("gen:seed=7,bw=100", n=12)`` →
    ``"gen:n=12,seed=7,bw=100"``), keeping every other knob — seed, types,
    bandwidth, trace — exactly as given, so probes differ only in size.
    """
    if not spec.startswith(GENERATOR_PREFIX):
        raise ValueError(f"generator spec must start with {GENERATOR_PREFIX!r}, got {spec!r}")
    body = spec[len(GENERATOR_PREFIX):]
    options: Dict[str, str] = {}
    for item in filter(None, (part.strip() for part in body.split(","))):
        if "=" not in item:
            raise ValueError(f"malformed generator option {item!r}; expected key=value")
        key, value = item.split("=", 1)
        options[key.strip()] = value.strip()
    for key, value in overrides.items():
        options[str(key)] = str(value)
    canonical = ("n", "seed", "bw", "types", "trace")
    ordered = [k for k in canonical if k in options]
    # Unknown keys are kept so parse_generator_spec still rejects them.
    ordered += [k for k in options if k not in canonical]
    return GENERATOR_PREFIX + ",".join(f"{k}={options[k]}" for k in ordered)


def resolve_scenario(name: str) -> Scenario:
    """Resolve a scenario reference: a ``gen:`` spec or a catalogue name."""
    if name.startswith(GENERATOR_PREFIX):
        return parse_generator_spec(name)
    catalog = ScenarioCatalog.all_named()
    if name not in catalog:
        raise KeyError(
            f"unknown scenario {name!r}; choose one of {sorted(catalog)} or a "
            f"'{GENERATOR_PREFIX}...' generator spec"
        )
    return catalog[name]


__all__ = [
    "Scenario",
    "ScenarioCatalog",
    "ScenarioRegistry",
    "DeviceSpec",
    "TYPE_POOLS",
    "GENERATOR_PREFIX",
    "generate_scenario",
    "override_generator_spec",
    "parse_generator_spec",
    "resolve_scenario",
]
