"""Experiment harness reproducing the paper's evaluation section.

* :mod:`repro.experiments.scenarios` — the device/bandwidth groups of
  Tables I, II and III plus the four environments of Fig. 5.
* :mod:`repro.experiments.harness` — runs any method on any scenario and
  returns IPS / latency / breakdowns; owns the fast-vs-paper-scale knobs.
* :mod:`repro.experiments.figures` — one function per evaluation artefact
  (Fig. 4 through Fig. 15), each returning the rows/series the paper plots.
* :mod:`repro.experiments.reporting` — formatting helpers used by the
  benchmark harness to print paper-style tables.
"""

from repro.experiments.scenarios import Scenario, ScenarioCatalog
from repro.experiments.harness import ExperimentHarness, HarnessConfig, MethodResult
from repro.experiments import figures
from repro.experiments.reporting import format_ips_table, format_series

__all__ = [
    "Scenario",
    "ScenarioCatalog",
    "ExperimentHarness",
    "HarnessConfig",
    "MethodResult",
    "figures",
    "format_ips_table",
    "format_series",
]
