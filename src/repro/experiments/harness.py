"""Experiment harness: run any method on any scenario and report IPS.

The harness owns the knobs that trade fidelity for runtime (OSDS episode
count, LC-PSS random-split count, profile granularity, streamed image count)
so that the same figure-generation code can run in a "fast" configuration on
a laptop and in the paper-scale configuration when time allows.  Plans are
cached per (method, scenario, model) within a harness instance, because
several figures share cells (e.g. Fig. 7's DB @ 50 Mbps column reappears in
Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.baselines import BASELINE_REGISTRY
from repro.core.distredge import DistrEdge, DistrEdgeConfig
from repro.core.osds import OSDSConfig
from repro.devices.profiler import LatencyProfiler
from repro.devices.profiles import TabularProfile
from repro.devices.specs import DeviceInstance
from repro.experiments.scenarios import (
    GENERATOR_PREFIX,
    Scenario,
    override_generator_spec,
    resolve_scenario,
)
from repro.network.topology import NetworkModel
from repro.nn import model_zoo
from repro.nn.graph import ModelSpec
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import EvaluationResult
from repro.runtime.faults import (
    ChurnSpec,
    DegradationPolicy,
    FaultTrace,
    RetryPolicy,
)
from repro.runtime.oracles import profiles_by_device
from repro.runtime.plan import DistributionPlan
from repro.runtime.shard import ShardedPlanEvaluator
from repro.runtime.streaming import StreamingSimulator
from repro.serving.dispatch import ClusterPolicy
from repro.serving.simulator import ServingReport, ServingSimulator
from repro.serving.tenants import SLO, TenantSpec
from repro.serving.traffic import ArrivalProcess, TraceArrivals, resolve_traffic
from repro.utils.cache import LRUCache

#: Canonical method order used in the paper's bar charts.
ALL_METHODS: Tuple[str, ...] = (
    "coedge",
    "modnn",
    "mednn",
    "deepthings",
    "deeperthings",
    "aofl",
    "distredge",
    "offload",
)


@dataclass
class HarnessConfig:
    """Runtime/fidelity knobs of the experiment harness."""

    #: OSDS training episodes (paper: 4000; fast default keeps benches quick).
    osds_episodes: int = 150
    #: |Rr_s| for LC-PSS (paper: 100).
    num_random_splits: int = 30
    #: LC-PSS trade-off coefficient (paper: 0.75).
    alpha: float = 0.75
    #: Use per-device-type latency profiles for planning (True) or let the
    #: planners query the ground-truth latency model directly (False).
    use_profiles: bool = False
    #: Measured heights per layer when profiling (None = granularity 1).
    profile_heights_per_layer: Optional[int] = 16
    #: Number of streamed images for IPS measurement; 0 evaluates a single
    #: inference (the two coincide under the paper's one-in-flight protocol
    #: on a stationary network).
    num_images: int = 0
    #: Seed for every stochastic component.
    seed: int = 0
    #: Input image encoding (bytes per input element).
    input_bytes_per_element: float = 0.4
    #: Worker processes for batch plan evaluation; 0/1 keeps evaluation
    #: in-process, >= 2 routes scenario evaluators through a persistent
    #: :class:`~repro.runtime.shard.ShardedPlanEvaluator` pool.
    workers: int = 1
    #: OSDS episodes rolled out in lockstep per vectorised round.  Pure
    #: execution width — results are bit-identical for any value, so this
    #: trades nothing but memory for speed.  Rounds never cross a
    #: policy-refresh boundary: widths beyond ``osds_policy_refresh`` need
    #: that (semantic) knob raised too.
    osds_episode_batch: int = 8
    #: Episodes between OSDS acting-policy snapshot refreshes.  Semantic:
    #: changing it changes which policy explores (and hence the results).
    osds_policy_refresh: int = 8

    def osds_config(self, num_devices: int) -> OSDSConfig:
        """OSDS configuration; sigma^2 is raised for large clusters (paper)."""
        sigma_squared = 1.0 if num_devices > 8 else 0.1
        return OSDSConfig(
            max_episodes=self.osds_episodes,
            sigma_squared=sigma_squared,
            seed=self.seed,
            episode_batch=self.osds_episode_batch,
            policy_refresh=self.osds_policy_refresh,
        )

    def distredge_config(self, num_devices: int) -> DistrEdgeConfig:
        return DistrEdgeConfig(
            alpha=self.alpha,
            num_random_splits=self.num_random_splits,
            osds=self.osds_config(num_devices),
            seed=self.seed,
            input_bytes_per_element=self.input_bytes_per_element,
        )


@dataclass
class MethodResult:
    """IPS and latency of one method on one scenario."""

    method: str
    scenario: str
    model: str
    ips: float
    latency_ms: float
    max_compute_ms: float
    max_transmission_ms: float
    plan: DistributionPlan
    evaluation: EvaluationResult

    def as_row(self) -> Dict[str, float]:
        return {
            "method": self.method,
            "scenario": self.scenario,
            "model": self.model,
            "ips": self.ips,
            "latency_ms": self.latency_ms,
        }


class ExperimentHarness:
    """Runs distribution methods on scenarios and evaluates the outcome."""

    #: Most sharded-evaluator pools kept alive at once.  A figure sweep with
    #: ``workers=N`` visits many scenarios; without a bound every visited
    #: scenario would pin N idle worker processes until :meth:`close`.  The
    #: least-recently-used pool is closed when the bound is exceeded.
    MAX_SHARDED_POOLS = 4

    def __init__(self, config: Optional[HarnessConfig] = None) -> None:
        self.config = config or HarnessConfig()
        self._models: Dict[str, ModelSpec] = {}
        self._profile_cache: Dict[Tuple[str, str], TabularProfile] = {}
        # Result cache keyed on the full (frozen, hashable) Scenario rather
        # than its name, for the same reason as the pool cache below: two
        # different scenarios may legitimately share a name.
        self._result_cache: Dict[Tuple[str, Scenario, str], MethodResult] = {}
        # Keyed on the full (frozen, hashable) Scenario, not its name: two
        # different scenarios may share a name (the collision ScenarioRegistry
        # guards against), and a pool built for one must never serve the other.
        self._sharded: Dict[Scenario, ShardedPlanEvaluator] = {}
        # Plans cached per (method, scenario, model) so serving load sweeps
        # (several serve_scenario calls on one fleet) plan each tenant once.
        self._plan_cache: Dict[Tuple[str, Scenario, str], DistributionPlan] = {}

    def close(self) -> None:
        """Shut down any sharded-evaluation worker pools the harness opened."""
        for evaluator in self._sharded.values():
            evaluator.close()
        self._sharded.clear()

    def __enter__(self) -> "ExperimentHarness":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    def model(self, name: str) -> ModelSpec:
        if name not in self._models:
            self._models[name] = model_zoo.get(name)
        return self._models[name]

    def _profiles_for(
        self, model: ModelSpec, devices: Sequence[DeviceInstance]
    ) -> Optional[List[TabularProfile]]:
        if not self.config.use_profiles:
            return None
        per_type: Dict[str, TabularProfile] = {}
        for device in devices:
            key = (model.name, device.type_name)
            if key not in self._profile_cache:
                profiler = LatencyProfiler(device.dtype, seed=self.config.seed)
                points = profiler.profile_model(
                    model, heights_per_layer=self.config.profile_heights_per_layer
                )
                self._profile_cache[key] = TabularProfile.from_points(points)
            per_type[device.type_name] = self._profile_cache[key]
        return profiles_by_device(devices, per_type)

    def evaluator_for(
        self,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        scenario: Optional[Scenario] = None,
    ) -> Union[BatchPlanEvaluator, ShardedPlanEvaluator]:
        """Ground-truth evaluator ("real execution") used for reported IPS.

        Routed through the batch path: figure cells that re-evaluate a plan
        another figure already measured (e.g. Fig. 7's DB @ 50 Mbps column in
        Fig. 15) become cache hits, and streamed images on stationary
        networks are evaluated once instead of per image.  With
        ``config.workers >= 2`` and a scenario to rebuild from, evaluation is
        sharded across a persistent worker pool (one pool per scenario,
        reused across calls; see :meth:`close`).

        On the sharded path the evaluator's world is rebuilt from
        ``(scenario, config.seed, scenario.trace_kind)`` — the ``devices`` /
        ``network`` arguments are not forwarded, so pass objects obtained
        from ``scenario.build(seed=config.seed)`` (as :meth:`run` does).  A
        devices/scenario fleet mismatch raises; a same-fleet different-seed
        trace mismatch cannot be detected from the arguments and is on the
        caller.
        """
        if self.config.workers >= 2 and scenario is not None:
            held = [(d.type_name, d.bandwidth_mbps) for d in devices]
            if held != [(t, b) for t, b in scenario.device_specs]:
                raise ValueError(
                    f"devices do not match scenario {scenario.name!r}: the sharded "
                    "evaluator is rebuilt from the scenario, so pass devices from "
                    "scenario.build(seed=config.seed)"
                )
            evaluator = self._sharded.pop(scenario, None)
            if evaluator is None:
                evaluator = ShardedPlanEvaluator(
                    scenario,
                    num_workers=self.config.workers,
                    seed=self.config.seed,
                    input_bytes_per_element=self.config.input_bytes_per_element,
                )
            # Re-insert at the end (most recently used) and evict the oldest
            # pool beyond the bound.
            self._sharded[scenario] = evaluator
            while len(self._sharded) > self.MAX_SHARDED_POOLS:
                oldest = next(iter(self._sharded))
                self._sharded.pop(oldest).close()
            return evaluator
        return BatchPlanEvaluator(
            devices, network, input_bytes_per_element=self.config.input_bytes_per_element
        )

    # ------------------------------------------------------------------ #
    def plan_for(
        self,
        method: str,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
    ) -> DistributionPlan:
        """Run one method's planner and return its distribution plan."""
        profiles = self._profiles_for(model, devices)
        if method == "distredge":
            planner = DistrEdge(self.config.distredge_config(len(devices)))
            return planner.plan(model, devices, network, profiles)
        if method in BASELINE_REGISTRY:
            return BASELINE_REGISTRY[method]().plan(model, devices, network, profiles)
        raise KeyError(
            f"unknown method {method!r}; known: distredge, {', '.join(BASELINE_REGISTRY)}"
        )

    def run(
        self,
        method: str,
        scenario: Scenario,
        model_name: str = "vgg16",
        use_cache: bool = True,
    ) -> MethodResult:
        """Plan + evaluate one method on one scenario."""
        cache_key = (method, scenario, model_name)
        if use_cache and cache_key in self._result_cache:
            return self._result_cache[cache_key]
        model = self.model(model_name)
        devices, network = scenario.build(seed=self.config.seed)
        plan = self.plan_for(method, model, devices, network)
        evaluator = self.evaluator_for(devices, network, scenario)
        if self.config.num_images > 0:
            simulator = StreamingSimulator(evaluator)
            stream = simulator.run(plan, num_images=self.config.num_images)
            latency_ms = stream.mean_latency_ms
            ips = stream.ips
            evaluation = evaluator.evaluate(plan)
        else:
            evaluation = evaluator.evaluate(plan)
            latency_ms = evaluation.end_to_end_ms
            ips = evaluation.ips
        result = self._assemble_result(
            method, scenario, model_name, plan, evaluation, ips, latency_ms
        )
        if use_cache:
            self._result_cache[cache_key] = result
        return result

    @staticmethod
    def _assemble_result(
        method: str,
        scenario: Scenario,
        model_name: str,
        plan: DistributionPlan,
        evaluation: EvaluationResult,
        ips: float,
        latency_ms: float,
    ) -> MethodResult:
        return MethodResult(
            method=method,
            scenario=scenario.name,
            model=model_name,
            ips=float(ips),
            latency_ms=float(latency_ms),
            max_compute_ms=evaluation.max_compute_ms,
            max_transmission_ms=evaluation.max_transmission_ms,
            plan=plan,
            evaluation=evaluation,
        )

    def compare(
        self,
        scenario: Scenario,
        methods: Sequence[str] = ALL_METHODS,
        model_name: str = "vgg16",
    ) -> Dict[str, MethodResult]:
        """Run several methods on one scenario.

        With ``config.workers >= 2`` (and single-inference evaluation, i.e.
        ``num_images == 0``) the uncached methods' plans are evaluated as
        *one* batch through the scenario's sharded worker pool instead of
        plan by plan.  One compare is a small batch (one plan per method),
        so the evaluator fans out only as far as its per-worker minimum
        allows — the knob pays off across sweeps that reuse the warm pool
        and for large ``evaluate_plans`` batches on the evaluator itself.
        """
        if self.config.workers >= 2 and self.config.num_images == 0:
            return self._compare_sharded(scenario, methods, model_name)
        return {m: self.run(m, scenario, model_name) for m in methods}

    def _compare_sharded(
        self,
        scenario: Scenario,
        methods: Sequence[str],
        model_name: str,
    ) -> Dict[str, MethodResult]:
        model = self.model(model_name)
        devices, network = scenario.build(seed=self.config.seed)
        pending = [
            m for m in methods if (m, scenario, model_name) not in self._result_cache
        ]
        plans = {m: self.plan_for(m, model, devices, network) for m in pending}
        evaluator = self.evaluator_for(devices, network, scenario)
        evaluations = evaluator.evaluate_plans(list(plans.values()))
        for (method, plan), evaluation in zip(plans.items(), evaluations):
            self._result_cache[(method, scenario, model_name)] = self._assemble_result(
                method,
                scenario,
                model_name,
                plan,
                evaluation,
                evaluation.ips,
                evaluation.end_to_end_ms,
            )
        return {m: self._result_cache[(m, scenario, model_name)] for m in methods}

    # ------------------------------------------------------------------ #
    def serve_scenario(
        self,
        scenario: Scenario,
        methods: Sequence[str] = ("coedge", "offload"),
        model_name: str = "vgg16",
        traffic: Union[str, ArrivalProcess, Sequence[Union[str, ArrivalProcess]]] = (
            "traffic:poisson,rate=2"
        ),
        deadline_ms: Union[float, Sequence[float]] = 1000.0,
        queue_capacity: Optional[int] = None,
        duration_s: float = 30.0,
        mode: str = "batched",
        policy: Optional[ClusterPolicy] = None,
        weight: Union[float, Sequence[float]] = 1.0,
        engine: str = "object",
        slots: Union[int, Sequence[int]] = 1,
        schedule_memo: Optional[LRUCache] = None,
        faults: Optional[Union[str, FaultTrace, ChurnSpec]] = None,
        retry: Optional[RetryPolicy] = None,
        degradation: Optional[DegradationPolicy] = None,
    ) -> ServingReport:
        """Serve one tenant per method on a shared fleet and report SLOs.

        Each method's plan becomes a tenant driven by its arrival process
        (``traffic`` and ``deadline_ms`` broadcast a single value to every
        tenant, or supply one per method — note a single *spec* means a
        single *seed*, i.e. identical arrival times for every tenant).
        Evaluation routes through :meth:`evaluator_for`, so
        ``config.workers >= 2`` fans the epoch batches out to the scenario's
        persistent sharded worker pool.  ``policy`` switches on shared-fleet
        lane contention with the given cross-tenant dispatch discipline;
        ``engine="array"`` routes the run through the vectorised serving
        engine of :mod:`repro.serving.engine` (bit-identical results).
        Plans are cached per (method, scenario, model) within the harness,
        so load sweeps re-plan each tenant once, not once per point.
        ``slots`` sets within-tenant concurrency (broadcast like ``weight``)
        — pipelined requests are what let throughput scale with fleet size
        under contention; ``schedule_memo`` forwards an external contended-
        schedule memo so repeated runs (capacity probes) start warm.
        ``faults`` injects a churn trace (``churn:`` spec string,
        :class:`~repro.runtime.faults.ChurnSpec`, or resolved
        :class:`~repro.runtime.faults.FaultTrace`); ``retry`` and
        ``degradation`` set the recovery policies that ride along with it.
        """
        methods = list(methods)
        if isinstance(traffic, (str, ArrivalProcess)):
            traffics = [traffic] * len(methods)
        else:
            traffics = list(traffic)
        if isinstance(deadline_ms, (int, float)):
            deadlines = [float(deadline_ms)] * len(methods)
        else:
            deadlines = [float(d) for d in deadline_ms]
        if isinstance(weight, (int, float)):
            weights = [float(weight)] * len(methods)
        else:
            weights = [float(w) for w in weight]
        if isinstance(slots, int):
            slot_counts = [slots] * len(methods)
        else:
            slot_counts = [int(s) for s in slots]
        if (
            len(traffics) != len(methods)
            or len(deadlines) != len(methods)
            or len(weights) != len(methods)
            or len(slot_counts) != len(methods)
        ):
            raise ValueError(
                f"traffic/deadline_ms/weight/slots must broadcast to "
                f"{len(methods)} methods, got {len(traffics)}/{len(deadlines)}"
                f"/{len(weights)}/{len(slot_counts)}"
            )
        model = self.model(model_name)
        devices, network = scenario.build(seed=self.config.seed)
        evaluator = self.evaluator_for(devices, network, scenario)
        tenants = []
        for i, method in enumerate(methods):
            plan_key = (method, scenario, model_name)
            plan = self._plan_cache.get(plan_key)
            if plan is None:
                plan = self.plan_for(method, model, devices, network)
                self._plan_cache[plan_key] = plan
            name = method if methods.count(method) == 1 else f"{method}-{i}"
            tenants.append(
                TenantSpec(
                    name=name,
                    plan=plan,
                    traffic=resolve_traffic(traffics[i]),
                    slo=SLO(deadline_ms=deadlines[i]),
                    queue_capacity=queue_capacity,
                    weight=weights[i],
                    slots=slot_counts[i],
                )
            )
        return ServingSimulator(evaluator).run(
            tenants,
            duration_s=duration_s,
            mode=mode,
            policy=policy,
            engine=engine,
            schedule_memo=schedule_memo,
            faults=faults,
            retry=retry,
            degradation=degradation,
        )

    # ------------------------------------------------------------------ #
    def capacity_probe_runner(
        self,
        gen_spec: str,
        methods: Sequence[str] = ("coedge", "offload"),
        model_name: str = "vgg16",
        traffic: Union[str, ArrivalProcess, Sequence[Union[str, ArrivalProcess]]] = (
            "traffic:poisson,rate=2"
        ),
        deadline_ms: Union[float, Sequence[float]] = 1000.0,
        queue_capacity: Optional[int] = None,
        duration_s: float = 30.0,
        policy: Optional[ClusterPolicy] = None,
        weight: Union[float, Sequence[float]] = 1.0,
        engine: str = "object",
        slots: Union[int, Sequence[int]] = 1,
        share_schedule_memo: bool = True,
        faults: Optional[Union[str, ChurnSpec]] = None,
        retry: Optional[RetryPolicy] = None,
        degradation: Optional[DegradationPolicy] = None,
    ) -> Callable[[int], ServingReport]:
        """Build a ``probe(n)`` callable for :class:`~repro.serving.control.CapacityPlanner`.

        ``gen_spec`` must be a seeded ``gen:`` scenario spec; each probe
        rewrites its ``n=`` option (via
        :func:`~repro.experiments.scenarios.override_generator_spec`) and
        serves the same tenants/traffic on the resized fleet.  With
        ``share_schedule_memo`` a per-fleet-size schedule memo persists
        across probes, so re-probing a size the planner has already visited
        replays warm contention schedules instead of re-walking them — plan
        caches are shared too, via the harness-wide ``_plan_cache``.

        ``faults`` accepts a ``churn:`` spec string or :class:`ChurnSpec`
        (NOT a pre-resolved :class:`FaultTrace`): the trace is re-resolved
        against each probed fleet size, so the planner sizes the fleet for
        the *post-churn* capacity the probe actually observed.
        """
        if isinstance(faults, FaultTrace):
            raise TypeError(
                "capacity probes resize the fleet per probe; pass a churn: spec "
                "string or ChurnSpec so the trace re-resolves at each size, not "
                "a pre-resolved FaultTrace"
            )
        if not gen_spec.startswith(GENERATOR_PREFIX):
            raise ValueError(
                f"capacity planning needs a seeded {GENERATOR_PREFIX!r} scenario spec, "
                f"got {gen_spec!r}"
            )
        memos: Dict[int, LRUCache] = {}

        def probe(num_devices: int) -> ServingReport:
            scenario = resolve_scenario(
                override_generator_spec(gen_spec, n=num_devices)
            )
            memo: Optional[LRUCache] = None
            if share_schedule_memo and policy is not None:
                memo = memos.get(num_devices)
                if memo is None:
                    memo = LRUCache(policy.memo_size)
                    memos[num_devices] = memo
            return self.serve_scenario(
                scenario,
                methods=methods,
                model_name=model_name,
                traffic=traffic,
                deadline_ms=deadline_ms,
                queue_capacity=queue_capacity,
                duration_s=duration_s,
                mode="batched",
                policy=policy,
                weight=weight,
                engine=engine,
                slots=slots,
                schedule_memo=memo,
                faults=faults,
                retry=retry,
                degradation=degradation,
            )

        return probe

    def autoscale_window_runner(
        self,
        gen_spec: str,
        window_s: float,
        num_windows: int,
        methods: Sequence[str] = ("coedge", "offload"),
        model_name: str = "vgg16",
        traffic: Union[str, ArrivalProcess, Sequence[Union[str, ArrivalProcess]]] = (
            "traffic:poisson,rate=2"
        ),
        deadline_ms: Union[float, Sequence[float]] = 1000.0,
        queue_capacity: Optional[int] = None,
        policy: Optional[ClusterPolicy] = None,
        weight: Union[float, Sequence[float]] = 1.0,
        engine: str = "object",
        slots: Union[int, Sequence[int]] = 1,
        faults: Optional[Union[str, ChurnSpec]] = None,
        retry: Optional[RetryPolicy] = None,
        degradation: Optional[DegradationPolicy] = None,
    ) -> Callable[[int, int], ServingReport]:
        """Build a ``run_window(n, w)`` callable for :class:`~repro.serving.control.FleetAutoscaler`.

        The full-horizon arrival times (``num_windows * window_s`` seconds)
        are generated once per tenant up front, then each window ``w`` serves
        the slice ``[w * window_s, (w + 1) * window_s)`` — rebased to the
        window origin as a trace replay — on the fleet resized to ``n``
        devices.  Resizing between windows therefore never changes *which*
        requests arrive, only which fleet absorbs them.

        ``faults`` (a ``churn:`` spec string or :class:`ChurnSpec`, re-resolved
        per fleet size like :meth:`capacity_probe_runner`) injects the same
        window-relative churn trace into every window, so the autoscaler's
        decisions step from the *surviving* capacity each window reports
        (``report.faults.live_at_end``) rather than the nominal fleet size.
        """
        if isinstance(faults, FaultTrace):
            raise TypeError(
                "autoscaling resizes the fleet per window; pass a churn: spec "
                "string or ChurnSpec so the trace re-resolves at each size, not "
                "a pre-resolved FaultTrace"
            )
        if not gen_spec.startswith(GENERATOR_PREFIX):
            raise ValueError(
                f"autoscaling needs a seeded {GENERATOR_PREFIX!r} scenario spec, "
                f"got {gen_spec!r}"
            )
        if window_s <= 0 or num_windows <= 0:
            raise ValueError("window_s and num_windows must be positive")
        methods = list(methods)
        if isinstance(traffic, (str, ArrivalProcess)):
            traffics = [traffic] * len(methods)
        else:
            traffics = list(traffic)
        horizon_s = window_s * num_windows
        all_arrivals = [
            np.asarray(resolve_traffic(t).arrival_times(horizon_s, 0.0), dtype=float)
            for t in traffics
        ]

        def run_window(num_devices: int, window: int) -> ServingReport:
            if not 0 <= window < num_windows:
                raise ValueError(f"window must be in [0, {num_windows}), got {window}")
            scenario = resolve_scenario(
                override_generator_spec(gen_spec, n=num_devices)
            )
            t0 = window * window_s
            t1 = t0 + window_s
            window_traffics: List[ArrivalProcess] = []
            for times in all_arrivals:
                local = times[(times >= t0) & (times < t1)] - t0
                window_traffics.append(TraceArrivals(tuple(float(t) for t in local)))
            return self.serve_scenario(
                scenario,
                methods=methods,
                model_name=model_name,
                traffic=window_traffics,
                deadline_ms=deadline_ms,
                queue_capacity=queue_capacity,
                duration_s=window_s,
                mode="batched",
                policy=policy,
                weight=weight,
                engine=engine,
                slots=slots,
                faults=faults,
                retry=retry,
                degradation=degradation,
            )

        return run_window

    # ------------------------------------------------------------------ #
    @staticmethod
    def speedup_over_best_baseline(results: Dict[str, MethodResult]) -> float:
        """DistrEdge IPS divided by the best non-DistrEdge IPS."""
        if "distredge" not in results:
            raise KeyError("results must include a 'distredge' entry")
        baselines = [r.ips for name, r in results.items() if name != "distredge"]
        if not baselines:
            raise ValueError("no baseline results to compare against")
        return results["distredge"].ips / max(baselines)

    @staticmethod
    def ips_table(results: Dict[str, MethodResult]) -> Dict[str, float]:
        """Plain {method: IPS} mapping."""
        return {name: r.ips for name, r in results.items()}


__all__ = ["HarnessConfig", "ExperimentHarness", "MethodResult", "ALL_METHODS"]
