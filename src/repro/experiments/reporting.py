"""Formatting helpers for printing paper-style result tables."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def format_ips_table(
    results: Mapping[str, Mapping[str, float]],
    methods: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Format a {scenario: {method: IPS}} mapping as an aligned text table."""
    if not results:
        return "(no results)"
    if methods is None:
        methods = sorted({m for row in results.values() for m in row})
    header = ["scenario"] + list(methods)
    rows = []
    for scenario, row in results.items():
        rows.append([scenario] + [f"{row.get(m, float('nan')):.1f}" for m in methods])
    widths = [max(len(str(r[i])) for r in [header] + rows) for i in range(len(header))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(series: Mapping[str, Mapping], title: str = "") -> str:
    """Format nested {name: {x: value}} series as text."""
    lines = [title] if title else []
    for name, values in series.items():
        parts = []
        for key, value in values.items():
            if isinstance(value, float):
                parts.append(f"{key}={value:.2f}")
            else:
                parts.append(f"{key}={value}")
        lines.append(f"{name}: " + ", ".join(parts))
    return "\n".join(lines)


def speedup_summary(results: Mapping[str, Mapping[str, float]]) -> Dict[str, float]:
    """Per-scenario DistrEdge speedup over the best baseline."""
    out: Dict[str, float] = {}
    for scenario, row in results.items():
        if "distredge" not in row:
            continue
        baselines = [v for k, v in row.items() if k != "distredge"]
        if baselines:
            out[scenario] = row["distredge"] / max(baselines)
    return out


__all__ = ["format_ips_table", "format_series", "speedup_summary"]
