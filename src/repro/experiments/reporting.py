"""Formatting helpers for printing paper-style result tables."""

from __future__ import annotations

from typing import Dict, Mapping, Sequence


def _render_table(header: Sequence[str], rows: Sequence[Sequence[str]], title: str = "") -> str:
    """Render an aligned text table (shared by the IPS and serving tables)."""
    widths = [max(len(str(r[i])) for r in [header, *rows]) for i in range(len(header))]
    lines = [title] if title else []
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_ips_table(
    results: Mapping[str, Mapping[str, float]],
    methods: Sequence[str] | None = None,
    title: str = "",
) -> str:
    """Format a {scenario: {method: IPS}} mapping as an aligned text table."""
    if not results:
        return "(no results)"
    if methods is None:
        methods = sorted({m for row in results.values() for m in row})
    header = ["scenario"] + list(methods)
    rows = []
    for scenario, row in results.items():
        rows.append([scenario] + [f"{row.get(m, float('nan')):.1f}" for m in methods])
    return _render_table(header, rows, title)


def format_series(series: Mapping[str, Mapping], title: str = "") -> str:
    """Format nested {name: {x: value}} series as text."""
    lines = [title] if title else []
    for name, values in series.items():
        parts = []
        for key, value in values.items():
            if isinstance(value, float):
                parts.append(f"{key}={value:.2f}")
            else:
                parts.append(f"{key}={value}")
        lines.append(f"{name}: " + ", ".join(parts))
    return "\n".join(lines)


def format_serving_table(report, title: str = "") -> str:
    """Format a :class:`~repro.serving.simulator.ServingReport` as a table.

    Duck-typed on the report's tenant rows so this module stays free of
    package imports; one row per tenant plus an aggregate footer.
    """
    header = [
        "tenant", "arrivals", "done", "rejected", "denied", "rps",
        "p50_ms", "p95_ms", "p99_ms", "miss%", "replans",
    ]
    rows = []
    for t in report.tenants:
        rows.append([
            t.name,
            str(t.num_arrivals),
            str(t.num_completed),
            str(t.num_rejected),
            str(getattr(t, "num_denied", 0)),
            f"{t.throughput_rps(report.start_s):.2f}",
            f"{t.p50_response_ms:.1f}",
            f"{t.p95_response_ms:.1f}",
            f"{t.p99_response_ms:.1f}",
            f"{100.0 * t.deadline_miss_rate:.1f}",
            str(len(t.replan_times_s)),
        ])
    rows.append([
        "TOTAL",
        str(report.total_arrivals),
        str(report.total_completed),
        str(report.total_rejected),
        str(getattr(report, "total_denied", 0)),
        f"{report.throughput_rps:.2f}",
        f"{report.response_percentile_ms(50):.1f}",
        f"{report.response_percentile_ms(95):.1f}",
        f"{report.response_percentile_ms(99):.1f}",
        f"{100.0 * report.deadline_miss_rate:.1f}",
        str(sum(len(t.replan_times_s) for t in report.tenants)),
    ])
    return _render_table(header, rows, title)


def format_fleet_table(report, title: str = "") -> str:
    """Format a contended run's per-device lane breakdown as a table.

    Duck-typed on ``report.fleet``
    (:class:`~repro.runtime.contention.FleetLoadReport`); one row per
    provider with each lane's busy time, utilisation over the makespan and
    accumulated queueing delay, plus an aggregate footer carrying the
    admission-gate wait and the share of dispatches that found a non-idle
    fleet.
    """
    fleet = getattr(report, "fleet", None)
    if fleet is None:
        return "(no fleet breakdown; run with a ClusterPolicy)"
    header = [
        "device", "comp_busy_ms", "comp_util%", "send_busy_ms", "recv_busy_ms",
        "comp_wait_ms", "send_wait_ms", "recv_wait_ms",
    ]
    comp_util = fleet.utilization("compute")
    rows = []
    for j, device_id in enumerate(fleet.device_ids):
        rows.append([
            device_id,
            f"{fleet.compute_busy_ms[j]:.1f}",
            f"{100.0 * comp_util[j]:.1f}",
            f"{fleet.send_busy_ms[j]:.1f}",
            f"{fleet.recv_busy_ms[j]:.1f}",
            f"{fleet.compute_wait_ms[j]:.1f}",
            f"{fleet.send_wait_ms[j]:.1f}",
            f"{fleet.recv_wait_ms[j]:.1f}",
        ])
    table = _render_table(header, rows, title)
    footer = (
        f"requests: {fleet.requests}  contended: {fleet.contended_requests} "
        f"({100.0 * fleet.contended_share:.1f}%)  "
        f"gate wait: {fleet.gate_wait_ms:.1f} ms  "
        f"lane wait total: {fleet.total_wait_ms:.1f} ms"
    )
    return table + "\n" + footer


def format_fault_report(report, title: str = "") -> str:
    """Format a churning run's fault outcome as a table.

    Duck-typed on ``report.faults``
    (:class:`~repro.runtime.faults.FaultReport`); one row per tenant with
    its shed/abandoned/retried counts plus a fleet-level footer carrying
    the event tally, surviving capacity and retry latency overhead.
    """
    faults = getattr(report, "faults", None)
    if faults is None:
        return "(no fault report; run with a churn trace)"
    header = ["tenant", "shed", "abandoned", "retried", "lost_att", "retry_add_ms"]
    rows = []
    for t in report.tenants:
        rows.append([
            t.name,
            str(t.num_shed),
            str(t.num_abandoned),
            str(t.num_retried),
            str(t.num_lost_attempts),
            f"{t.retry_added_ms:.1f}",
        ])
    table = _render_table(header, rows, title)
    degraded = sum(hi - lo for lo, hi in faults.degraded_windows_s)
    footer = (
        f"events: {faults.num_crashes} crashes, {faults.num_leaves} leaves, "
        f"{faults.num_joins} joins  live at end: {faults.live_at_end}  "
        f"degraded: {degraded:.1f} s  "
        f"retry latency added: {faults.retry_latency_added_ms:.1f} ms"
    )
    return table + "\n" + footer


def format_capacity_plan(plan, title: str = "") -> str:
    """Format a :class:`~repro.serving.control.CapacityPlan` probe log.

    One row per probed fleet size (in probe order) plus a verdict footer;
    duck-typed so this module stays free of package imports.
    """
    header = ["probe", "devices", "completed", "denied", "rps", "eff_miss%", "feasible"]
    rows = []
    for i, probe in enumerate(plan.probes):
        rows.append([
            str(i),
            str(probe.num_devices),
            str(probe.completed),
            str(probe.denied),
            f"{probe.throughput_rps:.2f}",
            f"{100.0 * probe.miss_rate:.2f}",
            "yes" if probe.feasible else "no",
        ])
    table = _render_table(header, rows, title)
    if plan.min_feasible_devices is None:
        verdict = (
            f"no feasible fleet size in [{plan.config.min_devices}, "
            f"{plan.config.max_devices}] for target miss rate "
            f"{100.0 * plan.config.target_miss_rate:.2f}%"
        )
    else:
        verdict = (
            f"minimum fleet: {plan.min_feasible_devices} devices for target miss "
            f"rate {100.0 * plan.config.target_miss_rate:.2f}% "
            f"({plan.num_probe_runs} probes, budget {plan.config.max_probes}, "
            f"{plan.strategy})"
        )
    return table + "\n" + verdict


def format_autoscale_report(report, title: str = "") -> str:
    """Format a :class:`~repro.serving.control.AutoscaleReport` as a table.

    One row per window with fleet size, utilisation and the scaling action
    taken at the window boundary; duck-typed like the other formatters.
    """
    burn = getattr(report.config, "trigger", "utilization") == "burn_rate"
    header = [
        "window", "devices", "util%", "arrivals", "completed", "denied",
        "miss%",
    ]
    if burn:
        header += ["fast_burn", "slow_burn"]
    header += ["decision", "next"]
    rows = []
    for w in report.windows:
        row = [
            str(w.index),
            str(w.num_devices),
            f"{100.0 * w.utilization:.1f}",
            str(w.arrivals),
            str(w.completed),
            str(w.denied),
            f"{100.0 * w.miss_rate:.2f}",
        ]
        if burn:
            row += [
                f"{getattr(w, 'fast_burn', 0.0):.2f}",
                f"{getattr(w, 'slow_burn', 0.0):.2f}",
            ]
        row += [w.decision, str(w.next_devices)]
        rows.append(row)
    table = _render_table(header, rows, title)
    trajectory = report.device_trajectory
    footer = (
        f"windows: {len(report.windows)}  "
        f"devices: {min(trajectory) if trajectory else 0}"
        f"..{max(trajectory) if trajectory else 0}  "
        f"final: {report.final_devices}"
    )
    return table + "\n" + footer


def format_attribution_table(analysis, title: str = "") -> str:
    """Format an :class:`~repro.obs.analysis.AnalysisReport` per tenant.

    One row per tenant with its milliseconds by breakdown bucket (queueing,
    gate wait, per-role lane service, stalls, uncontended service) plus the
    dominant bucket; footer totals and the exactness verdict.  Duck-typed
    like the other formatters.
    """
    header = [
        "tenant", "reqs", "queue_ms", "gate_ms", "compute_ms", "send_ms",
        "recv_ms", "stall_ms", "service_ms", "wait_ms", "backoff_ms", "dominant",
    ]
    rows = []
    for t in analysis.tenants:
        rows.append([
            t.name,
            str(t.requests),
            f"{t.queue_ms:.1f}",
            f"{t.by_label['gate']:.1f}",
            f"{t.by_label['compute']:.1f}",
            f"{t.by_label['send']:.1f}",
            f"{t.by_label['recv']:.1f}",
            f"{t.by_label['stall']:.1f}",
            f"{t.by_label['service']:.1f}",
            f"{t.lane_wait_ms:.1f}",
            f"{t.retry_backoff_ms:.1f}",
            t.dominant,
        ])
    table = _render_table(header, rows, title)
    footer = (
        f"requests: {analysis.num_requests} "
        f"({analysis.contended_requests} contended, "
        f"{analysis.truncated_attempts} truncated attempts)  "
        f"latency: {analysis.total('latency_ms'):.1f} ms  "
        f"attribution: "
        f"{'exact (tilings close bit-for-bit)' if analysis.exact else 'INEXACT'}"
    )
    return table + "\n" + footer


def format_bottleneck_table(analysis, title: str = "", top: int | None = None) -> str:
    """Format the fleet bottleneck ranking: lanes by critical-path ms.

    ``critical_ms`` is time the lane spent on some request's final
    (committed) attempt; ``share`` its fraction of all lane-attributed
    critical-path time.  ``busy_ms``/``wait_ms``/``jobs`` are raw occupancy
    including lost (truncated) attempts.
    """
    lanes = analysis.lanes if top is None else analysis.lanes[: max(top, 0)]
    if not lanes:
        return "(no lane activity; run with a ClusterPolicy to see lanes)"
    header = [
        "rank", "lane", "device", "role", "critical_ms", "share%",
        "busy_ms", "wait_ms", "jobs",
    ]
    rows = []
    for rank, lane in enumerate(lanes, start=1):
        rows.append([
            str(rank),
            lane.lane,
            lane.device,
            lane.role,
            f"{lane.critical_ms:.1f}",
            f"{100.0 * lane.share:.1f}",
            f"{lane.busy_ms:.1f}",
            f"{lane.wait_ms:.1f}",
            str(lane.jobs),
        ])
    table = _render_table(header, rows, title)
    shown = len(lanes)
    footer = f"bottleneck: {analysis.bottleneck}"
    if shown < len(analysis.lanes):
        footer += f"  (showing top {shown} of {len(analysis.lanes)} lanes)"
    return table + "\n" + footer


#: Stacked-bar glyph per breakdown bucket (legend printed under the chart).
_BREAKDOWN_GLYPHS = (
    ("queue", "q"), ("gate", "g"), ("compute", "C"), ("send", "S"),
    ("recv", "R"), ("stall", "."), ("service", "s"),
)


def format_breakdown_chart(analysis, width: int = 48, title: str = "") -> str:
    """Render the per-tenant latency breakdown as stacked text bars.

    Each tenant's bar spans its total response milliseconds (queue wait
    plus latency) scaled to the widest tenant; one glyph per bucket,
    largest-remainder rounding so a bar's glyph count is deterministic.
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    tenants = [t for t in analysis.tenants if t.requests]
    if not tenants:
        return "(no completed requests to chart)"

    def buckets(t) -> list:
        values = [("queue", t.queue_ms)]
        values += [(label, t.by_label[label]) for label, _ in _BREAKDOWN_GLYPHS[1:]]
        return values

    glyphs = dict(_BREAKDOWN_GLYPHS)
    scale = max(t.queue_ms + t.latency_ms for t in tenants)
    name_w = max(len(t.name) for t in tenants)
    lines = [title] if title else []
    for t in tenants:
        total = t.queue_ms + t.latency_ms
        bar_cells = int(round(width * total / scale)) if scale > 0 else 0
        values = buckets(t)
        bar = ""
        if bar_cells > 0 and total > 0:
            # Largest-remainder apportionment of the bar's cells.
            quotas = [(label, bar_cells * value / total) for label, value in values]
            counts = {label: int(q) for label, q in quotas}
            leftover = bar_cells - sum(counts.values())
            by_remainder = sorted(
                quotas, key=lambda lq: (-(lq[1] - int(lq[1])), lq[0])
            )
            for label, _ in by_remainder[:leftover]:
                counts[label] += 1
            bar = "".join(glyphs[label] * counts[label] for label, _ in values)
        lines.append(f"{t.name.ljust(name_w)} |{bar.ljust(width)}| {total:.1f} ms")
    legend = "  ".join(f"{glyph}={label}" for label, glyph in _BREAKDOWN_GLYPHS)
    lines.append(f"legend: {legend}  (bars scaled to the widest tenant)")
    return "\n".join(lines)


def format_alert_timeline(timeline, title: str = "") -> str:
    """Format an :class:`~repro.obs.slo.AlertTimeline` as a table.

    One row per alert transition (chronological); footer with the rule
    set, still-firing alerts and the per-tenant budget summary.
    """
    header = ["t_s", "scope", "rule", "severity", "state", "fast_burn", "slow_burn"]
    rows = []
    for e in timeline.events:
        rows.append([
            f"{e.t_s:.2f}",
            e.scope,
            e.rule,
            e.severity,
            e.state,
            f"{e.fast_burn:.2f}",
            f"{e.slow_burn:.2f}",
        ])
    if rows:
        table = _render_table(header, rows, title)
    else:
        table = (title + "\n" if title else "") + "(no alerts fired)"
    rules = ", ".join(
        f"{r.name}({r.fast_window_s:g}s/{r.slow_window_s:g}s x{r.threshold:g}, "
        f"{r.severity})"
        for r in timeline.rules
    )
    still = timeline.firing_at_end
    footer = (
        f"rules: {rules}  tick: {timeline.tick_s:g}s  "
        f"horizon: [{timeline.start_s:g}, {timeline.end_s:g}] s  "
        f"transitions: {len(timeline.events)}  "
        f"firing at end: "
        f"{', '.join(f'{s}/{r}' for s, r in still) if still else 'none'}"
    )
    return table + "\n" + footer


def speedup_summary(results: Mapping[str, Mapping[str, float]]) -> Dict[str, float]:
    """Per-scenario DistrEdge speedup over the best baseline."""
    out: Dict[str, float] = {}
    for scenario, row in results.items():
        if "distredge" not in row:
            continue
        baselines = [v for k, v in row.items() if k != "distredge"]
        if baselines:
            out[scenario] = row["distredge"] / max(baselines)
    return out


__all__ = [
    "format_ips_table",
    "format_series",
    "format_serving_table",
    "format_fleet_table",
    "format_fault_report",
    "format_capacity_plan",
    "format_autoscale_report",
    "format_attribution_table",
    "format_bottleneck_table",
    "format_breakdown_chart",
    "format_alert_timeline",
    "speedup_summary",
]
