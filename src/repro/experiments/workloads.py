"""Synthetic plan workloads for benchmarks, parity tests and scaling studies.

The planner stack produces batches of candidate plans whose *partition
boundaries vary* (LC-PSS samples many partition schemes; OSDS explores
within each).  :func:`random_varied_plans` reproduces that shape: seeded
random plans over one model with randomised boundaries and split fractions,
including occasional zero-row (non-participating) devices.  The shard-scaling
benchmark and the sharded-evaluator determinism tests both draw their
workloads from here, so the bench gate and the bit-identity suite always
exercise the same plan distribution.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.devices.specs import DeviceInstance
from repro.nn.graph import ModelSpec
from repro.nn.splitting import SplitDecision
from repro.runtime.plan import DistributionPlan
from repro.utils.rng import SeedLike, as_rng


def random_varied_plans(
    model: ModelSpec,
    devices: Sequence[DeviceInstance],
    count: int,
    seed: SeedLike = 0,
    min_cut_layer: int = 1,
    max_inner_cuts: int = 3,
    drop_rate: float = 0.25,
) -> List[DistributionPlan]:
    """Seeded random plans with varied partition boundaries.

    Each plan draws 1..``max_inner_cuts`` inner partition boundaries from
    ``[min_cut_layer, num_spatial_layers)`` and random per-volume split
    fractions; with probability ``drop_rate`` one device's fraction is zeroed
    for a volume (the legitimate "provider receives no work" case).
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    rng = as_rng(seed)
    ns = model.num_spatial_layers
    plans: List[DistributionPlan] = []
    for _ in range(count):
        num_cuts = int(rng.integers(1, max_inner_cuts + 1))
        inner = sorted({int(x) for x in rng.integers(min_cut_layer, ns, size=num_cuts)})
        boundaries = [0, *inner, ns]
        volumes = model.partition(boundaries)
        decisions = []
        for volume in volumes:
            fractions = rng.random(len(devices))
            if rng.random() < drop_rate:
                fractions[int(rng.integers(len(devices)))] = 0.0
            decisions.append(SplitDecision.from_fractions(fractions, volume.output_height))
        plans.append(DistributionPlan(model, devices, boundaries, decisions))
    return plans


__all__ = ["random_varied_plans"]
