"""Regeneration of every evaluation artefact of the paper (Figs. 4-15).

Each ``figureN`` function reproduces the data behind the corresponding paper
figure and returns a plain dictionary of rows/series (no plotting — the
benchmark harness prints the values, and EXPERIMENTS.md records them against
the paper's numbers).  All heavy computation is delegated to an
:class:`~repro.experiments.harness.ExperimentHarness`, whose configuration
controls the fidelity/runtime trade-off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Sequence, Union

import numpy as np

from repro.baselines import AOFLPlanner, CoEdgePlanner
from repro.core.distredge import DistrEdge
from repro.core.online import OnlineDistrEdgeController, PeriodicReplanController
from repro.devices.latency_model import ComputeLatencyModel
from repro.devices.specs import get_device_type
from repro.experiments.harness import ALL_METHODS, ExperimentHarness
from repro.experiments.scenarios import Scenario, ScenarioCatalog
from repro.network.bandwidth import DynamicTrace, WiFiTrace
from repro.nn import model_zoo
from repro.runtime.streaming import StreamingSimulator
from repro.serving.traffic import PoissonArrivals

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.faults import DegradationPolicy, RetryPolicy
    from repro.serving.dispatch import ClusterPolicy

#: The seven extra models of Figs. 10-11 (VGG-16 is covered by Figs. 5-9).
EXTRA_MODELS: Sequence[str] = (
    "resnet50",
    "inception_v3",
    "yolov2",
    "ssd_resnet50",
    "ssd_vgg16",
    "openpose",
    "voxelnet",
)


# --------------------------------------------------------------------------- #
# Fig. 4 and Fig. 12: bandwidth traces
# --------------------------------------------------------------------------- #
def figure4(duration_s: float = 3600.0, seed: int = 0) -> Dict[str, dict]:
    """Sampled WiFi throughput traces at 50/100/200/300 Mbps (Fig. 4)."""
    out: Dict[str, dict] = {}
    for mbps in (50, 100, 200, 300):
        trace = WiFiTrace(mbps=mbps, duration_seconds=duration_s, seed=seed + mbps)
        samples = trace.sample(0, duration_s, 60.0)
        out[f"{mbps}Mbps"] = {
            "nominal_mbps": mbps,
            "mean_mbps": float(samples[:, 1].mean()),
            "std_mbps": float(samples[:, 1].std()),
            "min_mbps": float(samples[:, 1].min()),
            "max_mbps": float(samples[:, 1].max()),
        }
    return out


def figure12(duration_s: float = 3600.0, seed: int = 0) -> Dict[str, dict]:
    """Highly dynamic per-device throughput traces (Fig. 12)."""
    out: Dict[str, dict] = {}
    for device in range(4):
        trace = DynamicTrace(duration_seconds=duration_s, seed=seed + device)
        samples = trace.sample(0, duration_s, 60.0)
        out[f"device{device + 1}"] = {
            "mean_mbps": float(samples[:, 1].mean()),
            "std_mbps": float(samples[:, 1].std()),
            "min_mbps": float(samples[:, 1].min()),
            "max_mbps": float(samples[:, 1].max()),
        }
    return out


# --------------------------------------------------------------------------- #
# Fig. 5: effect of alpha in LC-PSS
# --------------------------------------------------------------------------- #
def figure5(
    harness: ExperimentHarness,
    alphas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    environments: Optional[Dict[str, Scenario]] = None,
    model_name: str = "vgg16",
) -> Dict[str, Dict[float, float]]:
    """IPS of DistrEdge for different alpha values in four environments.

    Environments default to the paper's four: (a) homogeneous devices at
    200 Mbps, (b) heterogeneous device types (Group DB), (c) heterogeneous
    bandwidths (Group NA on Nano), (d) a large-scale group (LD).
    """
    if environments is None:
        environments = {
            "a-homogeneous": ScenarioCatalog.homogeneous("nano", 200.0),
            "b-hetero-devices": ScenarioCatalog.table1_groups(200.0)["DB"],
            "c-hetero-network": ScenarioCatalog.table2_groups("nano")["NA"],
            "d-large-scale": ScenarioCatalog.table3_groups()["LD"],
        }
    results: Dict[str, Dict[float, float]] = {}
    base_alpha = harness.config.alpha
    for env_name, scenario in environments.items():
        results[env_name] = {}
        for alpha in alphas:
            harness.config.alpha = float(alpha)
            result = harness.run(
                "distredge", scenario, model_name=model_name, use_cache=False
            )
            results[env_name][float(alpha)] = result.ips
        harness.config.alpha = base_alpha
    return results


# --------------------------------------------------------------------------- #
# Fig. 6: effect of |Rr_s| in LC-PSS
# --------------------------------------------------------------------------- #
def figure6(
    harness: ExperimentHarness,
    counts: Sequence[int] = (25, 50, 75, 100, 125, 150),
    repeats: int = 5,
    cases: Optional[Dict[str, Scenario]] = None,
    model_name: str = "vgg16",
) -> Dict[str, Dict[int, dict]]:
    """IPS spread versus the number of random split decisions ``|Rr_s|``.

    For every count the partition search is repeated ``repeats`` times with
    different random-split seeds (the paper uses 50 repetitions), OSDS is run
    on each resulting partition, and the min / mean / max IPS are reported.
    """
    if cases is None:
        cases = {
            "DB-50Mbps": ScenarioCatalog.table1_groups(50.0)["DB"],
            "NA-nano": ScenarioCatalog.table2_groups("nano")["NA"],
        }
    model = harness.model(model_name)
    out: Dict[str, Dict[int, dict]] = {}
    for case_name, scenario in cases.items():
        devices, network = scenario.build(seed=harness.config.seed)
        evaluator = harness.evaluator_for(devices, network)
        out[case_name] = {}
        for count in counts:
            ips_values = []
            for rep in range(repeats):
                config = harness.config.distredge_config(len(devices))
                config.num_random_splits = int(count)
                config.seed = harness.config.seed + 1000 * rep + count
                planner = DistrEdge(config)
                plan = planner.plan(model, devices, network)
                ips_values.append(evaluator.evaluate(plan).ips)
            arr = np.asarray(ips_values)
            out[case_name][int(count)] = {
                "min_ips": float(arr.min()),
                "mean_ips": float(arr.mean()),
                "max_ips": float(arr.max()),
            }
    return out


# --------------------------------------------------------------------------- #
# Fig. 7 / 8 / 9: heterogeneous devices, networks, large scale
# --------------------------------------------------------------------------- #
def figure7(
    harness: ExperimentHarness,
    bandwidths: Sequence[float] = (50.0, 300.0),
    methods: Sequence[str] = ALL_METHODS,
    model_name: str = "vgg16",
) -> Dict[str, Dict[str, float]]:
    """IPS under heterogeneous device groups DA/DB/DC at 50 and 300 Mbps."""
    out: Dict[str, Dict[str, float]] = {}
    for mbps in bandwidths:
        for group, scenario in ScenarioCatalog.table1_groups(mbps).items():
            scenario = scenario.with_bandwidth(mbps, suffix=f"{mbps:g}")
            key = f"{group}-{mbps:g}Mbps"
            out[key] = harness.ips_table(harness.compare(scenario, methods, model_name))
    return out


def figure8(
    harness: ExperimentHarness,
    device_types: Sequence[str] = ("nano", "xavier"),
    methods: Sequence[str] = ALL_METHODS,
    model_name: str = "vgg16",
) -> Dict[str, Dict[str, float]]:
    """IPS under heterogeneous bandwidth groups NA-ND on Nano and Xavier."""
    out: Dict[str, Dict[str, float]] = {}
    for device_type in device_types:
        for group, scenario in ScenarioCatalog.table2_groups(device_type).items():
            key = f"{group}-{device_type}"
            named = Scenario(
                name=key,
                device_specs=scenario.device_specs,
                description=scenario.description,
            )
            out[key] = harness.ips_table(harness.compare(named, methods, model_name))
    return out


def figure9(
    harness: ExperimentHarness,
    methods: Sequence[str] = ALL_METHODS,
    model_name: str = "vgg16",
) -> Dict[str, Dict[str, float]]:
    """IPS with 16 service providers (groups LA-LD of Table III)."""
    out: Dict[str, Dict[str, float]] = {}
    for group, scenario in ScenarioCatalog.table3_groups().items():
        out[group] = harness.ips_table(harness.compare(scenario, methods, model_name))
    return out


# --------------------------------------------------------------------------- #
# Fig. 10 / 11: different CNN models
# --------------------------------------------------------------------------- #
def figure10(
    harness: ExperimentHarness,
    models: Sequence[str] = EXTRA_MODELS,
    methods: Sequence[str] = ALL_METHODS,
) -> Dict[str, Dict[str, float]]:
    """IPS of seven further models on Group DB at 50 Mbps (Fig. 10)."""
    scenario = ScenarioCatalog.table1_groups(50.0)["DB"].with_bandwidth(50.0, suffix="50")
    return {
        model: harness.ips_table(harness.compare(scenario, methods, model))
        for model in models
    }


def figure11(
    harness: ExperimentHarness,
    models: Sequence[str] = EXTRA_MODELS,
    methods: Sequence[str] = ALL_METHODS,
) -> Dict[str, Dict[str, float]]:
    """IPS of seven further models on Group NA with Nano providers (Fig. 11)."""
    scenario = ScenarioCatalog.table2_groups("nano")["NA"]
    named = Scenario("NA-nano", scenario.device_specs, scenario.description)
    return {
        model: harness.ips_table(harness.compare(named, methods, model))
        for model in models
    }


# --------------------------------------------------------------------------- #
# Fig. 13: per-image latency under a highly dynamic network
# --------------------------------------------------------------------------- #
def figure13(
    harness: ExperimentHarness,
    duration_s: float = 600.0,
    extra_gap_ms: float = 1000.0,
    model_name: str = "vgg16",
    seed: int = 0,
) -> Dict[str, dict]:
    """Per-image processing latency of CoEdge, AOFL and DistrEdge online.

    The three methods stream images over the same highly dynamic traces
    (Fig. 12).  CoEdge re-plans before every image (negligible delay), AOFL
    re-plans on significant throughput drift with a long brute-force delay,
    and DistrEdge keeps its actor online and fine-tunes after partition
    updates.  ``extra_gap_ms`` spaces the images out so a fixed simulated
    duration covers the whole trace without streaming tens of thousands of
    images.
    """
    scenario = ScenarioCatalog.dynamic_nano()
    model = harness.model(model_name)
    out: Dict[str, dict] = {}

    def summarise(stream) -> dict:
        lat = stream.per_image_latency_ms
        return {
            "mean_latency_ms": float(lat.mean()),
            "p95_latency_ms": float(np.percentile(lat, 95)),
            "max_latency_ms": float(lat.max()),
            "num_images": int(lat.size),
            "num_replans": len(stream.replan_times_s),
            "series": stream.latency_series(),
        }

    # --- CoEdge: replans every image, negligible planning delay.
    devices, network = scenario.build(seed=seed, trace_kind="dynamic")
    evaluator = harness.evaluator_for(devices, network)
    simulator = StreamingSimulator(evaluator, extra_gap_ms=extra_gap_ms)
    coedge = CoEdgePlanner()
    controller = PeriodicReplanController(
        planner_fn=lambda t: coedge.plan(model, devices, network),
        network=network,
        replan_threshold=0.0,
        replan_delay_s=0.0,
    )
    initial = coedge.plan(model, devices, network)
    out["coedge"] = summarise(
        simulator.run_duration(
            initial, duration_s, adaptation_hook=controller.adaptation_hook
        )
    )

    # --- AOFL: replans on drift, ~10 min brute-force delay.
    devices, network = scenario.build(seed=seed, trace_kind="dynamic")
    evaluator = harness.evaluator_for(devices, network)
    simulator = StreamingSimulator(evaluator, extra_gap_ms=extra_gap_ms)
    aofl = AOFLPlanner()
    controller = PeriodicReplanController(
        planner_fn=lambda t: aofl.plan(model, devices, network),
        network=network,
        replan_threshold=0.2,
        replan_delay_s=600.0,
    )
    initial = aofl.plan(model, devices, network)
    out["aofl"] = summarise(
        simulator.run_duration(
            initial, duration_s, adaptation_hook=controller.adaptation_hook
        )
    )

    # --- DistrEdge: actor online, fine-tune on partition change.
    devices, network = scenario.build(seed=seed, trace_kind="dynamic")
    evaluator = harness.evaluator_for(devices, network)
    simulator = StreamingSimulator(evaluator, extra_gap_ms=extra_gap_ms)
    distredge = DistrEdge(harness.config.distredge_config(len(devices)))
    online = OnlineDistrEdgeController(
        model=model,
        devices=devices,
        network=network,
        distredge=distredge,
        decision_interval_s=30.0,
        replan_threshold=0.25,
        partition_replan_delay_s=120.0,
        finetune_episodes=max(10, harness.config.osds_episodes // 5),
    )
    initial = online.initial_plan(0.0)
    out["distredge"] = summarise(
        simulator.run_duration(initial, duration_s, adaptation_hook=online.adaptation_hook)
    )
    return out


# --------------------------------------------------------------------------- #
# Fig. 14: nonlinearity of computing latency
# --------------------------------------------------------------------------- #
def figure14(
    device_type: str = "nano",
    model_name: str = "vgg16",
    volume_range: Sequence[int] = (0, 10),
    heights: Optional[Sequence[int]] = None,
) -> Dict[str, np.ndarray]:
    """Computing latency versus output size of a ten-layer layer-volume.

    Reproduces the staircase relationship of Fig. 14: the latency of a fused
    ten-layer volume as a function of the output rows assigned to one device
    is strongly nonlinear because of tile quantisation, per-layer launch
    overheads and the recomputation halo.
    """
    model = model_zoo.get(model_name)
    volume = model.volume(volume_range[0], volume_range[1])
    oracle = ComputeLatencyModel(get_device_type(device_type))
    h = volume.output_height
    heights = heights or list(range(1, h + 1))
    xs, ys = [], []
    for rows in heights:
        if rows < 1 or rows > h:
            continue
        xs.append(rows)
        ys.append(oracle.volume(list(volume.layers), rows))
    return {"output_rows": np.asarray(xs), "latency_ms": np.asarray(ys)}


# --------------------------------------------------------------------------- #
# Fig. 15: transmission vs compute latency breakdown
# --------------------------------------------------------------------------- #
def figure15(
    harness: ExperimentHarness,
    methods: Sequence[str] = ALL_METHODS,
    model_name: str = "vgg16",
) -> Dict[str, Dict[str, float]]:
    """Max transmission and max compute latency per method (DB, 50 Mbps)."""
    scenario = ScenarioCatalog.table1_groups(50.0)["DB"].with_bandwidth(50.0, suffix="50")
    results = harness.compare(scenario, methods, model_name)
    return {
        name: {
            "max_transmission_ms": r.max_transmission_ms,
            "max_compute_ms": r.max_compute_ms,
            "end_to_end_ms": r.latency_ms,
            "ips": r.ips,
        }
        for name, r in results.items()
    }


# --------------------------------------------------------------------------- #
# Serving-side figure: deadline-miss rate versus offered load
# --------------------------------------------------------------------------- #
def serving_load_curve(
    harness: ExperimentHarness,
    scenario: Scenario,
    rates_rps: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0),
    methods: Sequence[str] = ("coedge", "offload"),
    model_name: str = "vgg16",
    duration_s: float = 20.0,
    deadline_ms: Union[float, Sequence[float]] = 200.0,
    policy: Optional["ClusterPolicy"] = None,
    seed: int = 0,
    weight: Union[float, Sequence[float]] = 1.0,
) -> Dict[str, dict]:
    """Deadline-miss rate (and response percentiles) versus offered load.

    One serving run per offered per-tenant Poisson rate on the same fleet:
    every method becomes a tenant (distinct per-tenant arrival seeds, so
    streams are independent), plans are reused across the sweep via the
    harness plan cache, and each point records the pooled deadline-miss
    rate, throughput and response percentiles — the data behind a classic
    miss-rate-vs-load hockey-stick curve.  Pass a
    :class:`~repro.serving.dispatch.ClusterPolicy` to sweep the *contended*
    fleet (per-device lane queueing included), where saturation appears at
    markedly lower offered load.
    """
    out: Dict[str, dict] = {}
    for rate in rates_rps:
        if rate <= 0:
            raise ValueError(f"offered rates must be > 0, got {rate}")
        traffic = [
            PoissonArrivals(rate_rps=float(rate), seed=seed + i)
            for i in range(len(methods))
        ]
        report = harness.serve_scenario(
            scenario,
            methods=methods,
            model_name=model_name,
            traffic=traffic,
            deadline_ms=deadline_ms,
            duration_s=duration_s,
            policy=policy,
            weight=weight,
        )
        row = {
            "offered_rps_per_tenant": float(rate),
            "offered_rps_total": float(rate) * len(methods),
            "completed": report.total_completed,
            "rejected": report.total_rejected,
            "throughput_rps": report.throughput_rps,
            "deadline_miss_rate": report.deadline_miss_rate,
            "p50_response_ms": report.response_percentile_ms(50),
            "p95_response_ms": report.response_percentile_ms(95),
            "p99_response_ms": report.response_percentile_ms(99),
        }
        if report.fleet is not None:
            row["contended_share"] = report.fleet.contended_share
            row["gate_wait_ms"] = report.fleet.gate_wait_ms
        for tenant in report.tenants:
            row[f"miss_rate[{tenant.name}]"] = tenant.deadline_miss_rate
        out[f"{rate:g}rps"] = row
    return out


def degradation_curve(
    harness: ExperimentHarness,
    scenario: Scenario,
    crash_counts: Sequence[int] = (0, 1, 2, 4),
    methods: Sequence[str] = ("coedge", "offload"),
    model_name: str = "vgg16",
    rate_rps: float = 2.0,
    duration_s: float = 20.0,
    deadline_ms: Union[float, Sequence[float]] = 200.0,
    retry: Optional["RetryPolicy"] = None,
    degradation: Optional["DegradationPolicy"] = None,
    policy: Optional["ClusterPolicy"] = None,
    seed: int = 0,
    weight: Union[float, Sequence[float]] = 1.0,
) -> Dict[str, dict]:
    """Goodput and miss rate versus the number of seeded device crashes.

    One serving run per crash count on the same fleet and the same offered
    load: each point injects a seeded :class:`~repro.runtime.faults.ChurnSpec`
    with that many crashes (same churn seed throughout, so adding crashes
    extends the event set deterministically rather than reshuffling it) and
    records completed/abandoned/shed counts, retry overhead and the pooled
    deadline-miss rate — the data behind a graceful-degradation curve.  The
    zero-crash point runs with no churn trace at all, so it doubles as the
    byte-identical baseline.  ``retry``/``degradation`` default to
    :class:`~repro.runtime.faults.RetryPolicy()` and no load shedding.
    """
    from repro.runtime.faults import ChurnSpec, RetryPolicy

    out: Dict[str, dict] = {}
    for crashes in crash_counts:
        if crashes < 0:
            raise ValueError(f"crash counts must be >= 0, got {crashes}")
        faults = None
        if crashes > 0:
            faults = ChurnSpec(
                crashes=int(crashes),
                seed=seed,
                start_ms=0.1 * duration_s * 1000.0,
                window_ms=0.8 * duration_s * 1000.0,
            )
        traffic = [
            PoissonArrivals(rate_rps=float(rate_rps), seed=seed + i)
            for i in range(len(methods))
        ]
        report = harness.serve_scenario(
            scenario,
            methods=methods,
            model_name=model_name,
            traffic=traffic,
            deadline_ms=deadline_ms,
            duration_s=duration_s,
            policy=policy,
            weight=weight,
            faults=faults,
            retry=(retry or RetryPolicy()) if faults is not None else None,
            degradation=degradation if faults is not None else None,
        )
        row = {
            "crashes": int(crashes),
            "completed": report.total_completed,
            "throughput_rps": report.throughput_rps,
            "deadline_miss_rate": report.deadline_miss_rate,
            "p95_response_ms": report.response_percentile_ms(95),
        }
        if report.faults is not None:
            row["live_at_end"] = report.faults.live_at_end
            row["abandoned"] = report.faults.abandoned_requests
            row["retried"] = report.faults.retried_requests
            row["shed"] = report.faults.total_shed
            row["retry_latency_added_ms"] = report.faults.retry_latency_added_ms
            row["degraded_ms"] = report.faults.degraded_ms
        else:
            row["live_at_end"] = len(scenario.device_specs)
            row["abandoned"] = 0
            row["retried"] = 0
            row["shed"] = 0
            row["retry_latency_added_ms"] = 0.0
            row["degraded_ms"] = 0.0
        out[f"{crashes}crash"] = row
    return out


def load_curve_knee(
    curve: Dict[str, dict], target_miss_rate: float = 0.0
) -> Optional[float]:
    """The knee of a :func:`serving_load_curve`: the saturation point.

    Returns the highest *total* offered load (``offered_rps_total``) whose
    pooled deadline-miss rate stayed within ``target_miss_rate`` — the last
    point before the hockey stick turns up — or ``None`` when every swept
    point already misses the target.  Dividing the knee by the probe fleet's
    device count calibrates the autoscaler's per-device capacity
    (:meth:`repro.serving.control.AutoscalerConfig.from_knee`).
    """
    if not 0.0 <= target_miss_rate <= 1.0:
        raise ValueError(f"target_miss_rate must be in [0, 1], got {target_miss_rate}")
    best: Optional[float] = None
    for row in curve.values():
        if row["deadline_miss_rate"] <= target_miss_rate:
            total = float(row["offered_rps_total"])
            if best is None or total > best:
                best = total
    return best


def latency_breakdown_figure(analysis) -> Dict[str, dict]:
    """Stacked latency-breakdown series from a critical-path analysis.

    One series per tenant: milliseconds by breakdown bucket (admission
    queueing, gate wait, per-role lane service, stalls, uncontended
    service) plus the totals — the data behind the stacked bars that
    ``repro analyze --figure`` renders, in the same ``{name: {k: v}}``
    shape every other figure uses (plot or tabulate as needed).
    """
    series: Dict[str, dict] = {}
    for tenant in analysis.tenants:
        series[tenant.name] = {
            "requests": tenant.requests,
            "queue_ms": float(tenant.queue_ms),
            "gate_ms": float(tenant.by_label["gate"]),
            "compute_ms": float(tenant.by_label["compute"]),
            "send_ms": float(tenant.by_label["send"]),
            "recv_ms": float(tenant.by_label["recv"]),
            "stall_ms": float(tenant.by_label["stall"]),
            "service_ms": float(tenant.by_label["service"]),
            "latency_ms": float(tenant.latency_ms),
            "response_ms": float(tenant.response_ms),
            "dominant": tenant.dominant,
        }
    return series


__all__ = [
    "EXTRA_MODELS",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "degradation_curve",
    "latency_breakdown_figure",
    "load_curve_knee",
    "serving_load_curve",
]
