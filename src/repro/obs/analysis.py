"""Critical-path latency attribution over the deterministic serving trace.

A :class:`Tracer` (see :mod:`repro.obs.trace`) records *what happened*;
this module answers *where the time went*.  :func:`analyze_events`
consumes the canonical event stream of one serving run — the derived
request lifecycle plus the live-emitted contended lane spans, dispatch
instants, requeues and retry chains — and decomposes every completed
request's service latency into an exact tiling of contiguous segments:

* ``gate`` — the ``max_inflight`` admission-gate wait recorded on the
  request's ``dispatch`` instant;
* ``compute`` / ``send`` / ``recv`` — slivers covered by one of the
  request's own provider-lane busy spans (ties broken compute > send >
  recv, then by lane name);
* ``stall`` — slivers covered by none of its lane spans: requester-side
  transfers, intra-request dependency gaps and residual queueing behind
  other requests' occupancy;
* ``service`` — the whole latency of an uncontended request (independent
  runs emit no lane detail; the request saw an idle fleet).

**Exactness is structural, not numerical.**  The tiling's breakpoints
always include ``0.0`` and the committed ``latency_ms`` and consecutive
segments share their boundary float, so the segment durations sum to the
measured latency *by telescoping* — no rounding can creep in, and
:meth:`RequestAttribution.check_exact` asserts the chain bit for bit
(``repr`` equality).  Admission queueing (``queue_ms``, arrival → service
start) is reported alongside the latency tiling; response time is queue
wait plus latency.

Because the analysis is a pure function of the canonical trace — and the
trace is byte-identical across the reference, batched and array loops
(``run_with_parity`` asserts it) — the attribution inherits the parity
contract for free: :meth:`AnalysisReport.lines` compares equal across
engines exactly when every derived float is the same bits.
:func:`analyze_chrome` re-imports an exported ``--trace-json`` file, so
``repro analyze`` works offline on a trace artifact.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.obs.trace import TraceEvent, Tracer, events_from_chrome

#: Sliver-coverage tie break: a compute span outranks a send span
#: outranks a recv span covering the same instant.
ROLE_PRIORITY = {"compute": 0, "send": 1, "recv": 2}

#: Latency-tiling segment labels, in rollup order.
SEGMENT_LABELS = ("gate", "compute", "send", "recv", "stall", "service")


class AnalysisError(ValueError):
    """A trace that cannot be attributed (malformed or mismatched)."""


class Segment(NamedTuple):
    """One contiguous sliver of a request's latency tiling.

    ``start_ms`` / ``end_ms`` are latency-relative (``0`` = service
    start); ``lane`` names the covering lane track for compute/send/recv
    segments and is empty otherwise.
    """

    label: str
    lane: str
    start_ms: float
    end_ms: float

    @property
    def dur_ms(self) -> float:
        return self.end_ms - self.start_ms


def _lane_parts(track: str) -> Tuple[str, str]:
    """``lane:<device>:<role>`` -> ``(device, role)``."""
    body, _, role = track.rpartition(":")
    return body[len("lane:"):], role


def _lane_rank(track: str) -> Tuple[int, str]:
    _, role = _lane_parts(track)
    return (ROLE_PRIORITY.get(role, len(ROLE_PRIORITY)), track)


class RequestAttribution:
    """One completed request's exact latency breakdown."""

    __slots__ = (
        "tenant", "index", "start_ms", "latency_ms", "queue_ms",
        "contended", "gate_wait_ms", "lane_wait_ms", "segments", "_by_label",
    )

    def __init__(
        self,
        tenant: str,
        index: int,
        start_ms: float,
        latency_ms: float,
        queue_ms: float,
        contended: bool,
        gate_wait_ms: float,
        lane_wait_ms: float,
        segments: List[Segment],
    ) -> None:
        self.tenant = tenant
        self.index = index
        self.start_ms = start_ms
        self.latency_ms = latency_ms
        self.queue_ms = queue_ms
        self.contended = contended
        self.gate_wait_ms = gate_wait_ms
        self.lane_wait_ms = lane_wait_ms
        self.segments = segments
        self._by_label: Optional[Dict[str, float]] = None

    @property
    def by_label(self) -> Dict[str, float]:
        """Per-label duration sums, computed lazily from the tiling."""
        cached = self._by_label
        if cached is None:
            cached = {}
            for seg in self.segments:
                cached[seg.label] = cached.get(seg.label, 0.0) + (
                    seg.end_ms - seg.start_ms
                )
            self._by_label = cached
        return cached

    @property
    def attributed_ms(self) -> float:
        """Telescoped segment total — the last breakpoint of the tiling."""
        return self.segments[-1].end_ms if self.segments else 0.0

    def check_exact(self) -> None:
        """Assert the tiling is a bit-exact account of ``latency_ms``.

        The chain must start at ``0.0``, every boundary must be *the same
        float* on both sides (``repr`` equality, i.e. equal bits) and the
        last breakpoint must be the committed latency itself — which makes
        the telescoped sum of segment durations exactly the measured
        latency, with no rounding anywhere.
        """
        if not self.segments:
            raise AssertionError(
                f"{self.tenant}[{self.index}]: empty tiling for "
                f"latency {self.latency_ms!r}"
            )
        if repr(self.segments[0].start_ms) != repr(0.0):
            raise AssertionError(
                f"{self.tenant}[{self.index}]: tiling starts at "
                f"{self.segments[0].start_ms!r}, not 0.0"
            )
        for prev, seg in zip(self.segments, self.segments[1:]):
            if repr(prev.end_ms) != repr(seg.start_ms):
                raise AssertionError(
                    f"{self.tenant}[{self.index}]: gap between {prev!r} "
                    f"and {seg!r}"
                )
        if repr(self.segments[-1].end_ms) != repr(self.latency_ms):
            raise AssertionError(
                f"{self.tenant}[{self.index}]: tiling ends at "
                f"{self.segments[-1].end_ms!r}, latency is {self.latency_ms!r}"
            )

    @property
    def exact(self) -> bool:
        try:
            self.check_exact()
        except AssertionError:
            return False
        return True

    def to_line(self) -> str:
        """Canonical byte serialisation (floats via ``repr``)."""
        parts = [
            self.tenant,
            str(self.index),
            repr(float(self.start_ms)),
            repr(float(self.latency_ms)),
            repr(float(self.queue_ms)),
            repr(float(self.lane_wait_ms)),
            "contended" if self.contended else "idle",
        ]
        for seg in self.segments:
            lane = seg.lane or "-"
            parts.append(f"{seg.label}@{lane}:{seg.start_ms!r}:{seg.end_ms!r}")
        return " ".join(parts)


class TenantAttribution:
    """Per-tenant rollup of the request breakdowns plus trace-only facts."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.requests = 0
        self.contended_requests = 0
        self.queue_ms = 0.0
        self.latency_ms = 0.0
        self.response_ms = 0.0
        self.lane_wait_ms = 0.0
        self.by_label: Dict[str, float] = {label: 0.0 for label in SEGMENT_LABELS}
        self.misses = 0
        self.rejects = 0
        self.denies = 0
        self.requeues = 0
        self.sheds = 0
        self.abandons = 0
        self.replans = 0
        self.retries = 0
        self.retry_backoff_ms = 0.0
        self.lost_attempts = 0
        self.lost_attempt_ms = 0.0

    @property
    def dominant(self) -> str:
        """The breakdown bucket holding the most milliseconds (queue included)."""
        candidates = [("queue", self.queue_ms)] + [
            (label, self.by_label[label]) for label in SEGMENT_LABELS
        ]
        # max() keeps the first of equal keys; candidate order is fixed.
        return max(candidates, key=lambda kv: kv[1])[0]

    def to_dict(self) -> Dict:
        out: Dict = {
            "name": self.name,
            "requests": int(self.requests),
            "contended_requests": int(self.contended_requests),
            "queue_ms": float(self.queue_ms),
            "latency_ms": float(self.latency_ms),
            "response_ms": float(self.response_ms),
            "lane_wait_ms": float(self.lane_wait_ms),
            "misses": int(self.misses),
            "rejects": int(self.rejects),
            "denies": int(self.denies),
            "requeues": int(self.requeues),
            "sheds": int(self.sheds),
            "abandons": int(self.abandons),
            "replans": int(self.replans),
            "retries": int(self.retries),
            "retry_backoff_ms": float(self.retry_backoff_ms),
            "lost_attempts": int(self.lost_attempts),
            "lost_attempt_ms": float(self.lost_attempt_ms),
            "dominant": self.dominant,
        }
        for label in SEGMENT_LABELS:
            out[f"{label}_ms"] = float(self.by_label[label])
        return out

    def to_line(self) -> str:
        cells = [f"tenant {self.name}", str(self.requests)]
        cells += [repr(float(self.by_label[label])) for label in SEGMENT_LABELS]
        cells += [
            repr(float(self.queue_ms)),
            repr(float(self.latency_ms)),
            repr(float(self.response_ms)),
            repr(float(self.lane_wait_ms)),
            repr(float(self.retry_backoff_ms)),
            repr(float(self.lost_attempt_ms)),
        ]
        return " ".join(cells)


class LaneAttribution:
    """Per-lane rollup: raw occupancy plus critical-path milliseconds."""

    def __init__(self, lane: str) -> None:
        self.lane = lane
        self.device, self.role = _lane_parts(lane)
        self.critical_ms = 0.0
        self.busy_ms = 0.0
        self.wait_ms = 0.0
        self.jobs = 0
        self.spans = 0
        self.share = 0.0

    def to_dict(self) -> Dict:
        return {
            "lane": self.lane,
            "device": self.device,
            "role": self.role,
            "critical_ms": float(self.critical_ms),
            "share": float(self.share),
            "busy_ms": float(self.busy_ms),
            "wait_ms": float(self.wait_ms),
            "jobs": int(self.jobs),
            "spans": int(self.spans),
        }

    def to_line(self) -> str:
        return " ".join([
            f"lane {self.lane}",
            repr(float(self.critical_ms)),
            repr(float(self.busy_ms)),
            repr(float(self.wait_ms)),
            str(self.jobs),
            str(self.spans),
        ])


class AnalysisReport:
    """The full attribution: per-request tilings, rollups, bottleneck ranking."""

    def __init__(
        self,
        requests: List[RequestAttribution],
        tenants: List[TenantAttribution],
        lanes: List[LaneAttribution],
        truncated_attempts: int,
    ) -> None:
        self.requests = requests
        self.tenants = tenants
        #: Ranked most critical-path milliseconds first — the fleet-level
        #: bottleneck ordering (ties by lane name).
        self.lanes = lanes
        self.truncated_attempts = truncated_attempts

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def contended_requests(self) -> int:
        return sum(1 for r in self.requests if r.contended)

    @property
    def exact(self) -> bool:
        """Every request's tiling closes bit-exactly at its latency."""
        return all(r.exact for r in self.requests)

    def check_exact(self) -> None:
        for request in self.requests:
            request.check_exact()

    @property
    def bottleneck(self) -> str:
        """The lane holding the most critical-path milliseconds ('' if none)."""
        return self.lanes[0].lane if self.lanes else ""

    def tenant(self, name: str) -> TenantAttribution:
        for tenant in self.tenants:
            if tenant.name == name:
                return tenant
        raise KeyError(
            f"no tenant {name!r}; tenants: {[t.name for t in self.tenants]}"
        )

    def total(self, field: str) -> float:
        """Sum a :class:`TenantAttribution` field over every tenant."""
        total = 0.0
        for tenant in self.tenants:
            total += (
                tenant.by_label[field]
                if field in SEGMENT_LABELS
                else getattr(tenant, field)
            )
        return total

    def lines(self) -> List[str]:
        """Canonical byte serialisation of the whole attribution.

        Two analyses compare equal exactly when every request tiling,
        tenant rollup and lane rollup is the same bits — the form the
        parity contract (``run_with_parity(compare_analysis=True)``)
        asserts across the reference, batched and array loops.
        """
        out = [request.to_line() for request in self.requests]
        out += [tenant.to_line() for tenant in self.tenants]
        out += [lane.to_line() for lane in self.lanes]
        out.append(f"truncated_attempts {self.truncated_attempts}")
        return out

    def to_dict(self) -> Dict:
        """Machine-readable dump (the shape ``repro analyze --report-json``
        writes; pinned by ``tests/data/analysis_report_schema.json``)."""
        totals: Dict = {
            f"{label}_ms": float(self.total(label)) for label in SEGMENT_LABELS
        }
        totals.update(
            {
                "queue_ms": float(self.total("queue_ms")),
                "latency_ms": float(self.total("latency_ms")),
                "response_ms": float(self.total("response_ms")),
                "lane_wait_ms": float(self.total("lane_wait_ms")),
                "retry_backoff_ms": float(self.total("retry_backoff_ms")),
                "lost_attempt_ms": float(self.total("lost_attempt_ms")),
            }
        )
        return {
            "requests": int(self.num_requests),
            "contended_requests": int(self.contended_requests),
            "truncated_attempts": int(self.truncated_attempts),
            "exact": bool(self.exact),
            "bottleneck": self.bottleneck,
            "totals": totals,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
            "lanes": [lane.to_dict() for lane in self.lanes],
        }


# ---------------------------------------------------------------------- #
# the analysis pass
# ---------------------------------------------------------------------- #


def _tile_request(
    latency_ms: float,
    gate_ms: float,
    spans: List[Tuple[float, float, str]],
) -> List[Segment]:
    """Tile ``[0, latency_ms]`` from the gate wait and the request's own
    latency-relative lane intervals (``(start, end, lane_track)``)."""
    length = latency_ms
    gate = min(max(gate_ms, 0.0), length)
    intervals: List[Tuple[float, float, str]] = []
    points = {0.0, gate, length}
    for start, end, lane in spans:
        # Clamp defensively: a re-imported Chrome trace's timestamps went
        # through the microsecond conversion and may wobble by an ulp.
        start = min(max(start, 0.0), length)
        end = min(max(end, start), length)
        if end > start:
            intervals.append((start, end, lane))
            points.add(start)
            points.add(end)
    breakpoints = sorted(points)
    segments: List[Segment] = []
    for a, b in zip(breakpoints, breakpoints[1:]):
        if b <= gate:
            label, lane = "gate", ""
        else:
            covering = [t for (x, y, t) in intervals if x <= a and y >= b]
            if covering:
                lane = min(covering, key=_lane_rank)
                label = _lane_parts(lane)[1]
            else:
                label, lane = "stall", ""
        if segments and segments[-1].label == label and segments[-1].lane == lane:
            segments[-1] = segments[-1]._replace(end_ms=b)
        else:
            segments.append(Segment(label, lane, a, b))
    if not segments:
        # Zero-length latency: one empty segment keeps the chain closed.
        segments.append(Segment("service", "", 0.0, length))
    return segments


class _TenantEvents:
    """One tenant's events, bucketed by what the analysis needs."""

    __slots__ = (
        "serve", "queue", "dispatches", "final_by_release", "spans", "rollup",
    )

    def __init__(self, name: str) -> None:
        self.serve: List[Tuple[float, float]] = []  # (start_ms, latency_ms)
        self.queue: List[float] = []  # queue wait per request, arrival order
        self.dispatches: List[Tuple[float, float, bool]] = []  # (release, lat, truncated)
        self.final_by_release: Dict[float, Tuple[float, bool]] = {}  # (gate, contended)
        self.spans: List[Tuple[float, str, float, tuple]] = []  # (ts, track, dur, args)
        self.rollup = TenantAttribution(name)


def analyze_events(events: Iterable[TraceEvent]) -> AnalysisReport:
    """Attribute one serving run's canonical event stream.

    ``events`` must be a full run's trace in canonical order — pass a
    :class:`Tracer` to :func:`analyze_trace` or a Chrome export to
    :func:`analyze_chrome` rather than calling this directly.
    """
    tenants: Dict[str, _TenantEvents] = {}
    tenants_get = tenants.get

    # The stream is large (four lifecycle events per request plus lane
    # spans) and this loop dominates `repro analyze`, so it unpacks the
    # TraceEvent tuple directly and scans the args pair-tuple in place
    # instead of building a dict per event.
    for ts_ms, track, kind, name, dur_ms, raw_args in events:
        if kind == "lane":
            tenant_name = ""
            for key, value in raw_args:
                if key == "tenant":
                    tenant_name = str(value)
                    break
            entry = tenants_get(tenant_name)
            if entry is None:
                entry = tenants[tenant_name] = _TenantEvents(tenant_name)
            entry.spans.append((ts_ms, track, dur_ms, raw_args))
            continue
        if not track.startswith("tenant:"):
            continue
        tenant_name = track[7:]  # len("tenant:")
        entry = tenants_get(tenant_name)
        if entry is None:
            entry = tenants[tenant_name] = _TenantEvents(tenant_name)
        if kind == "request":
            if name == "serve":
                latency = dur_ms
                for key, value in raw_args:
                    if key == "latency_ms":
                        latency = float(value)
                        break
                entry.serve.append((ts_ms, latency))
            elif name == "queue":
                entry.queue.append(dur_ms)
            elif name == "dispatch":
                latency = 0.0
                truncated = False
                gate_wait = 0.0
                contended = False
                for key, value in raw_args:
                    if key == "latency_ms":
                        latency = float(value)
                    elif key == "truncated":
                        truncated = bool(value)
                    elif key == "gate_wait_ms":
                        gate_wait = float(value)
                    elif key == "contended":
                        contended = bool(value)
                entry.dispatches.append((ts_ms, latency, truncated))
                if truncated:
                    entry.rollup.lost_attempt_ms += latency
                else:
                    entry.final_by_release[ts_ms] = (gate_wait, contended)
            elif name == "complete":
                rollup = entry.rollup
                for key, value in raw_args:
                    if key == "response_ms":
                        rollup.response_ms += float(value)
                    elif key == "deadline_missed" and value:
                        rollup.misses += 1
        elif kind == "admission":
            if name == "reject":
                entry.rollup.rejects += 1
            elif name == "deny":
                entry.rollup.denies += 1
            elif name == "requeue":
                entry.rollup.requeues += 1
        elif kind == "fault":
            if name == "shed":
                entry.rollup.sheds += 1
            elif name == "abandon":
                entry.rollup.abandons += 1
            elif name == "retry":
                args = dict(raw_args)
                entry.rollup.retries += 1
                entry.rollup.retry_backoff_ms += float(args.get("delay_ms", 0.0))
                entry.rollup.lost_attempts += 1
            elif name == "retry_chain":
                args = dict(raw_args)
                entry.rollup.retries += max(int(args.get("attempts", 1)) - 1, 0)
                entry.rollup.retry_backoff_ms += float(args.get("retry_added_ms", 0.0))
                entry.rollup.lost_attempts += int(args.get("lost_attempts", 0))
        elif kind == "control" and name == "replan":
            entry.rollup.replans += 1

    requests: List[RequestAttribution] = []
    rollups: List[TenantAttribution] = []
    lanes: Dict[str, LaneAttribution] = {}
    truncated_attempts = 0

    for name in sorted(tenants):
        entry = tenants[name]
        rollup = entry.rollup
        if len(entry.queue) != len(entry.serve):
            raise AnalysisError(
                f"tenant {name!r}: {len(entry.queue)} queue spans for "
                f"{len(entry.serve)} serve spans — not a full run trace"
            )
        # Bucket each lane span onto the dispatch whose release precedes it
        # (per-tenant releases are strictly ordered by the sequential
        # contended dispatcher, and a request's lanes never start before
        # its release).
        entry.dispatches.sort()
        releases = [release for release, _, _ in entry.dispatches]
        spans_by_release: Dict[float, List[Tuple[float, float, str]]] = {}
        wait_by_release: Dict[float, float] = {}
        for span_ts, span_track, span_dur, span_args in entry.spans:
            lane = lanes.get(span_track)
            if lane is None:
                lane = lanes[span_track] = LaneAttribution(span_track)
            wait_ms = 0.0
            jobs = 0
            for key, value in span_args:
                if key == "wait_ms":
                    wait_ms = float(value)
                elif key == "jobs":
                    jobs = int(value)
            lane.busy_ms += span_dur
            lane.wait_ms += wait_ms
            lane.jobs += jobs
            lane.spans += 1
            rollup.lane_wait_ms += wait_ms
            if not releases:
                continue
            slot = bisect_right(releases, span_ts) - 1
            if slot < 0:
                slot = 0
            release, _, truncated = entry.dispatches[slot]
            if truncated:
                continue  # lost work: occupancy counted, never critical path
            spans_by_release.setdefault(release, []).append(
                (span_ts - release, span_ts - release + span_dur, span_track)
            )
            wait_by_release[release] = wait_by_release.get(release, 0.0) + wait_ms
        truncated_here = sum(1 for _, _, t in entry.dispatches if t)
        truncated_attempts += truncated_here
        rollup.lost_attempts += truncated_here

        for index, ((start_ms, latency_ms), queue_ms) in enumerate(
            zip(entry.serve, entry.queue)
        ):
            final = entry.final_by_release.get(start_ms)
            if final is None:
                segments = [Segment("service", "", 0.0, latency_ms)]
                contended = False
                gate_wait = 0.0
                lane_wait = 0.0
            else:
                gate_wait, contended = final
                segments = _tile_request(
                    latency_ms, gate_wait, spans_by_release.get(start_ms, [])
                )
                lane_wait = wait_by_release.get(start_ms, 0.0)
            requests.append(RequestAttribution(
                name, index, start_ms, latency_ms, queue_ms,
                contended, gate_wait, lane_wait, segments,
            ))
            rollup.requests += 1
            rollup.contended_requests += 1 if contended else 0
            rollup.queue_ms += queue_ms
            rollup.latency_ms += latency_ms
            rollup_by_label = rollup.by_label
            for seg in segments:
                dur = seg.end_ms - seg.start_ms
                rollup_by_label[seg.label] += dur
                if seg.lane:
                    lanes[seg.lane].critical_ms += dur
        rollups.append(rollup)

    ranked = sorted(lanes.values(), key=lambda l: (-l.critical_ms, l.lane))
    total_critical = 0.0
    for lane in ranked:
        total_critical += lane.critical_ms
    if total_critical > 0.0:
        for lane in ranked:
            lane.share = lane.critical_ms / total_critical
    return AnalysisReport(requests, rollups, ranked, truncated_attempts)


def analyze_trace(tracer: Tracer) -> AnalysisReport:
    """Attribute a live :class:`Tracer`'s run (canonical event order)."""
    return analyze_events(tracer.sorted_events())


def analyze_chrome(data: Dict) -> AnalysisReport:
    """Attribute an exported Chrome trace (``repro serve --trace-json``).

    Timestamps come back through the microsecond conversion (may differ
    from the live trace by an ulp; the tiling clamps), while the exactness
    anchors — ``latency_ms`` / ``gate_wait_ms`` event args — round-trip
    bit-exactly through JSON, so :meth:`RequestAttribution.check_exact`
    holds for re-imported traces too.
    """
    return analyze_events(events_from_chrome(data))


def analyze_serving(report, tracer: Optional[Tracer] = None) -> AnalysisReport:
    """Attribute a committed ``ServingReport``, cross-checking the trace.

    With ``tracer=None`` a fresh tracer derives the lifecycle from the
    report — queue + service attribution only (live-only facts like lane
    spans are gone).  With the run's own tracer the full breakdown is
    available, and the committed report must agree with the trace on the
    request count per tenant (a cheap integrity check on the pairing).
    """
    if tracer is None:
        tracer = Tracer()
        tracer.defer_report(report)
    analysis = analyze_events(tracer.sorted_events())
    for tenant in report.tenants:
        if tenant.num_completed == 0 and all(
            t.name != tenant.name for t in analysis.tenants
        ):
            continue
        attributed = analysis.tenant(tenant.name).requests
        if attributed != tenant.num_completed:
            raise AnalysisError(
                f"tenant {tenant.name!r}: report committed "
                f"{tenant.num_completed} requests but the trace attributes "
                f"{attributed} — trace and report are from different runs"
            )
    return analysis


__all__ = [
    "ROLE_PRIORITY",
    "SEGMENT_LABELS",
    "AnalysisError",
    "AnalysisReport",
    "LaneAttribution",
    "RequestAttribution",
    "Segment",
    "TenantAttribution",
    "analyze_chrome",
    "analyze_events",
    "analyze_serving",
    "analyze_trace",
]
