"""Deterministic tracing on the simulated clock.

A :class:`Tracer` collects :class:`TraceEvent` records — instants and
duration spans — timestamped in **simulated milliseconds**.  Determinism is
the design center:

* Events are canonically ordered at read time (:meth:`Tracer.sorted_events`)
  by ``(ts, track, kind, name, dur, args)``, so *emission* order never
  matters: a loop that derives events after the fact and a loop that emits
  them live produce the same stream.
* Most of the request lifecycle is not emitted by the event loops at all —
  it is **derived** from the committed :class:`ServingReport` by
  :func:`trace_serving_report`, a pure function.  Since every fast path is
  already bit-identical to the reference loop at the report level, the
  derived events are bit-identical too, for free.  Only facts that do not
  survive into the report (contended per-lane segments, requeues, retry
  chains, the fault timeline, control-plane decisions) are emitted live —
  and only from code paths shared by every mode.
* The canonical byte serialisation (:meth:`Tracer.lines`) uses ``repr()``
  for floats, so two traces compare equal exactly when every float is the
  same bits — the trace-level parity contract ``run_with_parity`` asserts.

:meth:`Tracer.to_chrome` exports the Chrome trace-event JSON format
(load it at https://ui.perfetto.dev): one thread track per tenant, one per
device lane, plus fleet/control tracks.  ``docs/observability.md`` has the
span taxonomy and a worked Perfetto session.
"""

from __future__ import annotations

import json
from typing import Dict, List, NamedTuple, Tuple

#: Track-name prefixes -> Chrome process ids (one pid per track family, so
#: Perfetto groups tenant tracks, lane tracks and control tracks separately).
_TRACK_PIDS = (("tenant:", 1, "tenants"), ("lane:", 2, "device lanes"))
_CONTROL_PID = (3, "fleet & control plane")


class TraceEvent(NamedTuple):
    """One trace record on the simulated clock.

    ``ts_ms`` (and ``dur_ms`` for spans; instants carry ``dur_ms=0``) are
    simulated milliseconds.  ``track`` names the timeline the event lives
    on (``tenant:<name>``, ``lane:<device>:<role>``, ``fleet``,
    ``control:<component>``); ``kind`` is the taxonomy bucket and ``name``
    the human label.  ``args`` is a key-sorted tuple of ``(key, value)``
    pairs — a hashable, deterministic stand-in for a dict.

    The field order *is* the canonical sort key, so plain tuple ordering
    sorts a trace canonically — and tuple construction keeps the derived
    fast path in :func:`trace_serving_report` cheap.
    """

    ts_ms: float
    track: str
    kind: str
    name: str
    dur_ms: float = 0.0
    args: Tuple[Tuple[str, object], ...] = ()

    def to_line(self) -> str:
        """Canonical byte serialisation (floats via ``repr`` — exact bits)."""
        parts = [
            repr(float(self.ts_ms)),
            repr(float(self.dur_ms)),
            self.track,
            self.kind,
            self.name,
        ]
        for key, value in self.args:
            rendered = repr(float(value)) if isinstance(value, float) else repr(value)
            parts.append(f"{key}={rendered}")
        return " ".join(parts)


class Tracer:
    """Collects trace events; canonical order and export at read time.

    Request-lifecycle derivation is **deferred**: the simulator hands the
    committed report to :meth:`defer_report` (O(1) inside the timed run) and
    the derived events materialise on first read of :attr:`events` — so a
    traced run pays only live emission plus a pointer, the property the
    ``bench-obs`` CI leg gates.  Because the canonical views sort, deferral
    cannot change any observable byte.
    """

    enabled = True

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._pending_reports: List[object] = []

    @property
    def events(self) -> List[TraceEvent]:
        """All events (derives any deferred reports first)."""
        if self._pending_reports:
            pending, self._pending_reports = self._pending_reports, []
            for report in pending:
                _derive_report(self._events, report)
        return self._events

    # ------------------------------------------------------------------ #
    # emission
    # ------------------------------------------------------------------ #
    def instant(self, ts_ms: float, track: str, kind: str, name: str, **args) -> None:
        """Record a zero-duration event at ``ts_ms``."""
        self._events.append(
            TraceEvent(
                ts_ms=float(ts_ms),
                track=track,
                kind=kind,
                name=name,
                args=tuple(sorted(args.items())),
            )
        )

    def span(
        self, ts_ms: float, dur_ms: float, track: str, kind: str, name: str, **args
    ) -> None:
        """Record a duration span ``[ts_ms, ts_ms + dur_ms]``."""
        self._events.append(
            TraceEvent(
                ts_ms=float(ts_ms),
                track=track,
                kind=kind,
                name=name,
                dur_ms=float(dur_ms),
                args=tuple(sorted(args.items())),
            )
        )

    def defer_report(self, report) -> None:
        """Queue a committed ``ServingReport`` for lazy lifecycle derivation.

        Equivalent to :func:`trace_serving_report` in every observable way,
        but the derivation work happens on first read instead of inside the
        serving run.
        """
        if self.enabled:
            self._pending_reports.append(report)

    # ------------------------------------------------------------------ #
    # canonical views
    # ------------------------------------------------------------------ #
    def sorted_events(self) -> List[TraceEvent]:
        """Events in canonical order — independent of emission order.

        ``TraceEvent`` field order matches the canonical key
        ``(ts, track, kind, name, dur, args)``, so plain tuple sort is it.
        """
        return sorted(self.events)

    def lines(self) -> List[str]:
        """Canonical byte serialisation, one line per event.

        Two traces are *identical* exactly when their ``lines()`` compare
        equal — the representation the trace parity contract is asserted
        on (floats rendered via ``repr``, so equality means equal bits).
        """
        return [event.to_line() for event in self.sorted_events()]

    # ------------------------------------------------------------------ #
    # Chrome trace-event export
    # ------------------------------------------------------------------ #
    def _track_layout(self) -> Dict[str, Tuple[int, int]]:
        """Stable ``track -> (pid, tid)`` assignment (sorted track names)."""
        layout: Dict[str, Tuple[int, int]] = {}
        counters: Dict[int, int] = {}
        for track in sorted({event.track for event in self.events}):
            pid = _CONTROL_PID[0]
            for prefix, family_pid, _ in _TRACK_PIDS:
                if track.startswith(prefix):
                    pid = family_pid
                    break
            tid = counters.get(pid, 0) + 1
            counters[pid] = tid
            layout[track] = (pid, tid)
        return layout

    def to_chrome(self, provenance: Dict = None) -> Dict:
        """The trace as a Chrome trace-event JSON object (Perfetto-loadable).

        Spans become complete (``ph="X"``) events, instants thread-scoped
        instant (``ph="i"``) events; timestamps are microseconds as the
        format requires.  Metadata events name one process per track family
        (tenants / device lanes / control) and one thread per track.
        ``provenance`` (the same ``{repro_version, argv, scenario}`` block
        the CLI stamps on ``--report-json``) lands as a top-level key —
        Perfetto ignores keys it does not know, and
        :func:`events_from_chrome` skips it on re-import.
        """
        layout = self._track_layout()
        trace_events: List[Dict] = []
        named_pids = {pid: name for _, pid, name in _TRACK_PIDS}
        named_pids[_CONTROL_PID[0]] = _CONTROL_PID[1]
        used_pids = sorted({pid for pid, _ in layout.values()})
        for pid in used_pids:
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": named_pids[pid]},
                }
            )
        for track, (pid, tid) in layout.items():
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        for event in self.sorted_events():
            pid, tid = layout[event.track]
            record: Dict = {
                "name": event.name,
                "cat": event.kind,
                "ts": event.ts_ms * 1000.0,
                "pid": pid,
                "tid": tid,
                "args": {key: value for key, value in event.args},
            }
            if event.dur_ms > 0.0:
                record["ph"] = "X"
                record["dur"] = event.dur_ms * 1000.0
            else:
                record["ph"] = "i"
                record["s"] = "t"
            trace_events.append(record)
        chrome: Dict = {"traceEvents": trace_events, "displayTimeUnit": "ms"}
        if provenance is not None:
            chrome["provenance"] = provenance
        return chrome

    def write_chrome(self, path: str, provenance: Dict = None) -> None:
        """Write :meth:`to_chrome` as JSON to ``path``."""
        from pathlib import Path

        Path(path).write_text(
            json.dumps(self.to_chrome(provenance=provenance), indent=2) + "\n"
        )


class NullTracer(Tracer):
    """The default tracer: drops everything, so instrumented hot loops pay
    one attribute check (``tracer.enabled``) and nothing else."""

    enabled = False

    def instant(self, ts_ms: float, track: str, kind: str, name: str, **args) -> None:
        pass

    def span(
        self, ts_ms: float, dur_ms: float, track: str, kind: str, name: str, **args
    ) -> None:
        pass


#: Shared no-op tracer (stateless, safe to share everywhere).
NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------- #
# the committed-schedule derivation
# ---------------------------------------------------------------------- #


def _tenant_track(name: str) -> str:
    return f"tenant:{name}"


def _aslist(values) -> list:
    """Bulk-convert a numpy array (or any sequence) to Python scalars."""
    tolist = getattr(values, "tolist", None)
    return tolist() if tolist is not None else [float(v) for v in values]


def trace_serving_report(tracer: Tracer, report) -> None:
    """Derive the request-lifecycle events from a committed ``ServingReport``.

    A pure function of the report: per completed request an ``arrive``
    instant, a ``queue`` span (arrival → service start), a ``serve`` span
    (start → completion) and a ``complete`` instant; plus instants for every
    rejection (queue full at arrival), denial (predictive admission at
    release), shed arrival, abandoned retry chain and replan the report
    recorded.  Because every loop's report is bit-identical by the parity
    contract, the derived events are too — no instrumentation of the fast
    paths required.

    This eager form derives immediately; the simulator uses the lazy
    :meth:`Tracer.defer_report` so the derivation cost lands at first read
    (export time) instead of inside the timed serving run.
    """
    if not tracer.enabled:
        return
    _derive_report(tracer.events, report)


def _derive_report(events: List[TraceEvent], report) -> None:
    """Append the derived lifecycle events for ``report`` to ``events``.

    Builds events in bulk (``tolist`` conversions, C-level ``map``/``zip``
    over :meth:`TraceEvent._make`, pre-sorted args tuples) — the derivation
    runs once per trace read, on up to hundreds of thousands of requests.
    """
    from itertools import repeat

    make = TraceEvent._make  # skips the field-by-field constructor
    extend = events.extend
    for tenant in report.tenants:
        track = _tenant_track(tenant.name)
        # Scale to ms with numpy (same IEEE multiply as the scalar path,
        # same bits), then fan out to events with C-level map/zip loops.
        arrive_ms = (tenant.arrival_s * 1000.0).tolist()
        start_ms = (tenant.start_s * 1000.0).tolist()
        queue_ms = (tenant.start_s * 1000.0 - tenant.arrival_s * 1000.0).tolist()
        complete_ms = (tenant.completion_s * 1000.0).tolist()
        lat = _aslist(tenant.latency_ms)
        resp = _aslist(tenant.response_ms)
        miss = _aslist(tenant.deadline_missed)
        r_track, r_req, r_zero, r_empty = (
            repeat(track), repeat("request"), repeat(0.0), repeat(()),
        )
        extend(
            map(make, zip(arrive_ms, r_track, r_req, repeat("arrive"), r_zero, r_empty))
        )
        extend(
            map(make, zip(arrive_ms, r_track, r_req, repeat("queue"), queue_ms, r_empty))
        )
        extend(
            map(
                make,
                zip(
                    start_ms, r_track, r_req, repeat("serve"), lat,
                    [(("latency_ms", value),) for value in lat],
                ),
            )
        )
        extend(
            map(
                make,
                zip(
                    complete_ms, r_track, r_req, repeat("complete"), r_zero,
                    [
                        (("deadline_missed", m), ("response_ms", r))
                        for m, r in zip(miss, resp)
                    ],
                ),
            )
        )
        for kind, name, times in (
            ("admission", "reject", tenant.rejected_times_s),
            ("admission", "deny", tenant.denied_times_s),
            ("fault", "shed", tenant.shed_times_s),
            ("fault", "abandon", tenant.abandoned_times_s),
            ("control", "replan", tenant.replan_times_s),
        ):
            extend(
                TraceEvent(t_s * 1000.0, track, kind, name)
                for t_s in _aslist(times)
            )


# ---------------------------------------------------------------------- #
# Chrome trace-event import
# ---------------------------------------------------------------------- #


def events_from_chrome(data: Dict) -> List[TraceEvent]:
    """Rebuild :class:`TraceEvent` records from a Chrome export.

    The inverse of :meth:`Tracer.to_chrome`, for offline analysis of a
    ``--trace-json`` artifact (``repro analyze --trace-json``).  Track
    names come from the ``thread_name`` metadata; span/instant timestamps
    go back through the microsecond division, so ``ts``/``dur`` may differ
    from the live trace by an ulp — but event **args** (where the parity
    anchors like ``latency_ms`` live) round-trip bit-exactly, since JSON
    serialises floats shortest-repr.  The returned list is canonically
    sorted.  A top-level ``provenance`` block, if present, is ignored.
    """
    threads: Dict[Tuple[int, int], str] = {}
    records = data.get("traceEvents")
    if not isinstance(records, list):
        raise ValueError("not a Chrome trace: missing 'traceEvents' list")
    for record in records:
        if record.get("ph") == "M" and record.get("name") == "thread_name":
            threads[(record["pid"], record["tid"])] = record["args"]["name"]
    events: List[TraceEvent] = []
    for record in records:
        ph = record.get("ph")
        if ph not in ("X", "i"):
            continue
        key = (record.get("pid"), record.get("tid"))
        track = threads.get(key)
        if track is None:
            raise ValueError(f"trace event on unnamed thread {key}: {record}")
        args = tuple(sorted((record.get("args") or {}).items()))
        events.append(
            TraceEvent(
                ts_ms=record["ts"] / 1000.0,
                track=track,
                kind=record.get("cat", ""),
                name=record["name"],
                dur_ms=record.get("dur", 0.0) / 1000.0 if ph == "X" else 0.0,
                args=args,
            )
        )
    return sorted(events)


__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "events_from_chrome",
    "trace_serving_report",
]
