"""Deterministic observability for the planner and serving stack.

Three independent parts, all opt-in and all zero-cost when off:

* :mod:`repro.obs.trace` — structured span/event records for the full
  request lifecycle (arrive → admit/deny/requeue → queue → dispatch →
  per-lane compute/send/recv segments → complete/retry/shed), the fault
  timeline (crash/leave/join) and the control plane (capacity probes,
  autoscale windows).  Events are timestamped on the **simulated** clock
  and canonically ordered, so a run's trace is a pure function of its
  committed schedule — which puts tracing *inside* the parity contract:
  reference, batched and array loops emit byte-identical traces
  (``run_with_parity`` asserts it).  Exportable as Chrome trace-event JSON
  (Perfetto-loadable; one track per device lane, one per tenant).
* :mod:`repro.obs.metrics` — a registry of counters / gauges /
  fixed-bucket histograms with deterministic snapshots and Prometheus
  text exposition export.
* :mod:`repro.obs.profile` — wall-clock section timers and hit counters
  around the hot paths (``evaluate_plans``, the ``(batch, devices)``
  sweep, shard dispatch/merge, array-engine epochs and speculation
  rollbacks, memo and cache hit/miss).  Profiling measures *this
  machine's* wall time and is explicitly **excluded** from parity.

The span taxonomy, metrics catalogue and Perfetto how-to live in
``docs/observability.md``.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
    record_serving_report,
)
from repro.obs.profile import NULL_PROFILER, NullProfiler, Profiler
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    trace_serving_report,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "record_serving_report",
    "NULL_PROFILER",
    "NullProfiler",
    "Profiler",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "trace_serving_report",
]
