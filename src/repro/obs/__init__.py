"""Deterministic observability for the planner and serving stack.

Capture (trace/metrics/profile) plus interpretation (analysis/slo), all
opt-in and all zero-cost when off:

* :mod:`repro.obs.trace` — structured span/event records for the full
  request lifecycle (arrive → admit/deny/requeue → queue → dispatch →
  per-lane compute/send/recv segments → complete/retry/shed), the fault
  timeline (crash/leave/join) and the control plane (capacity probes,
  autoscale windows).  Events are timestamped on the **simulated** clock
  and canonically ordered, so a run's trace is a pure function of its
  committed schedule — which puts tracing *inside* the parity contract:
  reference, batched and array loops emit byte-identical traces
  (``run_with_parity`` asserts it).  Exportable as Chrome trace-event JSON
  (Perfetto-loadable; one track per device lane, one per tenant).
* :mod:`repro.obs.metrics` — a registry of counters / gauges /
  fixed-bucket histograms with deterministic snapshots and Prometheus
  text exposition export.
* :mod:`repro.obs.analysis` — critical-path latency attribution: tiles
  every request's latency into gate / per-lane compute / send / recv /
  stall segments that telescope to the measured latency bit-exactly, with
  per-tenant rollups and a fleet bottleneck ranking (``repro analyze``).
* :mod:`repro.obs.slo` — deterministic SRE-style fast/slow burn-rate
  alerting over the committed report and windowed fleet load, emitting a
  canonical alert timeline that is part of the parity contract and feeds
  the autoscaler (``trigger="burn_rate"``) and degradation planning.
* :mod:`repro.obs.profile` — wall-clock section timers and hit counters
  around the hot paths (``evaluate_plans``, the ``(batch, devices)``
  sweep, shard dispatch/merge, array-engine epochs and speculation
  rollbacks, memo and cache hit/miss).  Profiling measures *this
  machine's* wall time and is explicitly **excluded** from parity.

The span taxonomy, metrics catalogue and Perfetto how-to live in
``docs/observability.md``.
"""

from repro.obs.analysis import (
    AnalysisError,
    AnalysisReport,
    RequestAttribution,
    analyze_chrome,
    analyze_events,
    analyze_serving,
    analyze_trace,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
    record_serving_report,
)
from repro.obs.profile import NULL_PROFILER, NullProfiler, Profiler
from repro.obs.slo import (
    DEFAULT_BURN_RULES,
    AlertEvent,
    AlertTimeline,
    BurnRateRule,
    SLOMonitor,
    shed_restore_plan,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    events_from_chrome,
    trace_serving_report,
)

__all__ = [
    "AnalysisError",
    "AnalysisReport",
    "RequestAttribution",
    "analyze_chrome",
    "analyze_events",
    "analyze_serving",
    "analyze_trace",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "MetricsRegistry",
    "record_serving_report",
    "NULL_PROFILER",
    "NullProfiler",
    "Profiler",
    "DEFAULT_BURN_RULES",
    "AlertEvent",
    "AlertTimeline",
    "BurnRateRule",
    "SLOMonitor",
    "shed_restore_plan",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "events_from_chrome",
    "trace_serving_report",
]
