"""Wall-clock profiling hooks for the hot paths.

Unlike tracing and metrics — which live on the simulated clock and inside
the parity contract — a :class:`Profiler` measures **this machine's wall
time** with ``perf_counter`` and is explicitly *excluded* from parity:
two bit-identical runs will profile differently, and that is fine.  What
the profiler answers is *where the wall time of a run went*: plan
evaluation, the ``(batch, devices)`` sweep, shard dispatch/merge,
array-engine epochs, speculation rollbacks, memo and cache hit rates.

Hot-path integration contract: instrumented objects hold a ``profiler``
attribute defaulting to :data:`NULL_PROFILER`, and guard any non-trivial
work behind ``profiler.enabled`` — so the off state costs one attribute
check and the hot loops stay bit-identical (the profiler never touches
simulated values).

``Profiler.format_table()`` renders the summary ``repro ... --profile``
prints; ``snapshot()`` is the machine-readable form.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List


class Profiler:
    """Accumulates named wall-clock sections and hit counters."""

    enabled = True

    def __init__(self) -> None:
        #: section name -> [calls, total seconds]
        self.sections: Dict[str, List[float]] = {}
        #: counter name -> count
        self.counters: Dict[str, int] = {}

    @contextmanager
    def section(self, name: str):
        """Time a ``with`` block under ``name`` (accumulating)."""
        start = perf_counter()
        try:
            yield
        finally:
            elapsed = perf_counter() - start
            entry = self.sections.get(name)
            if entry is None:
                self.sections[name] = [1, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Record pre-measured time (for call sites that cannot nest a
        context manager)."""
        entry = self.sections.get(name)
        if entry is None:
            self.sections[name] = [calls, seconds]
        else:
            entry[0] += calls
            entry[1] += seconds

    def count(self, name: str, n: int = 1) -> None:
        """Bump a hit counter (cache hits, rollbacks, memo hits...)."""
        self.counters[name] = self.counters.get(name, 0) + n

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict:
        """Machine-readable dump: sections (calls, seconds) and counters."""
        return {
            "sections": {
                name: {"calls": int(calls), "total_s": float(total)}
                for name, (calls, total) in sorted(self.sections.items())
            },
            "counters": {
                name: int(value) for name, value in sorted(self.counters.items())
            },
        }

    def format_table(self) -> str:
        """Human-readable summary (what ``--profile`` prints)."""
        lines = ["profile (wall clock; excluded from parity)"]
        if self.sections:
            width = max(len(name) for name in self.sections)
            lines.append(f"  {'section'.ljust(width)}  {'calls':>8}  {'total':>10}  {'mean':>10}")
            for name, (calls, total) in sorted(
                self.sections.items(), key=lambda kv: -kv[1][1]
            ):
                mean_ms = total / calls * 1000.0 if calls else 0.0
                lines.append(
                    f"  {name.ljust(width)}  {int(calls):>8}  {total:>9.3f}s  {mean_ms:>8.3f}ms"
                )
        if self.counters:
            width = max(len(name) for name in self.counters)
            lines.append("  counters:")
            for name, value in sorted(self.counters.items()):
                lines.append(f"  {name.ljust(width)}  {value:>8}")
        if not self.sections and not self.counters:
            lines.append("  (no instrumented work ran)")
        return "\n".join(lines)


class _NullSection:
    """Reusable no-op context manager (no allocation per use)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_SECTION = _NullSection()


class NullProfiler(Profiler):
    """The default profiler: every hook is a no-op."""

    enabled = False

    def __init__(self) -> None:
        self.sections = {}
        self.counters = {}

    def section(self, name: str):
        return _NULL_SECTION

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass


#: Shared no-op profiler (stateless, safe to share everywhere).
NULL_PROFILER = NullProfiler()


__all__ = ["Profiler", "NullProfiler", "NULL_PROFILER"]
