"""Deterministic SLO burn-rate alerting on the simulated clock.

Google-SRE-style multi-window burn-rate alerting, evaluated *inside the
simulation*: a :class:`SLOMonitor` replays a committed ``ServingReport``
on a fixed tick grid and emits a canonical :class:`AlertTimeline` — when
each rule started firing, at what fast/slow burn, and when it resolved.

The **burn rate** of a window is the tenant's effective miss fraction in
that window divided by its SLO target: burn 1.0 consumes the error budget
exactly at the allowed rate, burn 2.0 twice as fast.  A rule fires when
*both* a fast window (pages quickly on cliffs) and a slow window (guards
against one-tick blips) exceed its threshold, and resolves when the fast
window drops back below — the classic fast+slow pairing (e.g. 5m+1h in
wall-clock SRE practice; the defaults here are scaled to simulated-seconds
horizons).  "Miss" follows the same effective-miss convention as the
control plane (:func:`repro.serving.control.effective_miss_rate`): a
completion past its deadline, a predictive-admission denial, an abandoned
retry chain, or a shed arrival all burn budget.

Everything is a pure function of the committed report (plus its windowed
``FleetLoadSeries``, which feeds a fleet-pressure rule): like the derived
trace and the metrics snapshot, the alert timeline inherits the bit-exact
parity contract — ``run_with_parity(compare_analysis=True)`` asserts the
timelines byte-identical across the reference, batched and array loops.

Control-plane wiring: ``AutoscalerConfig(trigger="burn_rate")`` scales the
fleet on the same burn signal (see :mod:`repro.serving.control`), and
:func:`shed_restore_plan` turns page-severity firing intervals into an
advisory shed/restore schedule using the :class:`DegradationPolicy` shed
order.  The plan is advisory by design — in-run shedding must stay a pure
function of the churn trace, or the parity contract would tear.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, record_serving_report


@dataclass(frozen=True)
class BurnRateRule:
    """One fast+slow burn-rate alerting rule.

    Fires when both the ``fast_window_s`` and ``slow_window_s`` trailing
    burn rates reach ``threshold``; resolves when the fast burn drops
    below.  ``severity`` is ``"page"`` (wake someone up — and eligible for
    :func:`shed_restore_plan`) or ``"ticket"``.
    """

    name: str
    fast_window_s: float
    slow_window_s: float
    threshold: float
    severity: str = "page"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("rule name must be non-empty")
        if self.fast_window_s <= 0 or self.slow_window_s <= 0:
            raise ValueError(
                f"windows must be > 0, got fast={self.fast_window_s} "
                f"slow={self.slow_window_s}"
            )
        if self.fast_window_s > self.slow_window_s:
            raise ValueError(
                f"fast window ({self.fast_window_s}s) must not exceed the "
                f"slow window ({self.slow_window_s}s)"
            )
        if self.threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {self.threshold}")
        if self.severity not in ("page", "ticket"):
            raise ValueError(
                f"severity must be 'page' or 'ticket', got {self.severity!r}"
            )


#: The stock fast/slow pairing, scaled to simulated-seconds horizons: a
#: tight window at high burn pages, a wide window at budget-rate files a
#: ticket (the 5m+1h / 6h+3d ladder of SRE practice, compressed).
DEFAULT_BURN_RULES: Tuple[BurnRateRule, ...] = (
    BurnRateRule("fast_burn", 5.0, 30.0, 2.0, "page"),
    BurnRateRule("slow_burn", 30.0, 120.0, 1.0, "ticket"),
)

#: Rule name used for the fleet-pressure (utilization) alert.
FLEET_PRESSURE_RULE = "fleet_pressure"


@dataclass(frozen=True)
class AlertEvent:
    """One alert transition: a rule started or stopped firing on a scope."""

    t_s: float
    scope: str  # "tenant:<name>" or "fleet"
    rule: str
    severity: str
    state: str  # "firing" | "resolved"
    fast_burn: float
    slow_burn: float

    def to_line(self) -> str:
        """Canonical byte serialisation (floats via ``repr``)."""
        return " ".join(
            [
                repr(float(self.t_s)),
                self.scope,
                self.rule,
                self.severity,
                self.state,
                repr(float(self.fast_burn)),
                repr(float(self.slow_burn)),
            ]
        )

    def to_dict(self) -> Dict:
        return {
            "t_s": float(self.t_s),
            "scope": self.scope,
            "rule": self.rule,
            "severity": self.severity,
            "state": self.state,
            "fast_burn": float(self.fast_burn),
            "slow_burn": float(self.slow_burn),
        }


class FiringInterval(NamedTuple):
    """A closed firing window of one rule on one scope."""

    start_s: float
    end_s: float
    scope: str
    rule: str
    severity: str


class AlertTimeline:
    """The canonical output of one :meth:`SLOMonitor.evaluate` pass."""

    def __init__(
        self,
        rules: Tuple[BurnRateRule, ...],
        tick_s: float,
        start_s: float,
        end_s: float,
        events: List[AlertEvent],
        tenant_summary: Dict[str, Dict],
    ) -> None:
        self.rules = rules
        self.tick_s = tick_s
        self.start_s = start_s
        self.end_s = end_s
        self.events = events
        #: Per-tenant budget summary: target, served/miss counters and the
        #: histogram-estimated p95/p99 response times.
        self.tenant_summary = tenant_summary

    @property
    def num_firing(self) -> int:
        return sum(1 for e in self.events if e.state == "firing")

    @property
    def firing_at_end(self) -> List[Tuple[str, str]]:
        """(scope, rule) pairs still firing when the run ended."""
        open_alerts: Dict[Tuple[str, str], AlertEvent] = {}
        for event in self.events:
            key = (event.scope, event.rule)
            if event.state == "firing":
                open_alerts[key] = event
            else:
                open_alerts.pop(key, None)
        return sorted(open_alerts)

    def firing_intervals(
        self, severity: Optional[str] = None, scope: Optional[str] = None
    ) -> List[FiringInterval]:
        """Closed firing windows (open alerts close at ``end_s``), filtered."""
        open_alerts: Dict[Tuple[str, str], AlertEvent] = {}
        intervals: List[FiringInterval] = []
        for event in self.events:
            key = (event.scope, event.rule)
            if event.state == "firing":
                open_alerts[key] = event
            else:
                started = open_alerts.pop(key, None)
                if started is not None:
                    intervals.append(
                        FiringInterval(
                            started.t_s, event.t_s, event.scope, event.rule,
                            event.severity,
                        )
                    )
        for (scope_name, rule), started in sorted(open_alerts.items()):
            intervals.append(
                FiringInterval(
                    started.t_s, self.end_s, scope_name, rule, started.severity
                )
            )
        intervals.sort()
        if severity is not None:
            intervals = [i for i in intervals if i.severity == severity]
        if scope is not None:
            intervals = [i for i in intervals if i.scope == scope]
        return intervals

    def lines(self) -> List[str]:
        """Canonical byte serialisation — the parity-contract form.

        Two timelines compare equal exactly when every transition happened
        at the same tick with the same burn bits.
        """
        return [event.to_line() for event in self.events]

    def to_dict(self) -> Dict:
        return {
            "tick_s": float(self.tick_s),
            "start_s": float(self.start_s),
            "end_s": float(self.end_s),
            "rules": [
                {
                    "name": rule.name,
                    "fast_window_s": float(rule.fast_window_s),
                    "slow_window_s": float(rule.slow_window_s),
                    "threshold": float(rule.threshold),
                    "severity": rule.severity,
                }
                for rule in self.rules
            ],
            "num_events": len(self.events),
            "num_firing": self.num_firing,
            "firing_at_end": [list(pair) for pair in self.firing_at_end],
            "events": [event.to_dict() for event in self.events],
            "tenants": self.tenant_summary,
        }


class _MissStream:
    """One tenant's effective-miss events as bisectable prefix sums."""

    __slots__ = ("times", "bad_prefix", "target")

    def __init__(self, samples: List[Tuple[float, int]], target: float) -> None:
        samples.sort()
        self.times = [t for t, _ in samples]
        prefix = [0]
        for _, bad in samples:
            prefix.append(prefix[-1] + bad)
        self.bad_prefix = prefix
        self.target = target

    def burn(self, t_s: float, window_s: float) -> float:
        """Burn rate of the trailing window ``(t_s - window_s, t_s]``."""
        hi = bisect_right(self.times, t_s)
        lo = bisect_right(self.times, t_s - window_s)
        total = hi - lo
        if total == 0:
            return 0.0
        bad = self.bad_prefix[hi] - self.bad_prefix[lo]
        return (bad / total) / self.target


class SLOMonitor:
    """Evaluates burn-rate rules over a committed report, deterministically.

    ``tick_s`` is the evaluation grid on the simulated clock; every
    transition lands exactly on a tick (fleet-pressure transitions land on
    ``FleetLoadSeries`` window edges), so the timeline is reproducible to
    the byte.  ``default_target`` stands in for tenants whose SLO pins
    ``target_miss_rate=0.0`` — a zero-budget SLO has no finite burn rate,
    so the monitor treats it as this budget instead.
    ``utilization_threshold`` arms the fleet-pressure rule on the windowed
    mean compute utilization of the ``FleetLoadSeries``.
    """

    def __init__(
        self,
        rules: Sequence[BurnRateRule] = DEFAULT_BURN_RULES,
        tick_s: float = 1.0,
        default_target: float = 0.05,
        utilization_threshold: float = 0.9,
    ) -> None:
        rules = tuple(rules)
        if not rules:
            raise ValueError("need at least one burn-rate rule")
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names: {names}")
        if FLEET_PRESSURE_RULE in names:
            raise ValueError(f"rule name {FLEET_PRESSURE_RULE!r} is reserved")
        if tick_s <= 0:
            raise ValueError(f"tick_s must be > 0, got {tick_s}")
        if not 0.0 < default_target <= 1.0:
            raise ValueError(
                f"default_target must be in (0, 1], got {default_target}"
            )
        if utilization_threshold <= 0:
            raise ValueError(
                f"utilization_threshold must be > 0, got {utilization_threshold}"
            )
        self.rules = rules
        self.tick_s = float(tick_s)
        self.default_target = float(default_target)
        self.utilization_threshold = float(utilization_threshold)

    # ------------------------------------------------------------------ #
    def _streams(self, report) -> Tuple[Dict[str, _MissStream], float]:
        streams: Dict[str, _MissStream] = {}
        end_s = report.start_s
        for tenant in report.tenants:
            if tenant.slo is None:
                continue
            target = tenant.slo.target_miss_rate or self.default_target
            samples: List[Tuple[float, int]] = []
            for t_s, missed in zip(
                tenant.completion_s.tolist(), tenant.deadline_missed.tolist()
            ):
                samples.append((t_s, 1 if missed else 0))
            for times in (
                tenant.denied_times_s,
                tenant.abandoned_times_s,
                tenant.shed_times_s,
            ):
                samples.extend((float(t_s), 1) for t_s in times)
            if not samples:
                continue
            streams[tenant.name] = _MissStream(samples, target)
            end_s = max(end_s, streams[tenant.name].times[-1])
        return streams, end_s

    def evaluate(self, report, tracer=None) -> AlertTimeline:
        """Replay the report through the rules; returns the alert timeline.

        Pass the run's ``tracer`` to also land each transition as an
        instant on the ``control:slo`` track of the trace.
        """
        streams, end_s = self._streams(report)
        start_s = report.start_s
        events: List[AlertEvent] = []
        firing: Dict[Tuple[str, str], bool] = {}

        num_ticks = (
            int(math.ceil((end_s - start_s) / self.tick_s)) if end_s > start_s else 0
        )
        for k in range(1, num_ticks + 1):
            t_s = start_s + k * self.tick_s
            for name in sorted(streams):
                stream = streams[name]
                scope = f"tenant:{name}"
                for rule in self.rules:
                    fast = stream.burn(t_s, rule.fast_window_s)
                    slow = stream.burn(t_s, rule.slow_window_s)
                    key = (scope, rule.name)
                    if not firing.get(key):
                        if fast >= rule.threshold and slow >= rule.threshold:
                            firing[key] = True
                            events.append(
                                AlertEvent(
                                    t_s, scope, rule.name, rule.severity,
                                    "firing", fast, slow,
                                )
                            )
                    elif fast < rule.threshold:
                        firing[key] = False
                        events.append(
                            AlertEvent(
                                t_s, scope, rule.name, rule.severity,
                                "resolved", fast, slow,
                            )
                        )

        # Fleet pressure over the windowed load series: the mean compute
        # utilization of each window, evaluated at the window's right edge.
        series = report.fleet.series if report.fleet is not None else None
        if series is not None and series.num_windows:
            key = ("fleet", FLEET_PRESSURE_RULE)
            for window, util in enumerate(series.mean_utilization("compute").tolist()):
                t_s = (window + 1) * series.window_ms / 1000.0
                end_s = max(end_s, t_s)
                if not firing.get(key):
                    if util >= self.utilization_threshold:
                        firing[key] = True
                        events.append(
                            AlertEvent(
                                t_s, "fleet", FLEET_PRESSURE_RULE, "ticket",
                                "firing", util, util,
                            )
                        )
                elif util < self.utilization_threshold:
                    firing[key] = False
                    events.append(
                        AlertEvent(
                            t_s, "fleet", FLEET_PRESSURE_RULE, "ticket",
                            "resolved", util, util,
                        )
                    )
        events.sort(key=lambda e: (e.t_s, e.scope, e.rule))

        if tracer is not None and getattr(tracer, "enabled", False):
            for event in events:
                tracer.instant(
                    event.t_s * 1000.0,
                    "control:slo",
                    "alert",
                    event.rule,
                    scope=event.scope,
                    severity=event.severity,
                    state=event.state,
                    fast_burn=event.fast_burn,
                    slow_burn=event.slow_burn,
                )

        return AlertTimeline(
            rules=self.rules,
            tick_s=self.tick_s,
            start_s=start_s,
            end_s=end_s,
            events=events,
            tenant_summary=self._tenant_summary(report, streams),
        )

    def _tenant_summary(
        self, report, streams: Dict[str, _MissStream]
    ) -> Dict[str, Dict]:
        registry = record_serving_report(MetricsRegistry(), report)
        summary: Dict[str, Dict] = {}
        for tenant in report.tenants:
            if tenant.slo is None:
                continue
            stream = streams.get(tenant.name)
            entry: Dict = {
                "target_miss_rate": (
                    tenant.slo.target_miss_rate or self.default_target
                ),
                "served": len(stream.times) if stream is not None else 0,
                "bad": stream.bad_prefix[-1] if stream is not None else 0,
                "p95_ms": None,
                "p99_ms": None,
            }
            if tenant.num_completed:
                entry["p95_ms"] = registry.quantile(
                    "repro_response_ms", 95, tenant=tenant.name
                )
                entry["p99_ms"] = registry.quantile(
                    "repro_response_ms", 99, tenant=tenant.name
                )
            summary[tenant.name] = entry
        return summary


class ShedWindow(NamedTuple):
    """Advisory shed interval: which tenants to shed, and when to restore."""

    start_s: float
    end_s: float
    tenants: Tuple[int, ...]

    def to_dict(self) -> Dict:
        return {
            "start_s": float(self.start_s),
            "end_s": float(self.end_s),
            "tenants": list(self.tenants),
        }


def shed_restore_plan(
    timeline: AlertTimeline,
    weights: Sequence[float],
    policy,
    shed_fraction: float = 0.25,
) -> List[ShedWindow]:
    """Turn page-severity firing intervals into a shed/restore schedule.

    While *any* page-severity rule is firing, the plan recommends shedding
    the ``shed_fraction`` lowest-weight tenants — in exactly the
    :meth:`DegradationPolicy.shed_order` preference the capacity-loss path
    uses, so burn-driven and churn-driven shedding always agree on who
    goes first.  Restore is the moment the last overlapping page resolves.
    Advisory by construction: applying it mid-run would make admission a
    function of its own outcome and break the bit-exact parity contract,
    so the operator (or the autoscaler, via ``trigger="burn_rate"``) acts
    on it out of band.
    """
    if not 0.0 < shed_fraction <= 1.0:
        raise ValueError(f"shed_fraction must be in (0, 1], got {shed_fraction}")
    if len(weights) <= 1:
        return []
    order = policy.shed_order(weights)
    count = min(
        max(1, int(math.ceil(shed_fraction * len(weights)))), len(weights) - 1
    )
    victims = tuple(order[:count])
    pages = timeline.firing_intervals(severity="page")
    plan: List[ShedWindow] = []
    for interval in pages:
        if plan and interval.start_s <= plan[-1].end_s:
            plan[-1] = plan[-1]._replace(
                end_s=max(plan[-1].end_s, interval.end_s)
            )
        else:
            plan.append(ShedWindow(interval.start_s, interval.end_s, victims))
    return plan


__all__ = [
    "DEFAULT_BURN_RULES",
    "FLEET_PRESSURE_RULE",
    "AlertEvent",
    "AlertTimeline",
    "BurnRateRule",
    "FiringInterval",
    "SLOMonitor",
    "ShedWindow",
    "shed_restore_plan",
]
