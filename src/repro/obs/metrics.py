"""Deterministic metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` holds named metric families; each family holds
one series per label combination.  Everything is designed so two runs that
commit the same schedule produce byte-identical snapshots:

* Histogram buckets are **fixed at declaration** — no adaptive resizing,
  so bucket counts are pure functions of the observed values.
* :meth:`MetricsRegistry.snapshot` and :meth:`MetricsRegistry.to_prometheus`
  sort families by name and series by label values, so registration and
  observation order never matter.
* Values are plain Python ints/floats; sums use sequential addition in
  observation order — the serving integration (:func:`record_serving_report`)
  only feeds it data derived from the committed report, in report order.

The exposition format follows the Prometheus text format (``# HELP`` /
``# TYPE`` headers, ``metric{label="v"} value`` series, histogram
``_bucket``/``_sum``/``_count`` triples with a ``+Inf`` bucket), so the
output of ``repro serve --metrics-json`` (JSON snapshot) has a 1:1 textual
sibling for scrape-style consumption.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

#: Default fixed buckets for millisecond latency histograms (upper bounds).
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> str:
    if not name or not set(name) <= _NAME_OK or name[0].isdigit():
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _label_key(
    label_names: Tuple[str, ...], labels: Dict[str, str]
) -> Tuple[str, ...]:
    if set(labels) != set(label_names):
        raise ValueError(
            f"labels {sorted(labels)} do not match declared {sorted(label_names)}"
        )
    return tuple(str(labels[name]) for name in label_names)


def _render_labels(label_names: Tuple[str, ...], key: Tuple[str, ...]) -> str:
    if not label_names:
        return ""
    body = ",".join(
        f'{name}="{value}"' for name, value in zip(label_names, key)
    )
    return "{" + body + "}"


class Counter:
    """Monotonically increasing sum per label combination."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, label_names: Tuple[str, ...]):
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self.series: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        key = _label_key(self.label_names, labels)
        self.series[key] = self.series.get(key, 0.0) + amount


class Gauge:
    """Last-set value per label combination."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, label_names: Tuple[str, ...]):
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self.series: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        self.series[_label_key(self.label_names, labels)] = float(value)


class Histogram:
    """Fixed-bucket cumulative histogram per label combination."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Tuple[str, ...],
        buckets: Sequence[float],
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram buckets must be strictly increasing and non-empty, "
                f"got {buckets!r}"
            )
        self.name = name
        self.help = help_text
        self.label_names = label_names
        self.buckets = bounds
        # key -> (per-bucket counts (+Inf last), sum, count)
        self.series: Dict[Tuple[str, ...], Tuple[List[int], float, int]] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(self.label_names, labels)
        entry = self.series.get(key)
        if entry is None:
            entry = ([0] * (len(self.buckets) + 1), 0.0, 0)
        counts, total, n = entry
        value = float(value)
        placed = len(self.buckets)  # +Inf bucket by default
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                placed = i
                break
        counts[placed] += 1
        self.series[key] = (counts, total + value, n + 1)

    def observe_many(self, values: Sequence[float], **labels: str) -> None:
        """Observe a batch of values — bit-identical to ``observe`` in a loop.

        One label lookup for the whole batch; bucket placement via
        ``bisect_left`` (first bound ``>= value`` — the same bucket the
        scalar ``value <= bound`` scan picks) and the sum accumulated by
        sequential addition in observation order, so the resulting series
        is byte-identical to per-value ``observe`` calls, just cheaper.
        """
        tolist = getattr(values, "tolist", None)
        values = tolist() if tolist is not None else [float(v) for v in values]
        if not values:
            return
        key = _label_key(self.label_names, labels)
        entry = self.series.get(key)
        if entry is None:
            entry = ([0] * (len(self.buckets) + 1), 0.0, 0)
        counts, total, n = entry
        buckets = self.buckets
        for value in values:
            counts[bisect_left(buckets, value)] += 1
            total += value
        self.series[key] = (counts, total, n + len(values))

    def _order_statistic(self, counts: List[int], rank: int) -> float:
        """The ``rank``-th (0-based) observation, reconstructed from buckets.

        Every observation is represented by its bucket's upper bound;
        ``+Inf`` observations clamp to the last finite bound (the estimator
        cannot see past its widest bucket).
        """
        cumulative = 0
        for i, count in enumerate(counts):
            cumulative += count
            if rank < cumulative:
                return self.buckets[min(i, len(self.buckets) - 1)]
        return self.buckets[-1]

    def quantile(self, q: float, **labels: str) -> float:
        """Deterministic quantile estimate from the fixed buckets.

        Observations are reconstructed at their bucket upper bounds and the
        estimate linearly interpolates between the two bracketing order
        statistics, mirroring numpy's ``linear`` method exactly:
        ``h = (n - 1) * q / 100`` and the same two-sided lerp numpy uses.
        When every observation sits exactly on a bucket bound the estimate
        equals ``numpy.percentile`` bit for bit (unit-tested); otherwise it
        is biased toward the bucket upper bound, like any fixed-bucket
        estimator.  ``q`` is in percent (95 for p95).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile must be in [0, 100], got {q}")
        key = _label_key(self.label_names, labels)
        entry = self.series.get(key)
        if entry is None:
            raise KeyError(f"no series {labels!r} in histogram {self.name!r}")
        counts, _, n = entry
        h = (n - 1) * (q / 100.0)
        lo = int(h)
        t = h - lo
        lower = self._order_statistic(counts, lo)
        if t == 0.0:
            return lower
        upper = self._order_statistic(counts, lo + 1)
        if t >= 0.5:  # numpy's two-sided lerp, for bit-exact agreement
            return upper - (upper - lower) * (1.0 - t)
        return lower + (upper - lower) * t


class MetricsRegistry:
    """A named collection of metric families with deterministic export."""

    def __init__(self) -> None:
        self._families: Dict[str, object] = {}

    def _register(self, metric):
        existing = self._families.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric) or existing.label_names != metric.label_names:
                raise ValueError(
                    f"metric {metric.name!r} already registered with a "
                    "different type or label set"
                )
            return existing
        self._families[metric.name] = metric
        return metric

    def counter(
        self, name: str, help_text: str = "", label_names: Sequence[str] = ()
    ) -> Counter:
        return self._register(
            Counter(_check_name(name), help_text, tuple(label_names))
        )

    def gauge(
        self, name: str, help_text: str = "", label_names: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge(_check_name(name), help_text, tuple(label_names)))

    def histogram(
        self,
        name: str,
        help_text: str = "",
        label_names: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        return self._register(
            Histogram(_check_name(name), help_text, tuple(label_names), buckets)
        )

    def quantile(self, name: str, q: float, **labels: str) -> float:
        """Quantile estimate from a registered histogram family.

        Convenience over :meth:`Histogram.quantile` so alert rules can ask
        for ``registry.quantile("repro_response_ms", 99, tenant=...)``
        without re-deriving percentiles from raw latencies.
        """
        family = self._families.get(name)
        if family is None or family.kind != "histogram":
            raise KeyError(f"no histogram family {name!r} registered")
        return family.quantile(q, **labels)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict:
        """Deterministic nested-dict dump (families and series sorted)."""
        out: Dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            entry: Dict = {
                "type": family.kind,
                "help": family.help,
                "label_names": list(family.label_names),
            }
            if family.kind == "histogram":
                entry["buckets"] = list(family.buckets)
                entry["series"] = {
                    "|".join(key): {
                        "counts": list(counts),
                        "sum": float(total),
                        "count": int(n),
                    }
                    for key, (counts, total, n) in sorted(family.series.items())
                }
            else:
                entry["series"] = {
                    "|".join(key): float(value)
                    for key, value in sorted(family.series.items())
                }
            out[name] = entry
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every family (sorted, trailing \\n)."""
        lines: List[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            if family.kind == "histogram":
                for key, (counts, total, n) in sorted(family.series.items()):
                    cumulative = 0
                    for bound, count in zip(family.buckets, counts):
                        cumulative += count
                        labels = _render_labels(
                            family.label_names + ("le",), key + (f"{bound:g}",)
                        )
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    cumulative += counts[-1]
                    labels = _render_labels(
                        family.label_names + ("le",), key + ("+Inf",)
                    )
                    lines.append(f"{name}_bucket{labels} {cumulative}")
                    plain = _render_labels(family.label_names, key)
                    lines.append(f"{name}_sum{plain} {total!r}")
                    lines.append(f"{name}_count{plain} {n}")
            else:
                for key, value in sorted(family.series.items()):
                    labels = _render_labels(family.label_names, key)
                    rendered = int(value) if float(value).is_integer() else repr(value)
                    lines.append(f"{name}{labels} {rendered}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------- #
# serving integration
# ---------------------------------------------------------------------- #


def record_serving_report(
    registry: MetricsRegistry,
    report,
    buckets: Optional[Sequence[float]] = None,
) -> MetricsRegistry:
    """Populate the standard serving metrics from a committed report.

    A pure function of the ``ServingReport`` (observations happen in report
    order), so — like the derived trace — the metrics inherit the parity
    contract instead of needing their own.  The metric catalogue is
    documented in ``docs/observability.md``.
    """
    buckets = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS_MS
    arrivals = registry.counter(
        "repro_requests_arrived_total", "Requests that arrived", ("tenant",)
    )
    completed = registry.counter(
        "repro_requests_completed_total", "Requests served to completion", ("tenant",)
    )
    outcomes = registry.counter(
        "repro_requests_dropped_total",
        "Requests dropped, by outcome (rejected/denied/shed/abandoned)",
        ("tenant", "outcome"),
    )
    retried = registry.counter(
        "repro_requests_retried_total", "Requests that needed at least one retry",
        ("tenant",),
    )
    missed = registry.counter(
        "repro_deadline_missed_total", "Completed requests past their SLO deadline",
        ("tenant",),
    )
    response = registry.histogram(
        "repro_response_ms", "End-to-end response time (ms)", ("tenant",),
        buckets=buckets,
    )
    latency = registry.histogram(
        "repro_latency_ms", "Service latency (ms)", ("tenant",), buckets=buckets
    )
    depth = registry.gauge(
        "repro_max_queue_depth", "Peak per-tenant queue depth", ("tenant",)
    )
    for tenant in report.tenants:
        name = tenant.name
        arrivals.inc(tenant.num_arrivals, tenant=name)
        completed.inc(tenant.num_completed, tenant=name)
        for outcome, count in (
            ("rejected", tenant.num_rejected),
            ("denied", tenant.num_denied),
            ("shed", tenant.num_shed),
            ("abandoned", tenant.num_abandoned),
        ):
            if count:
                outcomes.inc(count, tenant=name, outcome=outcome)
        if tenant.num_retried:
            retried.inc(tenant.num_retried, tenant=name)
        if tenant.slo is not None:
            missed.inc(int(tenant.deadline_missed.sum()), tenant=name)
        response.observe_many(tenant.response_ms, tenant=name)
        latency.observe_many(tenant.latency_ms, tenant=name)
        depth.set(int(tenant.max_queue_depth), tenant=name)
    run = registry.gauge("repro_run_info", "Run-level aggregates", ("field",))
    run.set(report.epochs, field="epochs")
    run.set(report.cache_hits, field="cache_hits")
    run.set(report.speculated, field="speculated")
    run.set(report.total_completed, field="total_completed")
    run.set(report.throughput_rps, field="throughput_rps")
    run.set(report.deadline_miss_rate, field="deadline_miss_rate")
    if report.fleet is not None:
        gate = registry.gauge(
            "repro_fleet_gate_wait_ms", "Total admission-gate wait (ms)", ()
        )
        gate.set(report.fleet.gate_wait_ms)
        contended = registry.gauge(
            "repro_fleet_contended_requests", "Requests that queued on a lane", ()
        )
        contended.set(report.fleet.contended_requests)
    if report.faults is not None:
        fault_info = registry.gauge(
            "repro_fault_info", "Churn outcome aggregates", ("field",)
        )
        fault_info.set(report.faults.lost_attempts, field="lost_attempts")
        fault_info.set(report.faults.live_at_end, field="live_at_end")
    return registry


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "record_serving_report",
]
