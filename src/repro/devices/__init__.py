"""Edge-device models: catalogue, nonlinear latency models, profiler.

The paper's testbed uses four device types — Raspberry Pi 3, NVIDIA Jetson
Nano, Jetson TX2 and Jetson Xavier — whose computing-latency behaviour versus
layer configuration is *nonlinear* (Fig. 14; FastDeepIoT).  This subpackage
replaces the physical boards with parametric latency models that preserve
that character, plus a profiler producing the same artefacts (lookup tables
or regression models) that the paper's controller consumes.
"""

from repro.devices.specs import (
    DEVICE_CATALOG,
    DeviceInstance,
    DeviceType,
    get_device_type,
    make_cluster,
)
from repro.devices.latency_model import (
    ComputeLatencyModel,
    layer_compute_latency_ms,
    part_compute_latency_ms,
    volume_compute_latency_ms,
)
from repro.devices.profiler import LatencyProfiler, ProfiledLatency
from repro.devices.profiles import (
    DeviceCapability,
    KNNProfile,
    LatencyProfile,
    LinearProfile,
    PiecewiseLinearProfile,
    TabularProfile,
    estimate_capability,
)

__all__ = [
    "DeviceType",
    "DeviceInstance",
    "DEVICE_CATALOG",
    "get_device_type",
    "make_cluster",
    "ComputeLatencyModel",
    "layer_compute_latency_ms",
    "part_compute_latency_ms",
    "volume_compute_latency_ms",
    "LatencyProfiler",
    "ProfiledLatency",
    "LatencyProfile",
    "TabularProfile",
    "LinearProfile",
    "PiecewiseLinearProfile",
    "KNNProfile",
    "DeviceCapability",
    "estimate_capability",
]
