"""Latency profiling, mirroring the paper's measurement procedure.

Section V-A: *"we profile the computing latency on each type of device ...
against the height of each layer in a CNN model (granularity as 1) ...  Each
measurement point is repeated 100 times, and we then compute the mean values
as the profiled latencies."*

:class:`LatencyProfiler` reproduces that procedure against the simulated
devices: for every layer of a model and every candidate output height it
"measures" the compute latency (ground-truth model plus multiplicative
measurement noise), repeats, and averages.  The result feeds the profile
representations in :mod:`repro.devices.profiles`, which is the only view of
device behaviour the planners get — planners never touch the ground-truth
latency model directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.devices.latency_model import ComputeLatencyModel
from repro.devices.specs import DeviceType
from repro.nn.graph import ModelSpec
from repro.nn.layers import LayerSpec
from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class ProfiledLatency:
    """Mean measured latency for one (layer, output-rows) point."""

    layer_name: str
    out_rows: int
    latency_ms: float
    repeats: int


class LatencyProfiler:
    """Profiles compute latency of a model's layers on a device type.

    Parameters
    ----------
    dtype:
        The device type to profile.
    noise_std:
        Relative standard deviation of the multiplicative measurement noise
        applied to each individual measurement (defaults to 2%, in line with
        the jitter of repeated TensorRT profiler runs).
    repeats:
        Number of repetitions averaged per point (paper: 100).
    seed:
        Seed for the measurement noise.
    """

    def __init__(
        self,
        dtype: DeviceType,
        noise_std: float = 0.02,
        repeats: int = 100,
        seed: SeedLike = 0,
    ) -> None:
        if noise_std < 0:
            raise ValueError(f"noise_std must be >= 0, got {noise_std}")
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        self.dtype = dtype
        self.noise_std = float(noise_std)
        self.repeats = int(repeats)
        self._rng = as_rng(seed)
        self._oracle = ComputeLatencyModel(dtype)

    # ------------------------------------------------------------------ #
    def measure_layer(self, layer: LayerSpec, out_rows: int) -> ProfiledLatency:
        """Measure one (layer, rows) point: mean of ``repeats`` noisy samples."""
        true_ms = self._oracle.layer(layer, out_rows)
        if self.noise_std == 0 or true_ms == 0:
            mean = true_ms
        else:
            noise = self._rng.normal(1.0, self.noise_std, size=self.repeats)
            # Latency cannot be negative no matter how noisy the measurement.
            samples = np.maximum(true_ms * noise, 0.0)
            mean = float(samples.mean())
        return ProfiledLatency(
            layer_name=layer.name,
            out_rows=int(out_rows),
            latency_ms=float(mean),
            repeats=self.repeats,
        )

    def profile_layer(
        self,
        layer: LayerSpec,
        heights: Optional[Sequence[int]] = None,
    ) -> List[ProfiledLatency]:
        """Profile a layer across output heights.

        ``heights=None`` profiles every height from 1 to the layer's full
        output height (granularity 1, as in the paper).  Passing an explicit
        list of heights supports the coarser grids used in the fast test
        configurations.
        """
        if not layer.is_spatial:
            return [self.measure_layer(layer, 1)]
        if heights is None:
            heights = range(1, layer.out_h + 1)
        points: List[ProfiledLatency] = []
        for h in heights:
            if h < 1 or h > layer.out_h:
                continue
            points.append(self.measure_layer(layer, int(h)))
        return points

    def profile_model(
        self,
        model: ModelSpec,
        heights_per_layer: Optional[int] = None,
    ) -> Dict[str, List[ProfiledLatency]]:
        """Profile every spatial layer of a model.

        ``heights_per_layer`` limits the number of measured heights per layer
        (an evenly spaced grid including 1 and the full height); ``None``
        profiles every height, as the paper does.
        """
        results: Dict[str, List[ProfiledLatency]] = {}
        for layer in model.spatial_layers:
            if heights_per_layer is None or heights_per_layer >= layer.out_h:
                heights: Optional[Sequence[int]] = None
            else:
                heights = np.unique(
                    np.linspace(1, layer.out_h, heights_per_layer).round().astype(int)
                )
            results[layer.name] = self.profile_layer(layer, heights)
        return results


__all__ = ["LatencyProfiler", "ProfiledLatency"]
