"""Device-type catalogue and device instances.

Each :class:`DeviceType` captures the parameters of the nonlinear compute
latency model (see :mod:`repro.devices.latency_model`):

* ``peak_macs_per_s`` — sustained multiply-accumulate throughput of the
  accelerator at full occupancy (calibrated so that whole-model VGG-16
  latencies reproduce the ordering Pi3 ≪ Nano < TX2 < Xavier reported by the
  NVIDIA Jetson benchmarks the paper cites),
* ``tile_rows`` — the row-granularity at which the accelerator schedules
  work; output heights are effectively padded up to a multiple of this tile,
  which is the source of the staircase nonlinearity in Fig. 14,
* ``launch_overhead_ms`` — fixed per-layer kernel launch / scheduling cost,
* ``mem_bandwidth_bytes_per_s`` — memory bandwidth for the roofline term.

The catalogue values are *calibration constants of the simulation*, not
measurements of real boards; EXPERIMENTS.md discusses how they were chosen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.utils.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class DeviceType:
    """Static description of an edge-device model (e.g. Jetson Xavier)."""

    name: str
    kind: str  # "gpu" or "cpu"
    peak_macs_per_s: float
    tile_rows: int
    launch_overhead_ms: float
    mem_bandwidth_bytes_per_s: float
    #: Memory available for activations/weights (bytes); the paper argues
    #: memory is never the binding constraint on these devices, but the value
    #: is tracked so the runtime can assert that assumption.
    memory_bytes: float = 4e9

    def __post_init__(self) -> None:
        if self.kind not in ("gpu", "cpu"):
            raise ValueError(f"kind must be 'gpu' or 'cpu', got {self.kind!r}")
        check_positive(self.peak_macs_per_s, "peak_macs_per_s")
        check_positive(self.tile_rows, "tile_rows")
        check_non_negative(self.launch_overhead_ms, "launch_overhead_ms")
        check_positive(self.mem_bandwidth_bytes_per_s, "mem_bandwidth_bytes_per_s")
        check_positive(self.memory_bytes, "memory_bytes")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Catalogue of the paper's four device types.  Throughputs are calibrated so
#: that single-device VGG-16 backbone latency reproduces the ordering and
#: rough ratios of the paper's testbed, where each layer runs as its own
#: TensorRT engine orchestrated from Python (slower than a fused
#: whole-network engine): Xavier ~50 ms, TX2 ~140 ms, Nano ~280 ms, Pi3 ~6 s.
DEVICE_CATALOG: Dict[str, DeviceType] = {
    "pi3": DeviceType(
        name="pi3",
        kind="cpu",
        peak_macs_per_s=2.5e9,
        tile_rows=1,
        launch_overhead_ms=0.80,
        mem_bandwidth_bytes_per_s=2.0e9,
        memory_bytes=1e9,
    ),
    "nano": DeviceType(
        name="nano",
        kind="gpu",
        peak_macs_per_s=5.5e10,
        tile_rows=8,
        launch_overhead_ms=0.20,
        mem_bandwidth_bytes_per_s=1.2e10,
        memory_bytes=4e9,
    ),
    "tx2": DeviceType(
        name="tx2",
        kind="gpu",
        peak_macs_per_s=1.1e11,
        tile_rows=16,
        launch_overhead_ms=0.15,
        mem_bandwidth_bytes_per_s=2.5e10,
        memory_bytes=8e9,
    ),
    "xavier": DeviceType(
        name="xavier",
        kind="gpu",
        peak_macs_per_s=3.1e11,
        tile_rows=16,
        launch_overhead_ms=0.10,
        mem_bandwidth_bytes_per_s=5.0e10,
        memory_bytes=16e9,
    ),
}


def get_device_type(name: str) -> DeviceType:
    """Look up a device type by name (case-insensitive)."""
    key = name.lower()
    try:
        return DEVICE_CATALOG[key]
    except KeyError:
        raise KeyError(
            f"unknown device type {name!r}; known types: {', '.join(sorted(DEVICE_CATALOG))}"
        ) from None


@dataclass(frozen=True)
class DeviceInstance:
    """A concrete service provider: a device type plus its network attachment.

    Attributes
    ----------
    device_id:
        Unique identifier within a cluster (e.g. ``"xavier-0"``).
    dtype:
        The :class:`DeviceType` describing compute behaviour.
    bandwidth_mbps:
        Nominal WiFi bandwidth of the device's link to the router (Mbps); the
        actual instantaneous throughput comes from a
        :class:`~repro.network.bandwidth.BandwidthTrace` built from this
        nominal value.
    """

    device_id: str
    dtype: DeviceType
    bandwidth_mbps: float = 300.0

    def __post_init__(self) -> None:
        check_positive(self.bandwidth_mbps, "bandwidth_mbps")

    @property
    def type_name(self) -> str:
        return self.dtype.name

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.device_id}({self.dtype.name}@{self.bandwidth_mbps:g}Mbps)"


def make_cluster(
    spec: Sequence[tuple],
    default_bandwidth_mbps: float = 300.0,
) -> List[DeviceInstance]:
    """Build a provider list from ``(type_name, bandwidth_mbps)`` tuples.

    ``spec`` entries may be ``(type_name,)`` (uses the default bandwidth) or
    ``(type_name, bandwidth_mbps)``.  Device ids are assigned as
    ``"<type><index>"`` in order of appearance.

    Example
    -------
    >>> cluster = make_cluster([("xavier", 300), ("nano", 50), ("nano", 50)])
    >>> [d.device_id for d in cluster]
    ['xavier0', 'nano1', 'nano2']
    """
    devices: List[DeviceInstance] = []
    for index, entry in enumerate(spec):
        if isinstance(entry, str):
            type_name, bandwidth = entry, default_bandwidth_mbps
        elif len(entry) == 1:
            type_name, bandwidth = entry[0], default_bandwidth_mbps
        else:
            type_name, bandwidth = entry[0], float(entry[1])
        dtype = get_device_type(type_name)
        devices.append(
            DeviceInstance(
                device_id=f"{dtype.name}{index}",
                dtype=dtype,
                bandwidth_mbps=bandwidth,
            )
        )
    return devices


__all__ = [
    "DeviceType",
    "DeviceInstance",
    "DEVICE_CATALOG",
    "get_device_type",
    "make_cluster",
]
