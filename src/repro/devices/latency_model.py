"""Nonlinear compute-latency model for edge devices.

The paper's core argument against linear-ratio baselines (CoEdge, MoDNN,
MeDNN, AOFL) is that the relationship between computing latency and layer
configuration on real edge accelerators is *nonlinear* (Fig. 14, citing
FastDeepIoT).  This module provides the ground-truth latency model used by
the simulator, with three nonlinear ingredients:

1. **Tile quantisation (staircase).**  GPUs schedule output rows in tiles of
   ``tile_rows``; a split-part with 17 output rows on a 16-row-tile device
   costs as much as one with 32.  This produces the step pattern of Fig. 14.
2. **Per-layer launch overhead.**  Every (sub-)layer pays a fixed kernel
   launch/scheduling cost, so many tiny split-parts are disproportionately
   expensive — the reason pure layer-by-layer distribution underperforms.
3. **Roofline memory term.**  Layers with little arithmetic per byte (1x1
   convolutions, pooling) are bound by memory bandwidth rather than compute.

The model is intentionally simple and fully documented so calibration is
transparent; all the distribution algorithms see it only through profiles
(:mod:`repro.devices.profiler`), exactly as the real controller only sees
TensorRT profiling results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.devices.specs import DeviceType
from repro.nn.graph import LayerVolume
from repro.nn.layers import LayerSpec
from repro.nn.splitting import SplitPart, per_layer_row_ranges
from repro.utils.units import FP16_BYTES
from repro.utils.validation import check_non_negative


def _quantized_rows(out_rows: int, tile_rows: int) -> int:
    """Round the number of output rows up to the device's tile granularity."""
    if out_rows <= 0:
        return 0
    if tile_rows <= 1:
        return out_rows
    return int(math.ceil(out_rows / tile_rows) * tile_rows)


def layer_compute_latency_ms(
    dtype: DeviceType,
    layer: LayerSpec,
    out_rows: Optional[int] = None,
) -> float:
    """Latency (ms) of computing ``out_rows`` output rows of ``layer``.

    ``out_rows=None`` means the full layer.  Zero rows cost zero (the device
    does not participate and launches nothing).
    """
    if out_rows is None:
        out_rows = layer.out_h if layer.is_spatial else 1
    check_non_negative(out_rows, "out_rows")
    if out_rows == 0:
        return 0.0

    if layer.is_spatial:
        rows = min(out_rows, layer.out_h)
        q_rows = min(_quantized_rows(rows, dtype.tile_rows), max(layer.out_h, rows))
        macs_per_row = layer.macs / layer.out_h
        effective_macs = macs_per_row * q_rows
        # Bytes touched: the input rows needed for these output rows, the
        # produced output rows, and the (resident) weights streamed once.
        in_lo, in_hi = _input_rows_for(layer, rows)
        input_bytes = (in_hi - in_lo) * layer.in_w * layer.in_c * FP16_BYTES
        output_bytes = rows * layer.out_w * layer.out_c * FP16_BYTES
        touched_bytes = input_bytes + output_bytes + layer.weight_bytes
    else:
        effective_macs = layer.macs
        touched_bytes = layer.input_bytes + layer.output_bytes + layer.weight_bytes

    compute_ms = effective_macs / dtype.peak_macs_per_s * 1000.0
    memory_ms = touched_bytes / dtype.mem_bandwidth_bytes_per_s * 1000.0
    return dtype.launch_overhead_ms + max(compute_ms, memory_ms)


def _input_rows_for(layer: LayerSpec, out_rows: int) -> tuple[int, int]:
    """Input row extent needed for the first ``out_rows`` output rows."""
    lo = 0 * layer.stride - layer.padding
    hi = (out_rows - 1) * layer.stride - layer.padding + layer.kernel
    return max(lo, 0), min(hi, layer.in_h)


def volume_compute_latency_ms(
    dtype: DeviceType,
    layers: Sequence[LayerSpec],
    out_rows_last: int,
) -> float:
    """Latency (ms) of computing a split-part of a layer-volume.

    The part is defined by the number of output rows of the *last* sub-layer;
    the rows every earlier sub-layer must produce follow from the exact
    row-range arithmetic (including the recomputation halo).
    """
    check_non_negative(out_rows_last, "out_rows_last")
    if out_rows_last == 0 or not layers:
        return 0.0
    last = layers[-1]
    rows = min(out_rows_last, last.out_h)
    ranges = per_layer_row_ranges(list(layers), 0, rows)
    total = 0.0
    for layer, (a, b) in zip(layers, ranges):
        total += layer_compute_latency_ms(dtype, layer, b - a)
    return total


def part_compute_latency_ms(dtype: DeviceType, part: SplitPart, volume: LayerVolume) -> float:
    """Latency (ms) of a concrete :class:`~repro.nn.splitting.SplitPart`."""
    if part.is_empty:
        return 0.0
    total = 0.0
    for layer, (a, b) in zip(volume.layers, part.layer_out_rows):
        total += layer_compute_latency_ms(dtype, layer, b - a)
    return total


@dataclass(frozen=True)
class ComputeLatencyModel:
    """Callable wrapper binding a device type to the latency functions.

    Provides the ground-truth oracle used by the runtime simulator and by
    the profiler (optionally with measurement noise added on top).
    """

    dtype: DeviceType

    def layer(self, layer: LayerSpec, out_rows: Optional[int] = None) -> float:
        """Latency of ``out_rows`` rows of a single layer (ms)."""
        return layer_compute_latency_ms(self.dtype, layer, out_rows)

    def volume(self, layers: Sequence[LayerSpec], out_rows_last: int) -> float:
        """Latency of a split-part defined by last-layer output rows (ms)."""
        return volume_compute_latency_ms(self.dtype, layers, out_rows_last)

    def part(self, part: SplitPart, volume: LayerVolume) -> float:
        """Latency of a concrete split-part (ms)."""
        return part_compute_latency_ms(self.dtype, part, volume)

    def full_model(self, layers: Sequence[LayerSpec]) -> float:
        """Latency of executing every layer in full on this device (ms)."""
        return sum(layer_compute_latency_ms(self.dtype, layer, None) for layer in layers)


__all__ = [
    "ComputeLatencyModel",
    "layer_compute_latency_ms",
    "volume_compute_latency_ms",
    "part_compute_latency_ms",
]
