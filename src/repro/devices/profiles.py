"""Profile representations consumed by the planners.

The paper (Section IV): *"DistrEdge allows various forms to express the
profiling results of a device.  It can be regression models (e.g., linear
regression, piece-wise linear regression, k-nearest-neighbor) or a measured
data table of computing latencies with different layer configurations."*

Four interchangeable representations are provided, all exposing
``latency_ms(layer_name, out_rows)``:

* :class:`TabularProfile` — the measured table, with linear interpolation
  between measured heights (exact when the profile has granularity 1).
* :class:`LinearProfile` — per-layer least-squares linear fit; this is the
  information the linear-model baselines effectively assume.
* :class:`PiecewiseLinearProfile` — segments between knot points.
* :class:`KNNProfile` — k-nearest-neighbour average over measured heights.

:func:`estimate_capability` reduces a profile to a single "computing
capability" scalar (MACs per second), which is all that MoDNN / MeDNN /
CoEdge / AOFL use when computing their split ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.devices.profiler import ProfiledLatency
from repro.nn.graph import ModelSpec


class LatencyProfile:
    """Interface: latency lookup for (layer, output rows) on one device."""

    def latency_ms(self, layer_name: str, out_rows: int) -> float:
        raise NotImplementedError

    def layers(self) -> List[str]:
        """Names of layers covered by this profile."""
        raise NotImplementedError

    def volume_latency_ms(self, layer_rows: Sequence[Tuple[str, int]]) -> float:
        """Sum of per-layer latencies for a split-part spanning several layers."""
        return sum(self.latency_ms(name, rows) for name, rows in layer_rows if rows > 0)

    def latency_ms_batch(self, layer_name: str, out_rows: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`latency_ms` over an integer array of row counts.

        Every element of the result is the very float the scalar lookup would
        return for that row count (non-positive rows map to 0.0, enforced
        here, not delegated to the subclass's scalar guard) — the batch
        evaluation engine relies on this bit-exactness.  Subclasses override
        with true array programs where the representation allows it; this
        fallback evaluates element-wise and is always exact.
        """
        rows = np.asarray(out_rows)
        values = np.array(
            [self.latency_ms(layer_name, int(r)) for r in rows.ravel()]
        ).reshape(rows.shape)
        return np.where(rows > 0, values, 0.0)


def _points_by_layer(
    points: Mapping[str, Sequence[ProfiledLatency]],
) -> Dict[str, Tuple[np.ndarray, np.ndarray]]:
    """Convert profiler output into sorted (heights, latencies) arrays."""
    table: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
    for name, entries in points.items():
        if not entries:
            raise ValueError(f"layer {name!r} has no profiled points")
        heights = np.array([p.out_rows for p in entries], dtype=float)
        lats = np.array([p.latency_ms for p in entries], dtype=float)
        order = np.argsort(heights)
        table[name] = (heights[order], lats[order])
    return table


@dataclass
class TabularProfile(LatencyProfile):
    """Measured latency table with linear interpolation between heights."""

    table: Dict[str, Tuple[np.ndarray, np.ndarray]]

    @classmethod
    def from_points(cls, points: Mapping[str, Sequence[ProfiledLatency]]) -> "TabularProfile":
        return cls(table=_points_by_layer(points))

    def layers(self) -> List[str]:
        return list(self.table)

    def latency_ms(self, layer_name: str, out_rows: int) -> float:
        if out_rows <= 0:
            return 0.0
        heights, lats = self._entry(layer_name)
        return float(np.interp(out_rows, heights, lats))

    def latency_ms_batch(self, layer_name: str, out_rows: np.ndarray) -> np.ndarray:
        # np.interp is element-wise, so the array call produces exactly the
        # floats the scalar lookups would.
        rows = np.asarray(out_rows)
        heights, lats = self._entry(layer_name)
        return np.where(rows > 0, np.interp(rows, heights, lats), 0.0)

    def _entry(self, layer_name: str) -> Tuple[np.ndarray, np.ndarray]:
        try:
            return self.table[layer_name]
        except KeyError:
            raise KeyError(
                f"layer {layer_name!r} not present in profile; known layers: {self.layers()}"
            ) from None


@dataclass
class LinearProfile(LatencyProfile):
    """Per-layer linear fit ``latency = slope * rows + intercept``.

    This is the representation the linear-model baselines implicitly assume:
    latency strictly proportional-ish to the number of rows, no staircase.
    """

    coeffs: Dict[str, Tuple[float, float]]  # layer -> (slope, intercept)

    @classmethod
    def from_points(cls, points: Mapping[str, Sequence[ProfiledLatency]]) -> "LinearProfile":
        coeffs: Dict[str, Tuple[float, float]] = {}
        for name, (heights, lats) in _points_by_layer(points).items():
            if heights.size == 1:
                slope = 0.0
                intercept = float(lats[0])
            else:
                slope, intercept = np.polyfit(heights, lats, 1)
            coeffs[name] = (float(slope), float(intercept))
        return cls(coeffs=coeffs)

    def layers(self) -> List[str]:
        return list(self.coeffs)

    def latency_ms(self, layer_name: str, out_rows: int) -> float:
        if out_rows <= 0:
            return 0.0
        try:
            slope, intercept = self.coeffs[layer_name]
        except KeyError:
            raise KeyError(f"layer {layer_name!r} not present in profile") from None
        return float(max(slope * out_rows + intercept, 0.0))

    def latency_ms_batch(self, layer_name: str, out_rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(out_rows)
        try:
            slope, intercept = self.coeffs[layer_name]
        except KeyError:
            raise KeyError(f"layer {layer_name!r} not present in profile") from None
        # Same IEEE expression as the scalar form (integer rows are exact in
        # float64, so slope * rows + intercept matches term for term).
        fit = np.maximum(slope * rows + intercept, 0.0)
        return np.where(rows > 0, fit, 0.0)


@dataclass
class PiecewiseLinearProfile(LatencyProfile):
    """Piecewise-linear fit over a reduced set of knot heights."""

    knots: Dict[str, Tuple[np.ndarray, np.ndarray]]

    @classmethod
    def from_points(
        cls,
        points: Mapping[str, Sequence[ProfiledLatency]],
        num_knots: int = 8,
    ) -> "PiecewiseLinearProfile":
        if num_knots < 2:
            raise ValueError(f"num_knots must be >= 2, got {num_knots}")
        knots: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for name, (heights, lats) in _points_by_layer(points).items():
            if heights.size <= num_knots:
                knots[name] = (heights, lats)
                continue
            idx = np.unique(np.linspace(0, heights.size - 1, num_knots).round().astype(int))
            knots[name] = (heights[idx], lats[idx])
        return cls(knots=knots)

    def layers(self) -> List[str]:
        return list(self.knots)

    def latency_ms(self, layer_name: str, out_rows: int) -> float:
        if out_rows <= 0:
            return 0.0
        try:
            heights, lats = self.knots[layer_name]
        except KeyError:
            raise KeyError(f"layer {layer_name!r} not present in profile") from None
        return float(np.interp(out_rows, heights, lats))

    def latency_ms_batch(self, layer_name: str, out_rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(out_rows)
        try:
            heights, lats = self.knots[layer_name]
        except KeyError:
            raise KeyError(f"layer {layer_name!r} not present in profile") from None
        return np.where(rows > 0, np.interp(rows, heights, lats), 0.0)


@dataclass
class KNNProfile(LatencyProfile):
    """k-nearest-neighbour estimate over measured heights."""

    table: Dict[str, Tuple[np.ndarray, np.ndarray]]
    k: int = 3

    @classmethod
    def from_points(
        cls, points: Mapping[str, Sequence[ProfiledLatency]], k: int = 3
    ) -> "KNNProfile":
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        return cls(table=_points_by_layer(points), k=k)

    def layers(self) -> List[str]:
        return list(self.table)

    def latency_ms(self, layer_name: str, out_rows: int) -> float:
        if out_rows <= 0:
            return 0.0
        try:
            heights, lats = self.table[layer_name]
        except KeyError:
            raise KeyError(f"layer {layer_name!r} not present in profile") from None
        k = min(self.k, heights.size)
        dist = np.abs(heights - out_rows)
        nearest = np.argsort(dist)[:k]
        return float(lats[nearest].mean())


@dataclass(frozen=True)
class DeviceCapability:
    """Scalar 'computing capability' used by the linear-model baselines.

    ``macs_per_second`` is the effective throughput inferred from a full-model
    profile; the linear baselines assume latency of a split is
    ``macs / macs_per_second``.
    """

    device_type: str
    macs_per_second: float

    def latency_ms(self, macs: float) -> float:
        """Predicted latency of ``macs`` operations under the linear model."""
        if macs <= 0:
            return 0.0
        return macs / self.macs_per_second * 1000.0


def estimate_capability(
    model: ModelSpec,
    profile: LatencyProfile,
    device_type: str = "unknown",
) -> DeviceCapability:
    """Estimate a device's scalar capability from its profile.

    Capability = (total backbone MACs) / (predicted full-backbone latency);
    this is precisely the single number CoEdge / MoDNN / MeDNN / AOFL reduce a
    device to when deciding split ratios.
    """
    total_macs = 0
    total_ms = 0.0
    for layer in model.spatial_layers:
        total_macs += layer.macs
        total_ms += profile.latency_ms(layer.name, layer.out_h)
    if total_ms <= 0:
        raise ValueError("profile predicts non-positive full-model latency")
    return DeviceCapability(
        device_type=device_type,
        macs_per_second=total_macs / (total_ms / 1000.0),
    )


__all__ = [
    "LatencyProfile",
    "TabularProfile",
    "LinearProfile",
    "PiecewiseLinearProfile",
    "KNNProfile",
    "DeviceCapability",
    "estimate_capability",
]
