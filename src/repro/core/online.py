"""Online adaptation under highly dynamic networks (Section V-F, Fig. 13).

Three controllers reproduce the paper's dynamic-network experiment:

* :class:`OnlineDistrEdgeController` — keeps the trained actor online.  Every
  ``decision_interval_s`` it re-rolls the actor on the splitting MDP under
  the *current* network conditions (cheap: one rollout), and when the
  monitored average throughput drifts by more than ``replan_threshold`` it
  re-runs LC-PSS and fine-tunes the actor — the plan switch becomes
  effective only after ``partition_replan_delay_s`` of simulated controller
  time (the paper measures 20 s - 210 s for this).
* :class:`PeriodicReplanController` — generic wrapper used for AOFL: replan
  (with the wrapped planner) when throughput drifts, with a long delay
  (the paper measures ~10 min for AOFL's brute-force partition search).
* CoEdge needs no controller class of its own: it re-plans every image with
  a negligible delay, which :class:`PeriodicReplanController` also models
  with ``replan_threshold=0`` and ``replan_delay_s=0``.

All controllers expose an ``adaptation_hook`` compatible with
:class:`~repro.runtime.streaming.StreamingSimulator` — and, since the
serving subsystem landed, with per-tenant replanning under multi-tenant
load: pass the hook through
:attr:`~repro.serving.tenants.TenantSpec.adaptation_hook` (or a fresh
controller per run via ``hook_factory``, which parity runs require) and the
controller replans its tenant's plan between that tenant's requests while
other tenants keep being served.  The hook contract is identical in both
settings: called before each dispatch with ``(time_seconds, request_index,
current_plan, latency_history_ms)``; a returned plan whose *strategy*
differs from the current one (see
:meth:`~repro.runtime.plan.DistributionPlan.same_strategy`) becomes the
tenant's new plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.distredge import DistrEdge, DistrEdgeConfig
from repro.core.mdp import SplitMDP, map_action_to_cuts
from repro.core.osds import OSDS, OSDSConfig
from repro.devices.specs import DeviceInstance
from repro.network.topology import NetworkModel
from repro.nn.graph import ModelSpec
from repro.nn.splitting import SplitDecision
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.plan import DistributionPlan

PlannerFn = Callable[[float], DistributionPlan]
"""A function mapping a (re-)planning time to a fresh plan for that moment."""


def mean_cluster_throughput(network: NetworkModel, t_seconds: float) -> float:
    """Average instantaneous provider throughput — the monitored signal."""
    rates = [
        network.provider_links[i].throughput_mbps(t_seconds)
        for i in range(network.num_providers)
    ]
    return float(np.mean(rates)) if rates else 0.0


@dataclass
class PeriodicReplanController:
    """Replans with an arbitrary planner whenever throughput drifts.

    Parameters
    ----------
    planner_fn:
        Called with the current time (seconds) and returning a new plan for
        the conditions at that time.
    network:
        The dynamic network being monitored.
    replan_threshold:
        Relative change of mean throughput (vs. the value at the last replan)
        that triggers re-planning; 0 replans before every image (CoEdge).
    replan_delay_s:
        Simulated controller time before the new plan takes effect (AOFL's
        brute-force search: ~600 s; CoEdge's closed-form split: ~0 s).
    """

    planner_fn: PlannerFn
    network: NetworkModel
    replan_threshold: float = 0.2
    replan_delay_s: float = 0.0
    _reference_mbps: Optional[float] = None
    _pending_plan: Optional[DistributionPlan] = None
    _pending_ready_s: float = 0.0
    replan_log: List[float] = field(default_factory=list)

    def adaptation_hook(
        self,
        t_seconds: float,
        image_index: int,
        current_plan: DistributionPlan,
        latency_history_ms: List[float],
    ) -> Optional[DistributionPlan]:
        # Deliver a pending plan once the controller finished computing it.
        if self._pending_plan is not None and t_seconds >= self._pending_ready_s:
            plan, self._pending_plan = self._pending_plan, None
            return plan
        current = mean_cluster_throughput(self.network, t_seconds)
        if self._reference_mbps is None:
            self._reference_mbps = current
        drift = abs(current - self._reference_mbps) / max(self._reference_mbps, 1e-6)
        if drift >= self.replan_threshold and self._pending_plan is None:
            self._reference_mbps = current
            self.replan_log.append(t_seconds)
            new_plan = self.planner_fn(t_seconds)
            if self.replan_delay_s <= 0:
                return new_plan
            self._pending_plan = new_plan
            self._pending_ready_s = t_seconds + self.replan_delay_s
        return None


@dataclass
class OnlineDistrEdgeController:
    """Keeps a trained DistrEdge actor making online split decisions.

    Parameters
    ----------
    model, devices, network:
        The deployment being served; ``network`` should carry dynamic traces.
    distredge:
        The planner (its config supplies alpha and OSDS settings).
    decision_interval_s:
        How often the actor refreshes split decisions from the current
        intermediate-latency observations (cheap rollouts).
    replan_threshold:
        Mean-throughput drift that triggers a partition update + fine-tune.
    partition_replan_delay_s:
        Simulated controller time for LC-PSS + actor fine-tuning before the
        new plan takes effect (paper: 20 s - 210 s).
    finetune_episodes:
        Number of OSDS episodes used when fine-tuning after a partition
        change.
    evaluator:
        Optional externally-owned evaluator to score candidates and step the
        splitting MDP through — pass a
        :class:`~repro.runtime.shard.ShardedPlanEvaluator` to hand candidate
        batches and OSDS seed warm-ups to its persistent worker pool (the
        MDP's per-volume stepping always stays on the in-process engine).
        Default: a private :class:`~repro.runtime.batch.BatchPlanEvaluator`.
    """

    model: ModelSpec
    devices: Sequence[DeviceInstance]
    network: NetworkModel
    distredge: DistrEdge = field(default_factory=lambda: DistrEdge(DistrEdgeConfig()))
    decision_interval_s: float = 30.0
    replan_threshold: float = 0.25
    partition_replan_delay_s: float = 120.0
    finetune_episodes: int = 50
    evaluator: Optional[object] = None
    replan_log: List[float] = field(default_factory=list)
    decision_log: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        # Batch path: candidate split decisions are scored in one vectorised
        # call per refresh, and re-considering the plan currently in service
        # is a cache hit whenever the network state has not changed.
        self._evaluator = self.evaluator or BatchPlanEvaluator(
            self.devices,
            self.network,
            input_bytes_per_element=self.distredge.config.input_bytes_per_element,
        )
        self._boundaries: Optional[List[int]] = None
        self._osds: Optional[OSDS] = None
        self._last_decision_s: Optional[float] = None
        self._reference_mbps: Optional[float] = None
        self._pending_plan: Optional[DistributionPlan] = None
        self._pending_ready_s = 0.0

    # ------------------------------------------------------------------ #
    def initial_plan(self, t_seconds: float = 0.0) -> DistributionPlan:
        """Train the initial strategy for the conditions at ``t_seconds``."""
        lcpss = self.distredge.partition(self.model, self.devices)
        self._boundaries = lcpss.boundaries
        env = SplitMDP(self.model, lcpss.boundaries, self.devices, self._evaluator)
        self._osds = OSDS(env, self.distredge.config.osds)
        seeds = (
            self.distredge._heuristic_seeds(
                self.model, lcpss.boundaries, self.devices, self._evaluator
            )
            if self.distredge.config.seed_with_heuristics
            else None
        )
        result = self._osds.run(initial_decisions=seeds)
        self._reference_mbps = mean_cluster_throughput(self.network, t_seconds)
        self._last_decision_s = t_seconds
        return result.best_plan

    def _online_decisions(
        self, t_seconds: float, current_plan: Optional[DistributionPlan] = None
    ) -> Optional[DistributionPlan]:
        """Refresh split decisions under the current network conditions.

        The controller keeps the actor online and evaluates a handful of
        candidate split-decision sets against the *instantaneous* conditions:
        the current plan, the actor's greedy and noisy rollouts, and the
        cheap closed-form candidates (offload corner and rate-proportional
        fractions at the current link rates).  The best candidate wins; the
        plan is only replaced when it beats the plan currently in service,
        so an imperfectly trained actor can never degrade the deployment.
        This whole step costs milliseconds — the point of contrast with
        AOFL's brute-force re-planning (Section V-F).

        All candidate scoring routes through the batch path: the actor
        rollouts advance in lockstep (one batched policy forward per volume
        for all attempts, with exploration noise pre-drawn in the same order
        the sequential rollouts used), and the closed-form candidates plus
        the incumbent plan are evaluated in a single vectorised call.

        Note: unlike the OSDS training loop (which stays bit-identical
        through the batch path), the batched actor forward is a different
        BLAS call shape than per-candidate ``act`` and may round an action
        component by an ulp, occasionally flipping which candidate wins a
        refresh.  This is safe by construction — a candidate only replaces
        the incumbent when it evaluates strictly better under the current
        conditions — and plan *evaluation* itself remains exact.
        """
        assert self._osds is not None and self._boundaries is not None
        agent = self._osds.agent
        num_attempts = 4
        envs = [
            SplitMDP(self.model, self._boundaries, self.devices, self._evaluator)
            for _ in range(num_attempts)
        ]
        num_volumes = envs[0].num_volumes
        # Pre-draw exploration noise attempt-major (attempt 0 is greedy).
        noise = np.zeros((num_volumes, num_attempts, agent.action_dim))
        for attempt in range(1, num_attempts):
            for step in range(num_volumes):
                noise[step, attempt] = agent.draw_noise()

        best_latency = None
        plan = None

        def consider(latency: float, candidate: DistributionPlan) -> None:
            nonlocal best_latency, plan
            if best_latency is None or latency < best_latency:
                best_latency = latency
                plan = candidate

        # Actor rollouts (greedy + exploratory), advanced in lockstep.
        obs = np.stack([env.reset(t_seconds=t_seconds) for env in envs])
        for step in range(num_volumes):
            actions = agent.act_batch(obs, noise=noise[step])
            for attempt, env in enumerate(envs):
                next_obs, _, done, info = env.step(actions[attempt])
                obs[attempt] = next_obs
                if done:
                    consider(info["end_to_end_ms"], info["plan"])

        # Closed-form candidates under the current conditions, scored
        # together with the plan currently in service in one batched call.
        volumes = envs[0].volumes
        seed_plans = []
        for seed_actions in self.distredge._heuristic_seeds(
            self.model, self._boundaries, self.devices, self._evaluator
        ):
            decisions = [
                SplitDecision(
                    cuts=map_action_to_cuts(np.asarray(action), volume.output_height),
                    output_height=volume.output_height,
                )
                for action, volume in zip(seed_actions, volumes)
            ]
            seed_plans.append(envs[0].build_plan(decisions))
        batch = list(seed_plans)
        if current_plan is not None:
            batch.append(current_plan)
        results = self._evaluator.evaluate_plans(batch, t_seconds=t_seconds)
        for candidate, result in zip(seed_plans, results):
            consider(result.end_to_end_ms, candidate)
        self.decision_log.append(t_seconds)
        if plan is None:
            return None
        if current_plan is not None:
            current_latency = results[-1].end_to_end_ms
            if current_latency <= best_latency:
                return None
        return plan

    def _replan_partition(self, t_seconds: float) -> DistributionPlan:
        """LC-PSS + fine-tuning after a significant throughput change."""
        assert self._osds is not None
        lcpss = self.distredge.partition(self.model, self.devices)
        self._boundaries = lcpss.boundaries
        env = SplitMDP(self.model, self._boundaries, self.devices, self._evaluator)
        finetune_cfg = OSDSConfig(
            max_episodes=max(self.finetune_episodes, 1),
            delta_epsilon=self.distredge.config.osds.delta_epsilon,
            sigma_squared=self.distredge.config.osds.sigma_squared,
            ddpg=self.distredge.config.osds.ddpg,
            seed=self.distredge.config.osds.seed,
            episode_batch=self.distredge.config.osds.episode_batch,
            policy_refresh=self.distredge.config.osds.policy_refresh,
        )
        finetune = OSDS(env, finetune_cfg)
        # Fine-tune starting from the current policy rather than from scratch.
        finetune.agent.restore(self._osds.agent.snapshot())
        result = finetune.run()
        self._osds = finetune
        self.replan_log.append(t_seconds)
        return result.best_plan

    # ------------------------------------------------------------------ #
    def adaptation_hook(
        self,
        t_seconds: float,
        image_index: int,
        current_plan: DistributionPlan,
        latency_history_ms: List[float],
    ) -> Optional[DistributionPlan]:
        """Hook for :class:`~repro.runtime.streaming.StreamingSimulator`."""
        if self._osds is None:
            raise RuntimeError("call initial_plan() before streaming")
        if self._pending_plan is not None and t_seconds >= self._pending_ready_s:
            plan, self._pending_plan = self._pending_plan, None
            return plan
        current = mean_cluster_throughput(self.network, t_seconds)
        if self._reference_mbps is None:
            self._reference_mbps = current
        drift = abs(current - self._reference_mbps) / max(self._reference_mbps, 1e-6)
        if drift >= self.replan_threshold and self._pending_plan is None:
            self._reference_mbps = current
            new_plan = self._replan_partition(t_seconds)
            self._pending_plan = new_plan
            self._pending_ready_s = t_seconds + self.partition_replan_delay_s
            return None
        if (
            self._last_decision_s is None
            or t_seconds - self._last_decision_s >= self.decision_interval_s
        ):
            self._last_decision_s = t_seconds
            return self._online_decisions(t_seconds, current_plan)
        return None


__all__ = [
    "PeriodicReplanController",
    "OnlineDistrEdgeController",
    "mean_cluster_throughput",
]
