"""Experience replay buffer for DDPG (Algorithm 2, lines 18-19)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng


@dataclass(frozen=True)
class Transition:
    """One MDP transition ``(s, a, r, s', done)``.

    ``action`` stores the *raw* actor output (before sorting/mapping), as in
    Algorithm 2 line 18, so that the critic learns in the space the actor
    produces.
    """

    state: np.ndarray
    action: np.ndarray
    reward: float
    next_state: np.ndarray
    done: bool


class ReplayBuffer:
    """Fixed-capacity circular replay buffer with uniform sampling."""

    def __init__(self, capacity: int = 100_000, seed: SeedLike = 0) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._rng = as_rng(seed)
        self._storage: list[Transition] = []
        self._cursor = 0

    def __len__(self) -> int:
        return len(self._storage)

    @property
    def transitions(self) -> Tuple[Transition, ...]:
        """The stored transitions in insertion order (oldest first up to the
        wrap point).  Exposed for replay-consistency assertions: two training
        runs that fed identical transitions in identical order have equal
        buffers, which the episode-batched OSDS tests check field by field."""
        return tuple(self._storage)

    def add(self, transition: Transition) -> None:
        """Insert a transition, overwriting the oldest once at capacity."""
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._cursor] = transition
            self._cursor = (self._cursor + 1) % self.capacity

    def sample(
        self, batch_size: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Sample a uniform minibatch as stacked float32 arrays.

        Returns ``(states, actions, rewards, next_states, dones)`` where
        rewards and dones have shape ``(batch, 1)``.
        """
        if not self._storage:
            raise ValueError("cannot sample from an empty replay buffer")
        batch_size = min(batch_size, len(self._storage))
        indices = self._rng.integers(0, len(self._storage), size=batch_size)
        batch = [self._storage[i] for i in indices]
        states = np.stack([t.state for t in batch]).astype(np.float32)
        actions = np.stack([t.action for t in batch]).astype(np.float32)
        rewards = np.array([[t.reward] for t in batch], dtype=np.float32)
        next_states = np.stack([t.next_state for t in batch]).astype(np.float32)
        dones = np.array([[1.0 if t.done else 0.0] for t in batch], dtype=np.float32)
        return states, actions, rewards, next_states, dones


__all__ = ["Transition", "ReplayBuffer"]
