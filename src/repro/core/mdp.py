"""The layer-volume splitting MDP (Section IV-C1).

Each episode walks the layer-volumes of a partitioned model in order.  At
step *l* the agent observes

    s_l = (T^{l-1}, H_l, C_l, F_l, S_l)                         (Eq. 7)

— the accumulated latencies of every provider after volume *l-1* plus the
configuration of volume *l*'s last layer — and emits a continuous action

    a_l = (x~_1, ..., x~_{|D|-1})                                (Eq. 6)

whose sorted components are mapped to integer cut points on the volume's
output height (Eq. 9).  The environment splits the volume accordingly,
schedules it on the simulated cluster (using the same stepping machinery as
the plan evaluator, so accumulated latencies include transmission and
queueing), and returns reward 0 until the terminal step, where the reward is
``reward_scale / T`` with ``T`` the end-to-end latency (Eq. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.specs import DeviceInstance
from repro.nn.graph import LayerVolume, ModelSpec
from repro.nn.splitting import SplitDecision
from repro.runtime.evaluator import PlanEvaluator, ScheduleState
from repro.runtime.plan import DistributionPlan, VolumeAssignment
from repro.nn.splitting import split_volume


@dataclass(frozen=True)
class SplitState:
    """Observation of the splitting MDP at one step."""

    accumulated_ms: np.ndarray  # T^{l-1}, one entry per provider
    height: int  # H_l: output height of the volume's last layer
    channels: int  # C_l: output depth of the volume's last layer
    kernel: int  # F_l
    stride: int  # S_l
    volume_index: int

    def to_vector(self, latency_scale_ms: float, max_height: int, max_channels: int) -> np.ndarray:
        """Normalised feature vector fed to the actor/critic networks."""
        lat = self.accumulated_ms / max(latency_scale_ms, 1e-6)
        feats = np.array(
            [
                self.height / max(max_height, 1),
                self.channels / max(max_channels, 1),
                self.kernel / 7.0,
                self.stride / 2.0,
            ],
            dtype=np.float32,
        )
        return np.concatenate([lat.astype(np.float32), feats])


@dataclass(frozen=True)
class SplitAction:
    """Raw continuous action plus its mapping to a concrete split decision."""

    raw: np.ndarray
    decision: SplitDecision


def map_action_to_cuts(raw_action: np.ndarray, output_height: int) -> Tuple[int, ...]:
    """Sort a raw [-1, 1] action and map it to integer cut points (Eq. 9)."""
    a, b = -1.0, 1.0
    sorted_action = np.sort(np.clip(np.asarray(raw_action, dtype=float), a, b))
    cuts = np.rint(output_height * (sorted_action - a) / (b - a)).astype(int)
    cuts = np.clip(cuts, 0, output_height)
    return tuple(int(c) for c in cuts)


class SplitMDP:
    """Environment over which OSDS trains its DDPG agent.

    Parameters
    ----------
    model:
        The CNN model being distributed.
    boundaries:
        Partition scheme produced by LC-PSS.
    devices:
        Service providers (their count fixes the action dimension).
    evaluator:
        The plan evaluator providing latency semantics; during training it
        may be backed by profiles (controller estimates) or by the
        ground-truth model ("real execution"), as the paper allows both.
    reward_scale:
        Numerator of the terminal reward ``reward_scale / T_ms``; the default
        of 1000 makes the terminal reward equal to images-per-second.
    """

    def __init__(
        self,
        model: ModelSpec,
        boundaries: Sequence[int],
        devices: Sequence[DeviceInstance],
        evaluator: PlanEvaluator,
        reward_scale: float = 1000.0,
    ) -> None:
        self.model = model
        self.boundaries = list(boundaries)
        self.devices = list(devices)
        self.evaluator = evaluator
        self.reward_scale = float(reward_scale)
        self.volumes: List[LayerVolume] = model.partition(self.boundaries)
        self._max_height = max(v.output_height for v in self.volumes)
        self._max_channels = max(v.last.out_c for v in self.volumes)
        # Latency normalisation: offloading everything to the fastest device
        # gives a natural scale for accumulated latencies.
        self._latency_scale = self._offload_scale_ms()

        self._state: Optional[ScheduleState] = None
        self._decisions: List[SplitDecision] = []
        self._step_index = 0
        self._t_seconds = 0.0

    # ------------------------------------------------------------------ #
    @property
    def num_volumes(self) -> int:
        return len(self.volumes)

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def action_dim(self) -> int:
        """``|D| - 1`` cut points (Eq. 6)."""
        return max(len(self.devices) - 1, 1)

    @property
    def state_dim(self) -> int:
        """``|D|`` accumulated latencies plus the 4 layer-configuration features."""
        return len(self.devices) + 4

    @property
    def latency_scale_ms(self) -> float:
        return self._latency_scale

    def _offload_scale_ms(self) -> float:
        plans = [
            DistributionPlan.single_device(self.model, self.devices, idx)
            for idx in range(len(self.devices))
        ]
        if not plans:
            return 1000.0
        # One vectorised (and cached — the heuristic seeds evaluate the same
        # offload plans) call when the evaluator supports the batch path.
        if hasattr(self.evaluator, "evaluate_plans"):
            results = self.evaluator.evaluate_plans(plans)
        else:
            results = [self.evaluator.evaluate(plan) for plan in plans]
        return float(min(r.end_to_end_ms for r in results))

    # ------------------------------------------------------------------ #
    def observation(self) -> SplitState:
        """Current observation ``s_l``."""
        volume = self.volumes[self._step_index]
        if self._state is None or not self._state.accumulated:
            accumulated = np.zeros(len(self.devices))
        else:
            accumulated = self._state.accumulated[-1].copy()
        last = volume.last
        return SplitState(
            accumulated_ms=accumulated,
            height=volume.output_height,
            channels=last.out_c,
            kernel=last.kernel,
            stride=last.stride,
            volume_index=self._step_index,
        )

    def observation_vector(self) -> np.ndarray:
        return self.observation().to_vector(
            self._latency_scale, self._max_height, self._max_channels
        )

    def reset(self, t_seconds: float = 0.0) -> np.ndarray:
        """Start a new episode; returns the initial observation vector."""
        self._state = self.evaluator.new_state()
        self._decisions = []
        self._step_index = 0
        self._t_seconds = float(t_seconds)
        return self.observation_vector()

    def decision_from_action(self, raw_action: np.ndarray) -> SplitDecision:
        """Map a raw continuous action to the current volume's split decision."""
        volume = self.volumes[self._step_index]
        cuts = map_action_to_cuts(raw_action, volume.output_height)
        return SplitDecision(cuts=cuts, output_height=volume.output_height)

    def step(self, raw_action: np.ndarray) -> Tuple[np.ndarray, float, bool, dict]:
        """Apply an action for the current volume.

        Returns ``(next_observation, reward, done, info)``.  ``info`` carries
        the end-to-end latency and the collected decisions once the episode
        terminates.
        """
        if self._state is None:
            raise RuntimeError("step() called before reset()")
        if self._step_index >= self.num_volumes:
            raise RuntimeError("episode already finished; call reset()")
        volume = self.volumes[self._step_index]
        decision = self.decision_from_action(raw_action)
        self._decisions.append(decision)
        assignment = VolumeAssignment(
            volume=volume, decision=decision, parts=tuple(split_volume(volume, decision))
        )
        self.evaluator.process_volume(self._state, assignment, self._t_seconds)
        self._step_index += 1
        done = self._step_index >= self.num_volumes
        info: dict = {}
        if done:
            plan = self.build_plan(self._decisions)
            result = self.evaluator.finalize(self._state, plan, self._t_seconds)
            reward = self.reward_scale / max(result.end_to_end_ms, 1e-6)
            info = {
                "end_to_end_ms": result.end_to_end_ms,
                "decisions": list(self._decisions),
                "plan": plan,
                "result": result,
            }
            next_obs = np.zeros(self.state_dim, dtype=np.float32)
        else:
            reward = 0.0
            next_obs = self.observation_vector()
        return next_obs, float(reward), done, info

    # ------------------------------------------------------------------ #
    def build_plan(
        self, decisions: Sequence[SplitDecision], method: str = "distredge"
    ) -> DistributionPlan:
        """Assemble a distribution plan from per-volume decisions."""
        return DistributionPlan(
            model=self.model,
            devices=self.devices,
            boundaries=self.boundaries,
            decisions=list(decisions),
            method=method,
        )

    def rollout(self, raw_actions: Sequence[np.ndarray]) -> Tuple[float, DistributionPlan]:
        """Evaluate a full sequence of raw actions (used in tests/ablations)."""
        if len(raw_actions) != self.num_volumes:
            raise ValueError(
                f"need {self.num_volumes} actions, got {len(raw_actions)}"
            )
        self.reset()
        latency = None
        plan = None
        for action in raw_actions:
            _, _, done, info = self.step(action)
            if done:
                latency = info["end_to_end_ms"]
                plan = info["plan"]
        assert latency is not None and plan is not None
        return latency, plan


__all__ = ["SplitState", "SplitAction", "SplitMDP", "map_action_to_cuts"]
