"""The layer-volume splitting MDP (Section IV-C1).

Each episode walks the layer-volumes of a partitioned model in order.  At
step *l* the agent observes

    s_l = (T^{l-1}, H_l, C_l, F_l, S_l)                         (Eq. 7)

— the accumulated latencies of every provider after volume *l-1* plus the
configuration of volume *l*'s last layer — and emits a continuous action

    a_l = (x~_1, ..., x~_{|D|-1})                                (Eq. 6)

whose sorted components are mapped to integer cut points on the volume's
output height (Eq. 9).  The environment splits the volume accordingly,
schedules it on the simulated cluster (using the same stepping machinery as
the plan evaluator, so accumulated latencies include transmission and
queueing), and returns reward 0 until the terminal step, where the reward is
``reward_scale / T`` with ``T`` the end-to-end latency (Eq. 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.specs import DeviceInstance
from repro.nn.graph import LayerVolume, ModelSpec, cached_partition
from repro.nn.splitting import SplitDecision
from repro.runtime.batch import BatchPlanEvaluator, BatchVolumeScheduler
from repro.runtime.evaluator import PlanEvaluator, ScheduleState
from repro.runtime.plan import DistributionPlan, VolumeAssignment
from repro.nn.splitting import split_volume


@dataclass(frozen=True)
class SplitState:
    """Observation of the splitting MDP at one step."""

    accumulated_ms: np.ndarray  # T^{l-1}, one entry per provider
    height: int  # H_l: output height of the volume's last layer
    channels: int  # C_l: output depth of the volume's last layer
    kernel: int  # F_l
    stride: int  # S_l
    volume_index: int

    def to_vector(self, latency_scale_ms: float, max_height: int, max_channels: int) -> np.ndarray:
        """Normalised feature vector fed to the actor/critic networks."""
        lat = self.accumulated_ms / max(latency_scale_ms, 1e-6)
        feats = np.array(
            [
                self.height / max(max_height, 1),
                self.channels / max(max_channels, 1),
                self.kernel / 7.0,
                self.stride / 2.0,
            ],
            dtype=np.float32,
        )
        return np.concatenate([lat.astype(np.float32), feats])


@dataclass(frozen=True)
class SplitAction:
    """Raw continuous action plus its mapping to a concrete split decision."""

    raw: np.ndarray
    decision: SplitDecision


def map_action_to_cuts(raw_action: np.ndarray, output_height: int) -> Tuple[int, ...]:
    """Sort a raw [-1, 1] action and map it to integer cut points (Eq. 9)."""
    a, b = -1.0, 1.0
    sorted_action = np.sort(np.clip(np.asarray(raw_action, dtype=float), a, b))
    cuts = np.rint(output_height * (sorted_action - a) / (b - a)).astype(int)
    cuts = np.clip(cuts, 0, output_height)
    return tuple(int(c) for c in cuts)


def map_action_to_cuts_batch(raw_actions: np.ndarray, output_height: int) -> np.ndarray:
    """Vectorised :func:`map_action_to_cuts` over an ``(episodes, |D|-1)`` batch.

    Each row undergoes the identical sort / clip / round arithmetic as the
    scalar mapping, so ``map_action_to_cuts_batch(A, h)[i]`` equals
    ``map_action_to_cuts(A[i], h)`` element for element.
    """
    a, b = -1.0, 1.0
    sorted_actions = np.sort(
        np.clip(np.asarray(raw_actions, dtype=float), a, b), axis=1
    )
    cuts = np.rint(output_height * (sorted_actions - a) / (b - a)).astype(int)
    return np.clip(cuts, 0, output_height)


class SplitMDP:
    """Environment over which OSDS trains its DDPG agent.

    Parameters
    ----------
    model:
        The CNN model being distributed.
    boundaries:
        Partition scheme produced by LC-PSS.
    devices:
        Service providers (their count fixes the action dimension).
    evaluator:
        The plan evaluator providing latency semantics; during training it
        may be backed by profiles (controller estimates) or by the
        ground-truth model ("real execution"), as the paper allows both.
    reward_scale:
        Numerator of the terminal reward ``reward_scale / T_ms``; the default
        of 1000 makes the terminal reward equal to images-per-second.
    """

    def __init__(
        self,
        model: ModelSpec,
        boundaries: Sequence[int],
        devices: Sequence[DeviceInstance],
        evaluator: PlanEvaluator,
        reward_scale: float = 1000.0,
    ) -> None:
        self.model = model
        self.boundaries = list(boundaries)
        self.devices = list(devices)
        self.evaluator = evaluator
        # A ShardedPlanEvaluator is accepted too: whole-plan batches
        # (offload scale, seed warm-up) fan out to its worker pool while the
        # per-volume stepping below runs on its in-process engine — the
        # sharded `local` engine is a drop-in PlanEvaluator and bit-identical
        # to the pool by construction.
        self._stepper: PlanEvaluator = getattr(evaluator, "local", evaluator)
        self.reward_scale = float(reward_scale)
        self.volumes: List[LayerVolume] = cached_partition(model, self.boundaries)
        self._max_height = max(v.output_height for v in self.volumes)
        self._max_channels = max(v.last.out_c for v in self.volumes)
        # Latency normalisation: offloading everything to the fastest device
        # gives a natural scale for accumulated latencies.
        self._latency_scale = self._offload_scale_ms()

        self._state: Optional[ScheduleState] = None
        self._decisions: List[SplitDecision] = []
        self._step_index = 0
        self._t_seconds = 0.0

    # ------------------------------------------------------------------ #
    @property
    def num_volumes(self) -> int:
        return len(self.volumes)

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def action_dim(self) -> int:
        """``|D| - 1`` cut points (Eq. 6)."""
        return max(len(self.devices) - 1, 1)

    @property
    def state_dim(self) -> int:
        """``|D|`` accumulated latencies plus the 4 layer-configuration features."""
        return len(self.devices) + 4

    @property
    def latency_scale_ms(self) -> float:
        return self._latency_scale

    def _offload_scale_ms(self) -> float:
        plans = [
            DistributionPlan.single_device(self.model, self.devices, idx)
            for idx in range(len(self.devices))
        ]
        if not plans:
            return 1000.0
        # One vectorised (and cached — the heuristic seeds evaluate the same
        # offload plans) call when the evaluator supports the batch path.
        if hasattr(self.evaluator, "evaluate_plans"):
            results = self.evaluator.evaluate_plans(plans)
        else:
            results = [self.evaluator.evaluate(plan) for plan in plans]
        return float(min(r.end_to_end_ms for r in results))

    # ------------------------------------------------------------------ #
    def observation(self) -> SplitState:
        """Current observation ``s_l``."""
        volume = self.volumes[self._step_index]
        if self._state is None or not self._state.accumulated:
            accumulated = np.zeros(len(self.devices))
        else:
            accumulated = self._state.accumulated[-1].copy()
        last = volume.last
        return SplitState(
            accumulated_ms=accumulated,
            height=volume.output_height,
            channels=last.out_c,
            kernel=last.kernel,
            stride=last.stride,
            volume_index=self._step_index,
        )

    def observation_vector(self) -> np.ndarray:
        return self.observation().to_vector(
            self._latency_scale, self._max_height, self._max_channels
        )

    def reset(self, t_seconds: float = 0.0) -> np.ndarray:
        """Start a new episode; returns the initial observation vector."""
        self._state = self._stepper.new_state()
        self._decisions = []
        self._step_index = 0
        self._t_seconds = float(t_seconds)
        return self.observation_vector()

    def decision_from_action(self, raw_action: np.ndarray) -> SplitDecision:
        """Map a raw continuous action to the current volume's split decision."""
        volume = self.volumes[self._step_index]
        cuts = map_action_to_cuts(raw_action, volume.output_height)
        return SplitDecision(cuts=cuts, output_height=volume.output_height)

    def step(self, raw_action: np.ndarray) -> Tuple[np.ndarray, float, bool, dict]:
        """Apply an action for the current volume.

        Returns ``(next_observation, reward, done, info)``.  ``info`` carries
        the end-to-end latency and the collected decisions once the episode
        terminates.
        """
        if self._state is None:
            raise RuntimeError("step() called before reset()")
        if self._step_index >= self.num_volumes:
            raise RuntimeError("episode already finished; call reset()")
        volume = self.volumes[self._step_index]
        decision = self.decision_from_action(raw_action)
        self._decisions.append(decision)
        assignment = VolumeAssignment(
            volume=volume, decision=decision, parts=tuple(split_volume(volume, decision))
        )
        self._stepper.process_volume(self._state, assignment, self._t_seconds)
        self._step_index += 1
        done = self._step_index >= self.num_volumes
        info: dict = {}
        if done:
            plan = self.build_plan(self._decisions)
            result = self._stepper.finalize(self._state, plan, self._t_seconds)
            reward = self.reward_scale / max(result.end_to_end_ms, 1e-6)
            info = {
                "end_to_end_ms": result.end_to_end_ms,
                "decisions": list(self._decisions),
                "plan": plan,
                "result": result,
            }
            next_obs = np.zeros(self.state_dim, dtype=np.float32)
        else:
            reward = 0.0
            next_obs = self.observation_vector()
        return next_obs, float(reward), done, info

    # ------------------------------------------------------------------ #
    def build_plan(
        self, decisions: Sequence[SplitDecision], method: str = "distredge"
    ) -> DistributionPlan:
        """Assemble a distribution plan from per-volume decisions."""
        return DistributionPlan(
            model=self.model,
            devices=self.devices,
            boundaries=self.boundaries,
            decisions=list(decisions),
            method=method,
        )

    def rollout(self, raw_actions: Sequence[np.ndarray]) -> Tuple[float, DistributionPlan]:
        """Evaluate a full sequence of raw actions (used in tests/ablations)."""
        if len(raw_actions) != self.num_volumes:
            raise ValueError(
                f"need {self.num_volumes} actions, got {len(raw_actions)}"
            )
        self.reset()
        latency = None
        plan = None
        for action in raw_actions:
            _, _, done, info = self.step(action)
            if done:
                latency = info["end_to_end_ms"]
                plan = info["plan"]
        assert latency is not None and plan is not None
        return latency, plan


class BatchSplitMDP:
    """``E`` concurrent episodes of a :class:`SplitMDP`, stepped in lockstep.

    The scalar environment advances one episode through Python-level
    scheduling; this wrapper advances a whole *round* of independent
    episodes through one :class:`~repro.runtime.batch.BatchVolumeScheduler`
    sweep per volume, so the per-step cost is one ``(episodes, devices)``
    array program instead of ``E`` scalar walks.  Observations, rewards and
    terminal latencies are bit-identical to stepping each episode through
    the scalar environment (the scheduler executes the scalar evaluator's
    float-operation sequence exactly, and the observation arithmetic below
    matches :meth:`SplitState.to_vector` element for element) — the
    invariant episode-batched OSDS relies on.

    Requires the environment's stepping evaluator to be a
    :class:`~repro.runtime.batch.BatchPlanEvaluator` whose oracle supports
    vectorised part latencies (ground truth or profiles); see
    :meth:`supports`.
    """

    def __init__(self, env: SplitMDP, episodes: int) -> None:
        if episodes < 1:
            raise ValueError(f"episodes must be >= 1, got {episodes}")
        if not self.supports(env):
            raise ValueError(
                "BatchSplitMDP needs a BatchPlanEvaluator with vectorised "
                "part latencies (ground-truth or profile oracle)"
            )
        self.env = env
        self.episodes = int(episodes)
        self._evaluator: BatchPlanEvaluator = env._stepper  # type: ignore[assignment]
        self._scheduler: Optional[BatchVolumeScheduler] = None
        self._finish: Optional[np.ndarray] = None
        self._cuts: List[np.ndarray] = []
        self._t_seconds = 0.0

    @staticmethod
    def supports(env: SplitMDP) -> bool:
        """Whether ``env`` can be stepped in vectorised episode batches."""
        stepper = env._stepper
        return (
            isinstance(stepper, BatchPlanEvaluator)
            and stepper.supports_vectorized_stepping
        )

    # ------------------------------------------------------------------ #
    @property
    def num_volumes(self) -> int:
        return self.env.num_volumes

    def _observation(self) -> np.ndarray:
        """``(episodes, state_dim)`` observations; rows match the scalar env."""
        env = self.env
        n = len(env.devices)
        if self._finish is None:
            accumulated = np.zeros((self.episodes, n))
        else:
            accumulated = self._finish
        lat = accumulated / max(env.latency_scale_ms, 1e-6)
        volume = env.volumes[self._scheduler.volume_index]
        last = volume.last
        feats = np.array(
            [
                volume.output_height / max(env._max_height, 1),
                last.out_c / max(env._max_channels, 1),
                last.kernel / 7.0,
                last.stride / 2.0,
            ],
            dtype=np.float32,
        )
        return np.concatenate(
            [
                lat.astype(np.float32),
                np.broadcast_to(feats, (self.episodes, feats.size)),
            ],
            axis=1,
        )

    def reset(self, t_seconds: float = 0.0) -> np.ndarray:
        """Start a fresh round; returns the ``(episodes, state_dim)`` observations."""
        self._t_seconds = float(t_seconds)
        self._scheduler = BatchVolumeScheduler(
            self._evaluator,
            self.env.model,
            self.env.volumes,
            self.episodes,
            self._t_seconds,
        )
        self._finish = None
        self._cuts = []
        return self._observation()

    def step(
        self, raw_actions: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, bool, List[dict]]:
        """Apply one action per episode for the current volume.

        Returns ``(next_observations, rewards, done, infos)``; ``infos`` is
        one dict per episode, carrying ``end_to_end_ms``, ``decisions`` and
        the full ``result`` at the terminal step (plans are *not* built here
        — a caller that needs one builds it lazily from the decisions, which
        keeps the common non-improving episode cheap).
        """
        if self._scheduler is None:
            raise RuntimeError("step() called before reset()")
        if self._scheduler.done:
            raise RuntimeError("round already finished; call reset()")
        env = self.env
        scheduler = self._scheduler
        volume = env.volumes[scheduler.volume_index]
        raw_actions = np.asarray(raw_actions, dtype=np.float32).reshape(
            self.episodes, env.action_dim
        )
        cuts = map_action_to_cuts_batch(raw_actions, volume.output_height)
        self._cuts.append(cuts)
        self._finish = scheduler.process_volume(cuts)
        done = scheduler.done
        if not done:
            rewards = np.zeros(self.episodes)
            return self._observation(), rewards, False, [{} for _ in range(self.episodes)]

        # Terminal: schedule gather/head/result return for every episode.
        if env.model.head_layers:
            # Default head placement: the provider holding the largest share
            # of the last volume — np.argmax returns the first maximum, the
            # same tie-break as DistributionPlan.largest_share_device.
            edges = np.concatenate(
                [
                    np.zeros((self.episodes, 1), dtype=np.int64),
                    cuts,
                    np.full((self.episodes, 1), volume.output_height, dtype=np.int64),
                ],
                axis=1,
            )
            heads = np.argmax(np.diff(edges, axis=1), axis=1).astype(np.int64)
        else:
            heads = None
        results = scheduler.finalize(heads, ["distredge"] * self.episodes)
        rewards = np.empty(self.episodes)
        infos: List[dict] = []
        for e, result in enumerate(results):
            rewards[e] = env.reward_scale / max(result.end_to_end_ms, 1e-6)
            decisions = [
                SplitDecision(
                    cuts=tuple(int(c) for c in step_cuts[e]),
                    output_height=v.output_height,
                )
                for step_cuts, v in zip(self._cuts, env.volumes)
            ]
            infos.append(
                {
                    "end_to_end_ms": result.end_to_end_ms,
                    "decisions": decisions,
                    "result": result,
                }
            )
        next_obs = np.zeros((self.episodes, env.state_dim), dtype=np.float32)
        return next_obs, rewards, True, infos


__all__ = [
    "SplitState",
    "SplitAction",
    "SplitMDP",
    "BatchSplitMDP",
    "map_action_to_cuts",
    "map_action_to_cuts_batch",
]
