"""The DistrEdge planner: LC-PSS + OSDS behind one interface.

This is the user-facing entry point of the reproduction.  Given a CNN model,
a set of service providers and the network connecting them, :class:`DistrEdge`

1. runs LC-PSS (Algorithm 1) to choose the horizontal partition scheme, and
2. runs OSDS (Algorithm 2) — DDPG over the splitting MDP — to choose the
   vertical split decision of every layer-volume,

returning a :class:`~repro.runtime.plan.DistributionPlan` directly consumable
by the runtime simulator, exactly like every baseline planner.

The controller may plan against latency *profiles* (the realistic setting —
pass ``profiles``) or against the ground-truth device model ("real execution"
during training, the paper's other option).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.mdp import SplitMDP
from repro.core.osds import OSDS, OSDSConfig, OSDSResult
from repro.core.partitioner import LCPSS, LCPSSResult
from repro.devices.profiles import LatencyProfile
from repro.devices.specs import DeviceInstance
from repro.network.topology import NetworkModel
from repro.nn.graph import ModelSpec
from repro.nn.splitting import SplitDecision
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.oracles import GroundTruthComputeOracle, ProfileComputeOracle
from repro.runtime.plan import DistributionPlan
from repro.utils.rng import SeedLike


@dataclass
class DistrEdgeConfig:
    """Configuration of the full DistrEdge pipeline (paper defaults)."""

    alpha: float = 0.75
    num_random_splits: int = 100
    osds: OSDSConfig = field(default_factory=OSDSConfig)
    seed: SeedLike = 0
    input_bytes_per_element: float = 0.4
    #: Seed the OSDS search with heuristic split decisions (single best
    #: device, capability-proportional).  Algorithm 2 keeps the best
    #: decisions ever visited, so seeding only adds candidate episodes; it
    #: substantially reduces the episode budget needed on small machines.
    seed_with_heuristics: bool = True


@dataclass
class DistrEdgeResult:
    """Everything produced by one DistrEdge planning run."""

    plan: DistributionPlan
    lcpss: LCPSSResult
    osds: OSDSResult

    @property
    def predicted_latency_ms(self) -> float:
        return self.osds.best_latency_ms

    @property
    def predicted_ips(self) -> float:
        return self.osds.best_ips


class DistrEdge:
    """CNN inference distribution with LC-PSS and DRL-based splitting."""

    method_name = "distredge"

    def __init__(self, config: Optional[DistrEdgeConfig] = None) -> None:
        self.config = config or DistrEdgeConfig()

    # ------------------------------------------------------------------ #
    def _planning_evaluator(
        self,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        profiles: Optional[Sequence[LatencyProfile]],
    ) -> BatchPlanEvaluator:
        # The batch evaluator is a drop-in PlanEvaluator: the splitting MDP
        # steps through it volume-by-volume while whole-plan evaluations
        # (heuristic seeds, offload scale, OSDS seed warm-up) take the
        # vectorised, cached path.
        if profiles is None:
            oracle = GroundTruthComputeOracle(devices)
        else:
            oracle = ProfileComputeOracle(devices, profiles)
        return BatchPlanEvaluator(
            devices,
            network,
            compute_oracle=oracle,
            input_bytes_per_element=self.config.input_bytes_per_element,
        )

    @staticmethod
    def _cuts_to_raw(cuts: Sequence[int], output_height: int) -> np.ndarray:
        """Inverse of the action mapping (Eq. 9): cut points -> raw action."""
        h = max(output_height, 1)
        return np.array([2.0 * c / h - 1.0 for c in cuts], dtype=np.float32)

    def _heuristic_seeds(
        self,
        model: ModelSpec,
        boundaries: Sequence[int],
        devices: Sequence[DeviceInstance],
        evaluator: PlanEvaluator,
    ) -> List[List[np.ndarray]]:
        """Raw-action episodes encoding the heuristic plans used as seeds."""
        volumes = model.partition(boundaries)
        num_devices = len(devices)
        seeds: List[List[np.ndarray]] = []

        # Seed 1: everything on the single device with the lowest offload
        # latency (the Offload corner of the search space).  All offload
        # candidates are evaluated as one batch (a cache hit when the
        # splitting MDP already computed its latency scale from them).
        offload_plans = [
            DistributionPlan.single_device(model, devices, idx) for idx in range(num_devices)
        ]
        if hasattr(evaluator, "evaluate_plans"):
            offload_results = evaluator.evaluate_plans(offload_plans)
        else:
            offload_results = [evaluator.evaluate(plan) for plan in offload_plans]
        offload_latencies = [r.end_to_end_ms for r in offload_results]
        best_idx = min(range(num_devices), key=offload_latencies.__getitem__)
        single: List[np.ndarray] = []
        for volume in volumes:
            h = volume.output_height
            cuts = [0] * best_idx + [h] * (num_devices - 1 - best_idx)
            single.append(self._cuts_to_raw(cuts, h))
        seeds.append(single)

        # Seed 2: capability-proportional fractions (the linear-model answer).
        capabilities = np.array([d.dtype.peak_macs_per_s for d in devices], dtype=float)
        fractions = capabilities / capabilities.sum()
        proportional: List[np.ndarray] = []
        for volume in volumes:
            decision = SplitDecision.from_fractions(fractions, volume.output_height)
            proportional.append(self._cuts_to_raw(decision.cuts, volume.output_height))
        seeds.append(proportional)

        # Seed 3: network-aware proportional fractions (the CoEdge/AOFL-style
        # answer): a device's share shrinks with the time it needs to pull
        # its rows over its link.
        network = getattr(evaluator, "network", None)
        if network is not None:
            network_aware: List[np.ndarray] = []
            for volume in volumes:
                macs_per_row = volume.macs / max(volume.output_height, 1)
                row_bytes = volume.first.in_w * volume.first.in_c * 2
                seconds_per_row = macs_per_row / capabilities
                link_rates = np.array(
                    [network.nominal_mbps(i) * 1e6 / 8.0 for i in range(len(devices))]
                )
                seconds_per_row = seconds_per_row + row_bytes / np.maximum(link_rates, 1e-6)
                rates = 1.0 / np.maximum(seconds_per_row, 1e-12)
                decision = SplitDecision.from_fractions(
                    rates / rates.sum(), volume.output_height
                )
                network_aware.append(self._cuts_to_raw(decision.cuts, volume.output_height))
            seeds.append(network_aware)
        return seeds

    # ------------------------------------------------------------------ #
    def partition(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
    ) -> LCPSSResult:
        """Run only the LC-PSS stage (useful for the alpha ablation, Fig. 5)."""
        lcpss = LCPSS(
            model,
            num_devices=len(devices),
            alpha=self.config.alpha,
            num_random_splits=self.config.num_random_splits,
            seed=self.config.seed,
            input_bytes_per_element=self.config.input_bytes_per_element,
        )
        return lcpss.search()

    def split(
        self,
        model: ModelSpec,
        boundaries: Sequence[int],
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        profiles: Optional[Sequence[LatencyProfile]] = None,
        osds_config: Optional[OSDSConfig] = None,
    ) -> OSDSResult:
        """Run only the OSDS stage on a given partition scheme."""
        evaluator = self._planning_evaluator(devices, network, profiles)
        env = SplitMDP(model, boundaries, devices, evaluator)
        osds = OSDS(env, osds_config or self.config.osds)
        seeds = (
            self._heuristic_seeds(model, boundaries, devices, evaluator)
            if self.config.seed_with_heuristics
            else None
        )
        return osds.run(initial_decisions=seeds)

    def plan(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        profiles: Optional[Sequence[LatencyProfile]] = None,
    ) -> DistributionPlan:
        """Full pipeline returning just the distribution plan."""
        return self.plan_detailed(model, devices, network, profiles).plan

    def plan_detailed(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        profiles: Optional[Sequence[LatencyProfile]] = None,
    ) -> DistrEdgeResult:
        """Full pipeline returning the plan plus per-stage results."""
        lcpss_result = self.partition(model, devices)
        osds_result = self.split(
            model, lcpss_result.boundaries, devices, network, profiles
        )
        plan = DistributionPlan(
            model=model,
            devices=devices,
            boundaries=lcpss_result.boundaries,
            decisions=osds_result.best_decisions,
            method=self.method_name,
        )
        return DistrEdgeResult(plan=plan, lcpss=lcpss_result, osds=osds_result)


__all__ = ["DistrEdge", "DistrEdgeConfig", "DistrEdgeResult"]
