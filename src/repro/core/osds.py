"""OSDS: Optimal Split Decision Search (Algorithm 2), episode-batched.

OSDS trains a DDPG agent on the splitting MDP for ``Max_ep`` episodes.  Each
episode walks all layer-volumes, choosing per-volume split decisions either
from the actor (exploitation) or from the actor plus Gaussian noise
(exploration, gated by the schedule ``epsilon = 1 - (episode * delta_eps)^2``
of Algorithm 2 line 8).  The raw actions are stored in the replay buffer;
the networks are updated once per step.  The best split decisions ever
observed — together with the actor/critic parameters at that point — are
recorded and returned (lines 23-26), so OSDS degrades gracefully into a
guided random search even before the policy converges.

Execution is **episode-batched**: episodes are processed in rounds of up to
``episode_batch`` concurrent episodes, stepped in lockstep through one
vectorised :class:`~repro.core.mdp.BatchSplitMDP` sweep per layer-volume
instead of ``E`` scalar MDP walks.  Three design rules make the result a
pure function of the configuration — bit-identical at *any* execution
width, including the scalar ``episode_batch=1`` loop:

1. **Frozen acting policy.**  Actions are taken through a snapshot of the
   actor refreshed every ``policy_refresh`` episodes (a semantic knob,
   independent of the execution width), so an episode's rollout never
   depends on how many neighbours rolled out beside it.  Replay updates
   still train the live networks every step, in canonical episode order.
2. **Counter-based exploration randomness.**  The exploration gate and the
   Gaussian noise of episode ``e``, step ``l`` are drawn from
   :func:`~repro.utils.rng.counter_rng`\\ ``(root, e, l)`` — a pure function
   of the seed and the counters, immune to batching layout.
3. **Canonical commits.**  Replay-buffer feeding, network updates,
   best-plan tracking and the ``patience`` early stop are applied
   episode-major / step-major after each round, exactly the order the
   scalar loop produces; a round that overshoots an early stop discards the
   speculative trailing episodes without committing them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ddpg import DDPGAgent, DDPGConfig
from repro.core.mdp import BatchSplitMDP, SplitMDP, map_action_to_cuts
from repro.nn.splitting import SplitDecision
from repro.runtime.plan import DistributionPlan
from repro.utils.rng import SeedLike, counter_rng, root_seed


@dataclass
class OSDSConfig:
    """Hyper-parameters of Algorithm 2 (paper defaults in parentheses).

    ``max_episodes`` (4000) and ``delta_epsilon`` (1/250) control the length
    of training and the decay of the exploration gate; ``sigma_squared``
    (0.1 for four providers, 1.0 for sixteen) is the exploration noise
    variance.  Reduced episode counts are used by the fast test/bench
    configurations; the defaults match the paper.

    ``episode_batch`` is pure *execution width* — how many episodes roll
    out in lockstep per vectorised round; results are bit-identical for any
    value.  ``policy_refresh`` is *semantic*: the acting-policy snapshot is
    refreshed at episode indices divisible by it (rounds never cross a
    refresh boundary), so changing it changes which policy explores — akin
    to target-network staleness in DDPG itself.
    """

    max_episodes: int = 4000
    delta_epsilon: float = 1.0 / 250.0
    sigma_squared: float = 0.1
    ddpg: DDPGConfig = field(default_factory=DDPGConfig)
    updates_per_step: int = 1
    seed: SeedLike = 0
    #: Stop early when the best latency has not improved for this many
    #: episodes (None disables early stopping; the paper trains a fixed
    #: number of episodes).
    patience: Optional[int] = None
    #: Episodes rolled out concurrently per vectorised round (1 = scalar
    #: loop).  Execution width only — never changes results.  Rounds never
    #: cross a policy-refresh boundary, so the *effective* width is capped
    #: at ``policy_refresh``; widths beyond it need that knob raised too.
    episode_batch: int = 8
    #: Episodes between acting-policy snapshot refreshes.
    policy_refresh: int = 8

    def __post_init__(self) -> None:
        if self.max_episodes < 1:
            raise ValueError(f"max_episodes must be >= 1, got {self.max_episodes}")
        if self.delta_epsilon <= 0:
            raise ValueError(f"delta_epsilon must be > 0, got {self.delta_epsilon}")
        if self.sigma_squared < 0:
            raise ValueError(f"sigma_squared must be >= 0, got {self.sigma_squared}")
        if self.updates_per_step < 0:
            raise ValueError(f"updates_per_step must be >= 0, got {self.updates_per_step}")
        if self.episode_batch < 1:
            raise ValueError(f"episode_batch must be >= 1, got {self.episode_batch}")
        if self.policy_refresh < 1:
            raise ValueError(f"policy_refresh must be >= 1, got {self.policy_refresh}")


@dataclass
class OSDSResult:
    """Outcome of an OSDS run."""

    best_latency_ms: float
    best_decisions: List[SplitDecision]
    best_plan: DistributionPlan
    episode_latencies_ms: np.ndarray
    episodes_run: int
    agent: DDPGAgent
    best_snapshot: dict

    @property
    def best_ips(self) -> float:
        return 1000.0 / self.best_latency_ms if self.best_latency_ms > 0 else float("inf")


@dataclass
class _EpisodeRollout:
    """One rolled-out (not yet committed) episode of a round."""

    transitions: List[Tuple[np.ndarray, np.ndarray, float, np.ndarray, bool]]
    latency_ms: float
    decisions: List[SplitDecision]
    #: Scalar rollouts carry the plan the environment already built; batched
    #: rollouts leave it None and the plan is built lazily on improvement.
    plan: Optional[DistributionPlan]


class OSDS:
    """Runs Algorithm 2 over a :class:`~repro.core.mdp.SplitMDP`."""

    def __init__(self, env: SplitMDP, config: Optional[OSDSConfig] = None) -> None:
        self.env = env
        self.config = config or OSDSConfig()
        cfg = self.config
        ddpg_cfg = cfg.ddpg
        # The exploration noise of Algorithm 2 is sigma^2; DDPGConfig carries
        # the standard deviation, so propagate the paper's value here.
        ddpg_cfg = DDPGConfig(
            actor_hidden=ddpg_cfg.actor_hidden,
            critic_hidden=ddpg_cfg.critic_hidden,
            actor_lr=ddpg_cfg.actor_lr,
            critic_lr=ddpg_cfg.critic_lr,
            gamma=ddpg_cfg.gamma,
            batch_size=ddpg_cfg.batch_size,
            noise_sigma=float(np.sqrt(cfg.sigma_squared)),
            tau=ddpg_cfg.tau,
            buffer_capacity=ddpg_cfg.buffer_capacity,
            warmup_transitions=ddpg_cfg.warmup_transitions,
        )
        self.agent = DDPGAgent(
            state_dim=env.state_dim,
            action_dim=env.action_dim,
            config=ddpg_cfg,
            seed=cfg.seed,
        )
        #: Root of the counter-based exploration streams (rule 2 above).
        self._root = root_seed(cfg.seed)
        #: Frozen acting policy (rule 1); refreshed from the live actor at
        #: policy-refresh boundaries.
        self._acting_actor = self.agent.actor_copy()

    # ------------------------------------------------------------------ #
    def _warm_up_seeds(self, seeds: Sequence[Sequence[np.ndarray]]) -> None:
        """Batch-evaluate the seed episodes' plans before training starts.

        Seed episodes have their whole action sequence fixed up-front, so
        their plans can be built and evaluated as one vectorised batch —
        through a :class:`~repro.runtime.shard.ShardedPlanEvaluator`'s warm
        worker pool when the environment carries one.  The batch engine
        seeds the evaluator's per-part compute memo, so when the episode
        loop replays the same plans volume-by-volume (the stepping path,
        which the DDPG transitions need) every part latency is a cache hit
        returning the bit-identical float.
        """
        evaluator = self.env.evaluator
        if not seeds or not hasattr(evaluator, "evaluate_plans"):
            return
        plans = []
        for actions in seeds:
            if len(actions) != self.env.num_volumes:
                continue
            decisions = [
                SplitDecision(
                    cuts=map_action_to_cuts(action, volume.output_height),
                    output_height=volume.output_height,
                )
                for action, volume in zip(actions, self.env.volumes)
            ]
            plans.append(self.env.build_plan(decisions))
        if plans:
            evaluator.evaluate_plans(plans)

    def epsilon(self, episode: int) -> float:
        """Exploration gate of Algorithm 2 line 8 (clipped at 0)."""
        eps = 1.0 - (episode * self.config.delta_epsilon) ** 2
        return float(max(eps, 0.0))

    # ------------------------------------------------------------------ #
    def _policy_action(self, episode: int, step: int, eps: float, obs: np.ndarray) -> np.ndarray:
        """Acting-policy output for ``(episode, step)``, exploration included.

        The gate draw and (when exploring) the noise draw come from the
        counter stream of exactly this ``(episode, step)`` pair, and the
        forward pass runs through the frozen acting actor one row at a time
        — identical calls in the scalar and lockstep paths.
        """
        rng = counter_rng(self._root, episode, step)
        sigma = self.agent.config.noise_sigma
        action = self._acting_actor.forward(obs)[0]
        if rng.random() < eps and sigma > 0:
            action = action + rng.normal(0.0, sigma, size=self.agent.action_dim)
        return np.clip(action, -1.0, 1.0).astype(np.float32)

    def _rollout_sequential(
        self, episode: int, seeds: Sequence[Sequence[np.ndarray]]
    ) -> _EpisodeRollout:
        """Roll one episode through the scalar environment."""
        env = self.env
        obs = env.reset()
        eps = self.epsilon(episode)
        forced = seeds[episode] if episode < len(seeds) else None
        transitions: List[Tuple[np.ndarray, np.ndarray, float, np.ndarray, bool]] = []
        latency = None
        decisions: Optional[List[SplitDecision]] = None
        plan: Optional[DistributionPlan] = None
        for step in range(env.num_volumes):
            if forced is not None:
                raw_action = np.asarray(forced[step], dtype=np.float32)
            else:
                raw_action = self._policy_action(episode, step, eps, obs)
            next_obs, reward, done, info = env.step(raw_action)
            transitions.append((obs, raw_action, reward, next_obs, done))
            obs = next_obs
            if done:
                latency = info["end_to_end_ms"]
                decisions = info["decisions"]
                plan = info["plan"]
        assert latency is not None and decisions is not None
        return _EpisodeRollout(transitions, latency, decisions, plan)

    def _rollout_round_batched(
        self,
        batch_env: BatchSplitMDP,
        first_episode: int,
        width: int,
        seeds: Sequence[Sequence[np.ndarray]],
    ) -> List[_EpisodeRollout]:
        """Roll ``width`` consecutive episodes in lockstep (one vectorised
        environment sweep per layer-volume, one scalar acting forward per
        episode)."""
        env = self.env
        obs = batch_env.reset()
        eps = [self.epsilon(first_episode + k) for k in range(width)]
        transitions: List[List[Tuple[np.ndarray, np.ndarray, float, np.ndarray, bool]]] = [
            [] for _ in range(width)
        ]
        infos: List[dict] = []
        for step in range(env.num_volumes):
            actions = np.empty((width, env.action_dim), dtype=np.float32)
            for k in range(width):
                episode = first_episode + k
                forced = seeds[episode] if episode < len(seeds) else None
                if forced is not None:
                    actions[k] = np.asarray(forced[step], dtype=np.float32)
                else:
                    actions[k] = self._policy_action(episode, step, eps[k], obs[k])
            next_obs, rewards, done, infos = batch_env.step(actions)
            for k in range(width):
                transitions[k].append(
                    (obs[k], actions[k], float(rewards[k]), next_obs[k], done)
                )
            obs = next_obs
        return [
            _EpisodeRollout(
                transitions[k],
                infos[k]["end_to_end_ms"],
                infos[k]["decisions"],
                None,
            )
            for k in range(width)
        ]

    # ------------------------------------------------------------------ #
    def run(
        self,
        train: bool = True,
        initial_decisions: Optional[Sequence[Sequence[np.ndarray]]] = None,
    ) -> OSDSResult:
        """Train for ``max_episodes`` episodes and return the best plan found.

        ``train=False`` skips the network updates (pure rollout of the
        current policy plus exploration), which the online controller uses
        when it only wants fresh split decisions from an already-trained
        actor.  ``initial_decisions`` optionally seeds the first episodes
        with externally provided raw action sequences (e.g. the linear-ratio
        heuristic), which both warm-starts the replay buffer and guarantees
        the search never returns anything worse than those seeds.

        Episodes execute in rounds of up to ``episode_batch`` (see the
        module docstring); the result is bit-identical for every execution
        width, so callers can pick the width purely for speed.
        """
        cfg = self.config
        env = self.env
        agent = self.agent

        best_latency = float("inf")
        best_decisions: Optional[List[SplitDecision]] = None
        best_plan: Optional[DistributionPlan] = None
        best_snapshot = agent.snapshot()
        episode_latencies: List[float] = []
        since_improvement = 0

        seeds = list(initial_decisions or [])
        self._warm_up_seeds(seeds)
        use_batch = cfg.episode_batch > 1 and BatchSplitMDP.supports(env)
        batch_envs: Dict[int, BatchSplitMDP] = {}

        episode = 0
        stopped = False
        while episode < cfg.max_episodes and not stopped:
            if episode % cfg.policy_refresh == 0:
                self._acting_actor.copy_from(agent.actor)
            width = min(
                cfg.episode_batch,
                cfg.policy_refresh - (episode % cfg.policy_refresh),
                cfg.max_episodes - episode,
            )
            if width > 1 and use_batch:
                batch_env = batch_envs.get(width)
                if batch_env is None:
                    batch_env = batch_envs.setdefault(width, BatchSplitMDP(env, width))
                rollouts = self._rollout_round_batched(batch_env, episode, width, seeds)
            else:
                rollouts = [
                    self._rollout_sequential(episode + k, seeds) for k in range(width)
                ]

            # Canonical commit: episode-major, step-major — the exact order
            # the scalar loop feeds the buffer and checks for improvement.
            committed = 0
            for rollout in rollouts:
                if train:
                    for state, action, reward, next_state, done in rollout.transitions:
                        agent.remember(state, action, reward, next_state, done)
                        for _ in range(cfg.updates_per_step):
                            agent.update()
                latency = rollout.latency_ms
                if latency < best_latency:
                    best_latency = latency
                    best_decisions = rollout.decisions
                    best_plan = rollout.plan or env.build_plan(rollout.decisions)
                    best_snapshot = agent.snapshot()
                    since_improvement = 0
                else:
                    since_improvement += 1
                episode_latencies.append(latency)
                committed += 1
                if cfg.patience is not None and since_improvement >= cfg.patience:
                    # Trailing episodes of this round were speculative; they
                    # are discarded uncommitted, exactly as if they never ran.
                    stopped = True
                    break
            episode += committed

        assert best_decisions is not None and best_plan is not None
        return OSDSResult(
            best_latency_ms=best_latency,
            best_decisions=best_decisions,
            best_plan=best_plan,
            episode_latencies_ms=np.asarray(episode_latencies),
            episodes_run=len(episode_latencies),
            agent=agent,
            best_snapshot=best_snapshot,
        )

    # ------------------------------------------------------------------ #
    def greedy_rollout(self) -> OSDSResult:
        """Single noise-free rollout of the current policy (no training)."""
        env = self.env
        agent = self.agent
        obs = env.reset()
        decisions: List[SplitDecision] = []
        latency = None
        plan = None
        for _ in range(env.num_volumes):
            action = agent.act(obs, noise=False)
            obs, _, done, info = env.step(action)
            if done:
                latency = info["end_to_end_ms"]
                decisions = info["decisions"]
                plan = info["plan"]
        assert latency is not None and plan is not None
        return OSDSResult(
            best_latency_ms=latency,
            best_decisions=decisions,
            best_plan=plan,
            episode_latencies_ms=np.asarray([latency]),
            episodes_run=1,
            agent=agent,
            best_snapshot=agent.snapshot(),
        )


__all__ = ["OSDS", "OSDSConfig", "OSDSResult"]
