"""OSDS: Optimal Split Decision Search (Algorithm 2).

OSDS trains a DDPG agent on the splitting MDP for ``Max_ep`` episodes.  Each
episode walks all layer-volumes, choosing per-volume split decisions either
from the actor (exploitation) or from the actor plus Gaussian noise
(exploration, gated by the schedule ``epsilon = 1 - (episode * delta_eps)^2``
of Algorithm 2 line 8).  The raw actions are stored in the replay buffer;
the networks are updated once per step.  The best split decisions ever
observed — together with the actor/critic parameters at that point — are
recorded and returned (lines 23-26), so OSDS degrades gracefully into a
guided random search even before the policy converges.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.ddpg import DDPGAgent, DDPGConfig
from repro.core.mdp import SplitMDP, map_action_to_cuts
from repro.nn.splitting import SplitDecision
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.utils.rng import SeedLike, as_rng


@dataclass
class OSDSConfig:
    """Hyper-parameters of Algorithm 2 (paper defaults in parentheses).

    ``max_episodes`` (4000) and ``delta_epsilon`` (1/250) control the length
    of training and the decay of the exploration gate; ``sigma_squared``
    (0.1 for four providers, 1.0 for sixteen) is the exploration noise
    variance.  Reduced episode counts are used by the fast test/bench
    configurations; the defaults match the paper.
    """

    max_episodes: int = 4000
    delta_epsilon: float = 1.0 / 250.0
    sigma_squared: float = 0.1
    ddpg: DDPGConfig = field(default_factory=DDPGConfig)
    updates_per_step: int = 1
    seed: SeedLike = 0
    #: Stop early when the best latency has not improved for this many
    #: episodes (None disables early stopping; the paper trains a fixed
    #: number of episodes).
    patience: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_episodes < 1:
            raise ValueError(f"max_episodes must be >= 1, got {self.max_episodes}")
        if self.delta_epsilon <= 0:
            raise ValueError(f"delta_epsilon must be > 0, got {self.delta_epsilon}")
        if self.sigma_squared < 0:
            raise ValueError(f"sigma_squared must be >= 0, got {self.sigma_squared}")
        if self.updates_per_step < 0:
            raise ValueError(f"updates_per_step must be >= 0, got {self.updates_per_step}")


@dataclass
class OSDSResult:
    """Outcome of an OSDS run."""

    best_latency_ms: float
    best_decisions: List[SplitDecision]
    best_plan: DistributionPlan
    episode_latencies_ms: np.ndarray
    episodes_run: int
    agent: DDPGAgent
    best_snapshot: dict

    @property
    def best_ips(self) -> float:
        return 1000.0 / self.best_latency_ms if self.best_latency_ms > 0 else float("inf")


class OSDS:
    """Runs Algorithm 2 over a :class:`~repro.core.mdp.SplitMDP`."""

    def __init__(self, env: SplitMDP, config: Optional[OSDSConfig] = None) -> None:
        self.env = env
        self.config = config or OSDSConfig()
        cfg = self.config
        ddpg_cfg = cfg.ddpg
        # The exploration noise of Algorithm 2 is sigma^2; DDPGConfig carries
        # the standard deviation, so propagate the paper's value here.
        ddpg_cfg = DDPGConfig(
            actor_hidden=ddpg_cfg.actor_hidden,
            critic_hidden=ddpg_cfg.critic_hidden,
            actor_lr=ddpg_cfg.actor_lr,
            critic_lr=ddpg_cfg.critic_lr,
            gamma=ddpg_cfg.gamma,
            batch_size=ddpg_cfg.batch_size,
            noise_sigma=float(np.sqrt(cfg.sigma_squared)),
            tau=ddpg_cfg.tau,
            buffer_capacity=ddpg_cfg.buffer_capacity,
            warmup_transitions=ddpg_cfg.warmup_transitions,
        )
        self.agent = DDPGAgent(
            state_dim=env.state_dim,
            action_dim=env.action_dim,
            config=ddpg_cfg,
            seed=cfg.seed,
        )
        self._rng = as_rng(cfg.seed)

    # ------------------------------------------------------------------ #
    def _warm_up_seeds(self, seeds: Sequence[Sequence[np.ndarray]]) -> None:
        """Batch-evaluate the seed episodes' plans before training starts.

        Seed episodes have their whole action sequence fixed up-front, so
        their plans can be built and evaluated as one vectorised batch.  The
        batch engine seeds the evaluator's per-part compute memo, so when the
        episode loop replays the same plans volume-by-volume (the stepping
        path, which the DDPG transitions need) every part latency is a cache
        hit returning the bit-identical float.
        """
        evaluator = self.env.evaluator
        if not seeds or not isinstance(evaluator, BatchPlanEvaluator):
            return
        plans = []
        for actions in seeds:
            if len(actions) != self.env.num_volumes:
                continue
            decisions = [
                SplitDecision(
                    cuts=map_action_to_cuts(action, volume.output_height),
                    output_height=volume.output_height,
                )
                for action, volume in zip(actions, self.env.volumes)
            ]
            plans.append(self.env.build_plan(decisions))
        if plans:
            evaluator.evaluate_plans(plans)

    def epsilon(self, episode: int) -> float:
        """Exploration gate of Algorithm 2 line 8 (clipped at 0)."""
        eps = 1.0 - (episode * self.config.delta_epsilon) ** 2
        return float(max(eps, 0.0))

    def run(
        self,
        train: bool = True,
        initial_decisions: Optional[Sequence[Sequence[np.ndarray]]] = None,
    ) -> OSDSResult:
        """Train for ``max_episodes`` episodes and return the best plan found.

        ``train=False`` skips the network updates (pure rollout of the
        current policy plus exploration), which the online controller uses
        when it only wants fresh split decisions from an already-trained
        actor.  ``initial_decisions`` optionally seeds the first episodes
        with externally provided raw action sequences (e.g. the linear-ratio
        heuristic), which both warm-starts the replay buffer and guarantees
        the search never returns anything worse than those seeds.
        """
        cfg = self.config
        env = self.env
        agent = self.agent

        best_latency = float("inf")
        best_decisions: Optional[List[SplitDecision]] = None
        best_plan: Optional[DistributionPlan] = None
        best_snapshot = agent.snapshot()
        episode_latencies: List[float] = []
        since_improvement = 0

        seeds = list(initial_decisions or [])
        self._warm_up_seeds(seeds)

        for episode in range(cfg.max_episodes):
            obs = env.reset()
            eps = self.epsilon(episode)
            forced_actions = seeds[episode] if episode < len(seeds) else None
            episode_latency = None
            for step in range(env.num_volumes):
                if forced_actions is not None:
                    raw_action = np.asarray(forced_actions[step], dtype=np.float32)
                elif self._rng.random() < eps:
                    raw_action = agent.act(obs, noise=True)
                else:
                    raw_action = agent.act(obs, noise=False)
                next_obs, reward, done, info = env.step(raw_action)
                if train:
                    agent.remember(obs, raw_action, reward, next_obs, done)
                    for _ in range(cfg.updates_per_step):
                        agent.update()
                obs = next_obs
                if done:
                    episode_latency = info["end_to_end_ms"]
                    if episode_latency < best_latency:
                        best_latency = episode_latency
                        best_decisions = info["decisions"]
                        best_plan = info["plan"]
                        best_snapshot = agent.snapshot()
                        since_improvement = 0
                    else:
                        since_improvement += 1
            assert episode_latency is not None
            episode_latencies.append(episode_latency)
            if cfg.patience is not None and since_improvement >= cfg.patience:
                break

        assert best_decisions is not None and best_plan is not None
        return OSDSResult(
            best_latency_ms=best_latency,
            best_decisions=best_decisions,
            best_plan=best_plan,
            episode_latencies_ms=np.asarray(episode_latencies),
            episodes_run=len(episode_latencies),
            agent=agent,
            best_snapshot=best_snapshot,
        )

    # ------------------------------------------------------------------ #
    def greedy_rollout(self) -> OSDSResult:
        """Single noise-free rollout of the current policy (no training)."""
        env = self.env
        agent = self.agent
        obs = env.reset()
        decisions: List[SplitDecision] = []
        latency = None
        plan = None
        for _ in range(env.num_volumes):
            action = agent.act(obs, noise=False)
            obs, _, done, info = env.step(action)
            if done:
                latency = info["end_to_end_ms"]
                decisions = info["decisions"]
                plan = info["plan"]
        assert latency is not None and plan is not None
        return OSDSResult(
            best_latency_ms=latency,
            best_decisions=decisions,
            best_plan=plan,
            episode_latencies_ms=np.asarray([latency]),
            episodes_run=1,
            agent=agent,
            best_snapshot=agent.snapshot(),
        )


__all__ = ["OSDS", "OSDSConfig", "OSDSResult"]
