"""Minimal NumPy neural-network toolkit for the DDPG agent.

No deep-learning framework is available offline, so the actor and critic are
implemented directly on NumPy: fully-connected layers with ReLU hidden
activations, an optional bounded (tanh) output, reverse-mode gradients, and
an Adam optimiser.  The implementation is deliberately small — dense layers
only, float32, batch-first — because that is all DDPG over a handful of
state/action dimensions needs, and it keeps each training step a few matrix
multiplications (BLAS-bound, per the HPC guides).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.utils.rng import SeedLike, as_rng

Array = np.ndarray


def _relu(x: Array) -> Array:
    return np.maximum(x, 0.0)


def _relu_grad(x: Array) -> Array:
    return (x > 0.0).astype(x.dtype)


def _tanh(x: Array) -> Array:
    return np.tanh(x)


def _tanh_grad(y: Array) -> Array:
    # Gradient expressed in terms of the *output* y = tanh(x).
    return 1.0 - y * y


class MLP:
    """A fully-connected network ``in -> hidden... -> out``.

    Parameters
    ----------
    layer_sizes:
        Sizes including input and output, e.g. ``[8, 400, 200, 100, 3]``.
    output_activation:
        ``None`` for a linear head (critic) or ``"tanh"`` for a bounded head
        (actor, range [-1, 1] matching the action-mapping Eq. 9).
    seed:
        Seed for the (He-style) weight initialisation.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        output_activation: Optional[str] = None,
        seed: SeedLike = 0,
    ) -> None:
        if len(layer_sizes) < 2:
            raise ValueError("layer_sizes needs at least an input and an output size")
        if output_activation not in (None, "tanh"):
            raise ValueError(f"unsupported output activation {output_activation!r}")
        rng = as_rng(seed)
        self.layer_sizes = [int(s) for s in layer_sizes]
        self.output_activation = output_activation
        self.weights: List[Array] = []
        self.biases: List[Array] = []
        for fan_in, fan_out in zip(self.layer_sizes[:-1], self.layer_sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(
                rng.normal(0.0, scale, size=(fan_in, fan_out)).astype(np.float32)
            )
            self.biases.append(np.zeros(fan_out, dtype=np.float32))
        # Final layer: small uniform init, standard for DDPG output layers.
        self.weights[-1] = rng.uniform(
            -3e-3, 3e-3, size=self.weights[-1].shape
        ).astype(np.float32)
        self._cache: Optional[List[Array]] = None

    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        return len(self.weights)

    def parameters(self) -> List[Array]:
        """Flat list of parameter arrays (weights then biases, layer order)."""
        params: List[Array] = []
        for w, b in zip(self.weights, self.biases):
            params.extend((w, b))
        return params

    def set_parameters(self, params: Sequence[Array]) -> None:
        """Load parameters produced by :meth:`parameters` (copies values)."""
        expected = 2 * self.num_layers
        if len(params) != expected:
            raise ValueError(f"expected {expected} parameter arrays, got {len(params)}")
        it = iter(params)
        for i in range(self.num_layers):
            w = next(it)
            b = next(it)
            if w.shape != self.weights[i].shape or b.shape != self.biases[i].shape:
                raise ValueError("parameter shape mismatch")
            self.weights[i] = w.astype(np.float32).copy()
            self.biases[i] = b.astype(np.float32).copy()

    def copy_from(self, other: "MLP") -> None:
        """Hard-copy another network's parameters into this one."""
        self.set_parameters(other.parameters())

    def soft_update_from(self, other: "MLP", tau: float) -> None:
        """Polyak update ``theta <- tau * other + (1 - tau) * theta``."""
        if not 0.0 <= tau <= 1.0:
            raise ValueError(f"tau must be in [0, 1], got {tau}")
        for i in range(self.num_layers):
            self.weights[i] = (tau * other.weights[i] + (1.0 - tau) * self.weights[i]).astype(
                np.float32
            )
            self.biases[i] = (tau * other.biases[i] + (1.0 - tau) * self.biases[i]).astype(
                np.float32
            )

    # ------------------------------------------------------------------ #
    def forward(self, x: Array, cache: bool = False) -> Array:
        """Forward pass on a ``(batch, in)`` array (a single vector is promoted)."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float32))
        activations = [x]
        h = x
        for i in range(self.num_layers):
            z = h @ self.weights[i] + self.biases[i]
            if i < self.num_layers - 1:
                h = _relu(z)
            elif self.output_activation == "tanh":
                h = _tanh(z)
            else:
                h = z
            activations.append(h)
        if cache:
            self._cache = activations
        return h

    def __call__(self, x: Array) -> Array:
        return self.forward(x)

    def backward(self, grad_output: Array) -> Tuple[List[Array], Array]:
        """Back-propagate ``dL/d(output)`` through the cached forward pass.

        Returns ``(parameter_gradients, grad_input)`` where the parameter
        gradients follow the layout of :meth:`parameters` and ``grad_input``
        is ``dL/d(input)`` (needed for the DDPG actor update, where the loss
        gradient flows through the critic's action input).
        """
        if self._cache is None:
            raise RuntimeError("backward called without a cached forward pass")
        activations = self._cache
        grad = np.atleast_2d(np.asarray(grad_output, dtype=np.float32))
        weight_grads: List[Array] = [np.zeros_like(w) for w in self.weights]
        bias_grads: List[Array] = [np.zeros_like(b) for b in self.biases]
        for i in range(self.num_layers - 1, -1, -1):
            out_i = activations[i + 1]
            in_i = activations[i]
            if i == self.num_layers - 1:
                if self.output_activation == "tanh":
                    grad = grad * _tanh_grad(out_i)
            else:
                grad = grad * _relu_grad(out_i)
            weight_grads[i] = in_i.T @ grad
            bias_grads[i] = grad.sum(axis=0)
            grad = grad @ self.weights[i].T
        param_grads: List[Array] = []
        for wg, bg in zip(weight_grads, bias_grads):
            param_grads.extend((wg, bg))
        return param_grads, grad


@dataclass
class Adam:
    """Adam optimiser over a fixed list of parameter arrays."""

    learning_rate: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    _m: List[Array] = field(default_factory=list)
    _v: List[Array] = field(default_factory=list)
    _t: int = 0

    def step(self, params: List[Array], grads: List[Array]) -> None:
        """Apply one in-place Adam update to ``params`` given ``grads``."""
        if len(params) != len(grads):
            raise ValueError("params and grads must have matching lengths")
        if not self._m:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        lr_t = self.learning_rate * np.sqrt(1 - self.beta2**self._t) / (1 - self.beta1**self._t)
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * (g * g)
            p -= lr_t * m / (np.sqrt(v) + self.epsilon)


__all__ = ["MLP", "Adam"]
