"""LC-PSS: Layer-Configuration based Partition Scheme Search (Algorithm 1).

The partitioner decides *where* to cut the CNN into layer-volumes before any
split decision is made.  It greedily refines the partition: starting from the
trivial single-volume scheme, each pass tries — for every current volume —
every possible additional partition location inside it, keeps the location
that minimises the mean ``Cp`` score over a set of random split decisions
(Eq. 4), and stops when no volume benefits from a further cut.

As the paper notes, the greedy loop visits at most ``O(|M|^2)`` candidate
schemes versus the factorial cost of brute force, while still recovering
layer-by-layer partitioning in the limit ``alpha -> 0`` (transmission cost
ignored) and very coarse fusion in the limit ``alpha -> 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.cost import PartitionCostModel
from repro.nn.graph import ModelSpec
from repro.utils.rng import SeedLike
from repro.utils.validation import check_fraction


@dataclass
class LCPSSResult:
    """Outcome of a partition-scheme search."""

    boundaries: List[int]
    score: float
    alpha: float
    num_random_splits: int
    passes: int
    history: List[float] = field(default_factory=list)

    @property
    def num_volumes(self) -> int:
        return len(self.boundaries) - 1


class LCPSS:
    """Greedy partition-scheme search driven by the ``Cp`` cost model.

    Parameters
    ----------
    model:
        The CNN model to partition.
    num_devices:
        Number of service providers (needed by the random split decisions).
    alpha:
        Trade-off between transmission volume and operation count in ``Cp``
        (paper default 0.75).
    num_random_splits:
        ``|Rr_s|``, the number of random split decisions averaged per
        candidate (paper default 100).
    seed:
        Seed for the random split decisions; two searches with the same seed
        evaluate candidates against the same split set.
    max_passes:
        Safety limit on refinement passes (the algorithm naturally stops far
        earlier; the bound is ``num_spatial_layers``).
    """

    def __init__(
        self,
        model: ModelSpec,
        num_devices: int,
        alpha: float = 0.75,
        num_random_splits: int = 100,
        seed: SeedLike = 0,
        max_passes: Optional[int] = None,
        input_bytes_per_element: float = 0.4,
    ) -> None:
        check_fraction(alpha, "alpha")
        self.model = model
        self.num_devices = int(num_devices)
        self.alpha = float(alpha)
        self.num_random_splits = int(num_random_splits)
        self.seed = seed
        self.max_passes = max_passes if max_passes is not None else model.num_spatial_layers
        self.cost_model = PartitionCostModel(
            model,
            num_devices,
            num_random_splits=num_random_splits,
            input_bytes_per_element=input_bytes_per_element,
            seed=seed,
        )

    # ------------------------------------------------------------------ #
    def score(self, boundaries: Sequence[int]) -> float:
        """Mean ``Cp`` of a candidate partition (Eq. 4)."""
        return self.cost_model.mean_score(boundaries, self.alpha)

    def search(self) -> LCPSSResult:
        """Run the greedy search and return the best partition scheme found."""
        n = self.model.num_spatial_layers
        boundaries = [0, n]
        best_score = self.score(boundaries)
        history = [best_score]
        passes = 0

        while passes < self.max_passes:
            passes += 1
            additions: List[int] = []
            # For every current volume, find the best interior cut (if any).
            for i in range(len(boundaries) - 1):
                lo, hi = boundaries[i], boundaries[i + 1]
                if hi - lo <= 1:
                    continue  # single-layer volume cannot be cut further
                best_j: Optional[int] = None
                best_j_score = self.score(boundaries)
                for j in range(lo + 1, hi):
                    candidate = sorted(set(boundaries) | {j})
                    candidate_score = self.score(candidate)
                    if candidate_score < best_j_score:
                        best_j_score = candidate_score
                        best_j = j
                if best_j is not None:
                    additions.append(best_j)
            if not additions:
                break
            boundaries = sorted(set(boundaries) | set(additions))
            best_score = self.score(boundaries)
            history.append(best_score)

        return LCPSSResult(
            boundaries=boundaries,
            score=best_score,
            alpha=self.alpha,
            num_random_splits=self.num_random_splits,
            passes=passes,
            history=history,
        )


__all__ = ["LCPSS", "LCPSSResult"]
