"""Partition cost model: the ``Cp`` score of Eq. 3.

LC-PSS scores a candidate partition scheme ``Rp`` by

    Cp = alpha * T + (1 - alpha) * O                                 (Eq. 3)

averaged over a set of *random split decisions* ``Rr_s`` (Eq. 4), where

* ``O`` is the total number of operations performed by all split-parts —
  including the recomputation caused by the halo overlap of fused
  layer-volumes (this is what penalises overly coarse partitions), and
* ``T`` is the total amount of data transmitted between endpoints for one
  inference — the requester's scatter, every volume-boundary redistribution
  and the final gather (this is what penalises overly fine partitions).

Both terms are normalised before mixing (operations by the single-device
backbone MAC count, transmission by the total activation footprint of the
model) so that ``alpha`` is a dimensionless trade-off knob, as in the paper
where ``alpha`` ranges over [0, 1] and 0.75 works best.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.nn.graph import ModelSpec
from repro.nn.splitting import SplitDecision, split_volume
from repro.runtime.plan import redistribution_bytes
from repro.utils.cache import LRUCache
from repro.utils.rng import SeedLike, as_rng
from repro.utils.units import FP16_BYTES
from repro.utils.validation import check_fraction


def random_split_decisions(
    num_devices: int,
    output_height: int,
    count: int,
    rng: np.random.Generator,
) -> List[SplitDecision]:
    """Draw ``count`` random split decisions for one layer-volume.

    Decisions are uniform random fractions over the devices, occasionally
    zeroing a device, mimicking the diversity of splits OSDS may later
    choose.  The same random fractions are reused across candidate partitions
    by seeding the generator once per LC-PSS run.
    """
    decisions = []
    for _ in range(count):
        fractions = rng.random(num_devices)
        drop = rng.random(num_devices) < 0.2
        fractions = np.where(drop, 0.0, fractions)
        if fractions.sum() <= 0:
            fractions[int(rng.integers(num_devices))] = 1.0
        decisions.append(SplitDecision.from_fractions(fractions, output_height))
    return decisions


@dataclass
class PartitionCost:
    """Breakdown of the cost of one (partition, split-decision) sample."""

    operations: float
    transmission_bytes: float
    normalized_operations: float
    normalized_transmission: float

    def score(self, alpha: float) -> float:
        """``Cp`` for a given alpha (Eq. 3, on the normalised terms)."""
        check_fraction(alpha, "alpha")
        return alpha * self.normalized_transmission + (1.0 - alpha) * self.normalized_operations


class PartitionCostModel:
    """Computes ``Cp`` for candidate partition schemes of one model.

    Parameters
    ----------
    model:
        The CNN model being partitioned.
    num_devices:
        Number of service providers (determines the split-decision arity).
    num_random_splits:
        ``|Rr_s|`` in the paper — how many random split decisions are
        averaged per candidate partition (paper default: 100).
    input_bytes_per_element:
        Encoding of the requester's input scatter (matches the evaluator's
        notion; see :class:`repro.runtime.evaluator.PlanEvaluator`).
    seed:
        Seed for the random split decisions.
    cache_size:
        Capacity of the mean-score LRU cache.  The random split set ``Rr_s``
        is a pure function of ``seed``, so the mean ``Cp`` of a partition
        scheme is deterministic per (boundaries, alpha) — LC-PSS re-scores
        the incumbent partition inside every refinement pass, and without
        the cache each of those re-scores re-votes all ``|Rr_s|`` samples
        from scratch.  Cached values are the identical floats a recompute
        would produce.
    """

    def __init__(
        self,
        model: ModelSpec,
        num_devices: int,
        num_random_splits: int = 100,
        input_bytes_per_element: float = 0.4,
        seed: SeedLike = 0,
        cache_size: int = 4096,
    ) -> None:
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        if num_random_splits < 1:
            raise ValueError(f"num_random_splits must be >= 1, got {num_random_splits}")
        self.model = model
        self.num_devices = int(num_devices)
        self.num_random_splits = int(num_random_splits)
        self.input_bytes_per_element = float(input_bytes_per_element)
        self.seed = seed
        # Normalisation constants: single-device operation count and the
        # total activation footprint over the spatial prefix.
        self._ops_norm = float(max(model.backbone_macs, 1))
        activation_bytes = model.input_bytes + sum(l.output_bytes for l in model.spatial_layers)
        self._bytes_norm = float(max(activation_bytes, 1))
        self._score_cache = LRUCache(cache_size)
        self._volume_cache: dict = {}

    # ------------------------------------------------------------------ #
    def _fresh_rng(self) -> np.random.Generator:
        # A fresh generator per scoring pass keeps the random split set
        # identical across candidate partitions within one LC-PSS run,
        # matching the paper where Rr_s is drawn once.
        return as_rng(self.seed)

    def _volumes_for(self, boundaries: Sequence[int]) -> list:
        """Partition the model, caching the volume list per boundary tuple."""
        key = tuple(int(b) for b in boundaries)
        volumes = self._volume_cache.get(key)
        if volumes is None:
            volumes = self.model.partition(list(key))
            self._volume_cache[key] = volumes
        return volumes

    def cache_info(self) -> dict:
        """Hit/miss counters of the mean-score cache."""
        return self._score_cache.info()

    def sample_cost(
        self,
        boundaries: Sequence[int],
        decisions_per_volume: Sequence[SplitDecision],
    ) -> PartitionCost:
        """Cost of one concrete (partition, split decisions) combination."""
        volumes = self._volumes_for(boundaries)
        if len(volumes) != len(decisions_per_volume):
            raise ValueError(
                f"{len(volumes)} volumes but {len(decisions_per_volume)} split decisions"
            )
        parts_per_volume = [
            split_volume(v, d) for v, d in zip(volumes, decisions_per_volume)
        ]
        operations = float(
            sum(p.macs for parts in parts_per_volume for p in parts)
        )
        # Transmission: requester scatter (encoded image) ...
        first_volume = volumes[0]
        scatter_elements = sum(
            p.num_input_rows * first_volume.first.in_w * first_volume.first.in_c
            for p in parts_per_volume[0]
            if not p.is_empty
        )
        transmission = scatter_elements * self.input_bytes_per_element
        # ... plus every volume-boundary redistribution (FP16 activations) ...
        for prev_parts, cur_volume, cur_parts in zip(
            parts_per_volume, volumes[1:], parts_per_volume[1:]
        ):
            row_bytes = cur_volume.first.in_w * cur_volume.first.in_c * FP16_BYTES
            transfers = redistribution_bytes(prev_parts, cur_parts, row_bytes)
            transmission += float(sum(transfers.values()))
        # ... plus the final gather of the last volume's output.
        transmission += float(
            sum(p.output_bytes for p in parts_per_volume[-1] if not p.is_empty)
        )
        return PartitionCost(
            operations=operations,
            transmission_bytes=transmission,
            normalized_operations=operations / self._ops_norm,
            normalized_transmission=transmission / self._bytes_norm,
        )

    def mean_score(self, boundaries: Sequence[int], alpha: float) -> float:
        """Average ``Cp`` over ``|Rr_s|`` random split decisions (Eq. 4).

        Results are memoized per (boundaries, alpha): the random split set is
        re-drawn from the same seed on every call, so a recompute could only
        ever return the identical value.
        """
        check_fraction(alpha, "alpha")
        key = (tuple(int(b) for b in boundaries), float(alpha))
        cached = self._score_cache.get(key)
        if cached is not None:
            return cached
        rng = self._fresh_rng()
        volumes = self._volumes_for(boundaries)
        total = 0.0
        for _ in range(self.num_random_splits):
            decisions = [
                random_split_decisions(self.num_devices, v.output_height, 1, rng)[0]
                for v in volumes
            ]
            total += self.sample_cost(boundaries, decisions).score(alpha)
        score = total / self.num_random_splits
        self._score_cache.put(key, score)
        return score


def partition_score(
    model: ModelSpec,
    boundaries: Sequence[int],
    num_devices: int,
    alpha: float = 0.75,
    num_random_splits: int = 100,
    seed: SeedLike = 0,
) -> float:
    """Convenience wrapper: mean ``Cp`` of a partition scheme."""
    cost_model = PartitionCostModel(
        model, num_devices, num_random_splits=num_random_splits, seed=seed
    )
    return cost_model.mean_score(boundaries, alpha)


__all__ = [
    "PartitionCost",
    "PartitionCostModel",
    "partition_score",
    "random_split_decisions",
]
