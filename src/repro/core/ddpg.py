"""DDPG: Deep Deterministic Policy Gradient agent (Lillicrap et al. 2015).

This is the continuous-action actor-critic algorithm the paper selects for
the layer-volume splitter (Section IV-C2): discrete split decisions would
need an action space whose dimension changes per volume and explodes with
``H_l``, so the agent instead emits ``|D|-1`` continuous values in [-1, 1]
that are later sorted and mapped onto integer cut points (Eq. 9).

Hyper-parameter defaults follow the paper: actor learning rate 1e-4, critic
learning rate 1e-3, discount 0.99, minibatch 64, Gaussian exploration noise
with sigma^2 = 0.1, actor hidden layers {400, 200, 100}, critic hidden layers
{400, 200, 100, 100}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.networks import MLP, Adam
from repro.core.replay import ReplayBuffer, Transition
from repro.utils.rng import SeedLike, as_rng, spawn_rng


@dataclass
class DDPGConfig:
    """Hyper-parameters of the DDPG agent (paper defaults)."""

    actor_hidden: Tuple[int, ...] = (400, 200, 100)
    critic_hidden: Tuple[int, ...] = (400, 200, 100, 100)
    actor_lr: float = 1e-4
    critic_lr: float = 1e-3
    gamma: float = 0.99
    batch_size: int = 64
    noise_sigma: float = np.sqrt(0.1)
    tau: float = 0.01
    buffer_capacity: int = 100_000
    warmup_transitions: int = 64

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {self.gamma}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if not 0.0 < self.tau <= 1.0:
            raise ValueError(f"tau must be in (0, 1], got {self.tau}")
        if self.noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {self.noise_sigma}")


class DDPGAgent:
    """Actor-critic agent with target networks and experience replay.

    The actor maps a state to an action in ``[-1, 1]^action_dim`` (tanh
    output, matching the action-boundary ``[A, B]`` of Eq. 9); the critic
    scores ``(state, action)`` pairs.
    """

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        config: Optional[DDPGConfig] = None,
        seed: SeedLike = 0,
    ) -> None:
        if state_dim < 1 or action_dim < 1:
            raise ValueError("state_dim and action_dim must be >= 1")
        self.state_dim = int(state_dim)
        self.action_dim = int(action_dim)
        self.config = config or DDPGConfig()
        rng = as_rng(seed)
        net_rngs = spawn_rng(rng, 4)
        self._rng = rng

        cfg = self.config
        self.actor = MLP(
            [state_dim, *cfg.actor_hidden, action_dim], output_activation="tanh", seed=net_rngs[0]
        )
        self.critic = MLP([state_dim + action_dim, *cfg.critic_hidden, 1], seed=net_rngs[1])
        self.target_actor = MLP(
            [state_dim, *cfg.actor_hidden, action_dim], output_activation="tanh", seed=net_rngs[2]
        )
        self.target_critic = MLP([state_dim + action_dim, *cfg.critic_hidden, 1], seed=net_rngs[3])
        self.target_actor.copy_from(self.actor)
        self.target_critic.copy_from(self.critic)

        self.actor_optimizer = Adam(learning_rate=cfg.actor_lr)
        self.critic_optimizer = Adam(learning_rate=cfg.critic_lr)
        self.buffer = ReplayBuffer(capacity=cfg.buffer_capacity, seed=rng.integers(2**31 - 1))
        self.updates = 0

    # ------------------------------------------------------------------ #
    def act(self, state: np.ndarray, noise: bool = False) -> np.ndarray:
        """Deterministic policy output, optionally with Gaussian exploration noise.

        The result is clipped to the actor's [-1, 1] range so the action
        mapping (Eq. 9) always receives in-range values.
        """
        action = self.actor.forward(state)[0]
        if noise and self.config.noise_sigma > 0:
            action = action + self._rng.normal(0.0, self.config.noise_sigma, size=action.shape)
        return np.clip(action, -1.0, 1.0).astype(np.float32)

    def act_batch(self, states: np.ndarray, noise: Optional[np.ndarray] = None) -> np.ndarray:
        """Policy output for a whole batch of states in one forward pass.

        This is the batch-path counterpart of :meth:`act`: the online
        controller rolls several candidate episodes in lockstep and queries
        the actor once per step instead of once per candidate.  ``noise``
        (optional, same shape as the output) is *pre-drawn* exploration noise
        added before clipping; passing it explicitly keeps the caller in
        charge of the RNG draw order, which :meth:`act`'s internal draws
        would otherwise entangle with the batching layout.
        """
        actions = self.actor.forward(np.atleast_2d(np.asarray(states, dtype=np.float32)))
        if noise is not None:
            actions = actions + noise
        return np.clip(actions, -1.0, 1.0).astype(np.float32)

    def draw_noise(self) -> np.ndarray:
        """One exploration-noise sample (the same draw :meth:`act` performs).

        Mirrors :meth:`act`'s gate exactly: with ``noise_sigma == 0`` no RNG
        state is consumed, so callers pre-drawing noise do not shift the
        agent's random stream relative to the sequential ``act`` path.
        """
        if self.config.noise_sigma <= 0:
            return np.zeros(self.action_dim)
        return self._rng.normal(0.0, self.config.noise_sigma, size=self.action_dim)

    def actor_copy(self) -> MLP:
        """A detached copy of the actor network (current parameters).

        Episode-batched OSDS acts through such a copy, refreshed only at
        policy-refresh boundaries: within a refresh window the acting policy
        is frozen, which decouples action selection from the (strictly
        sequential) replay updates and is what allows whole episode rounds
        to roll out in lockstep with bit-identical results at any execution
        width.  The copy forwards through the identical float path as
        :meth:`act`.
        """
        clone = MLP(
            [self.state_dim, *self.config.actor_hidden, self.action_dim],
            output_activation="tanh",
            seed=0,
        )
        clone.copy_from(self.actor)
        return clone

    def random_action(self) -> np.ndarray:
        """Uniform random action in [-1, 1] (pure exploration)."""
        return self._rng.uniform(-1.0, 1.0, size=self.action_dim).astype(np.float32)

    def remember(
        self,
        state: np.ndarray,
        action: np.ndarray,
        reward: float,
        next_state: np.ndarray,
        done: bool,
    ) -> None:
        """Store a transition (with the raw, unsorted action)."""
        self.buffer.add(
            Transition(
                state=np.asarray(state, dtype=np.float32),
                action=np.asarray(action, dtype=np.float32),
                reward=float(reward),
                next_state=np.asarray(next_state, dtype=np.float32),
                done=bool(done),
            )
        )

    # ------------------------------------------------------------------ #
    def update(self) -> Optional[Tuple[float, float]]:
        """One gradient step on critic and actor plus target soft-updates.

        Returns ``(critic_loss, actor_objective)`` or ``None`` when the
        replay buffer has not reached the warm-up size yet.
        """
        cfg = self.config
        if len(self.buffer) < cfg.warmup_transitions:
            return None
        states, actions, rewards, next_states, dones = self.buffer.sample(cfg.batch_size)
        batch = states.shape[0]

        # --- critic update: y = r + gamma * Q'(s', mu'(s')) (0 at terminal)
        next_actions = self.target_actor.forward(next_states)
        target_q = self.target_critic.forward(
            np.concatenate([next_states, next_actions], axis=1)
        )
        y = rewards + cfg.gamma * (1.0 - dones) * target_q
        critic_in = np.concatenate([states, actions], axis=1)
        q = self.critic.forward(critic_in, cache=True)
        td_error = q - y
        critic_loss = float(np.mean(td_error**2))
        grad_q = (2.0 / batch) * td_error
        critic_grads, _ = self.critic.backward(grad_q)
        self.critic_optimizer.step(self.critic.parameters(), critic_grads)

        # --- actor update: maximise Q(s, mu(s)) => gradient ascent
        actor_actions = self.actor.forward(states, cache=True)
        critic_in2 = np.concatenate([states, actor_actions], axis=1)
        q_actor = self.critic.forward(critic_in2, cache=True)
        actor_objective = float(np.mean(q_actor))
        # dJ/da through the critic; only the action part of the input grad.
        _, grad_input = self.critic.backward(np.full_like(q_actor, 1.0 / batch))
        grad_action = grad_input[:, self.state_dim :]
        # Ascend: pass -dJ/da as the "loss" gradient to the actor.
        actor_grads, _ = self.actor.backward(-grad_action)
        self.actor_optimizer.step(self.actor.parameters(), actor_grads)

        # --- target networks
        self.target_actor.soft_update_from(self.actor, cfg.tau)
        self.target_critic.soft_update_from(self.critic, cfg.tau)
        self.updates += 1
        return critic_loss, actor_objective

    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Copy of actor/critic parameters (used to store the best policy)."""
        return {
            "actor": [p.copy() for p in self.actor.parameters()],
            "critic": [p.copy() for p in self.critic.parameters()],
        }

    def restore(self, snapshot: dict) -> None:
        """Restore parameters produced by :meth:`snapshot`."""
        self.actor.set_parameters(snapshot["actor"])
        self.critic.set_parameters(snapshot["critic"])
        self.target_actor.copy_from(self.actor)
        self.target_critic.copy_from(self.critic)


__all__ = ["DDPGConfig", "DDPGAgent"]
