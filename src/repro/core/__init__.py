"""DistrEdge core algorithms.

* :mod:`repro.core.cost` — the partition score ``Cp = alpha*T + (1-alpha)*O``
  (Eq. 3) with the operation-count and transmission-volume accounting.
* :mod:`repro.core.partitioner` — LC-PSS, the greedy Layer-Configuration
  based Partition Scheme Search (Algorithm 1).
* :mod:`repro.core.mdp` — the layer-volume splitting MDP (Eqs. 6-9).
* :mod:`repro.core.networks` / :mod:`repro.core.replay` /
  :mod:`repro.core.ddpg` — a from-scratch NumPy DDPG agent (actor-critic,
  target networks, replay buffer, Adam).
* :mod:`repro.core.osds` — OSDS, the Optimal Split Decision Search
  (Algorithm 2) driving DDPG over the MDP.
* :mod:`repro.core.distredge` — the :class:`DistrEdge` facade combining
  LC-PSS and OSDS into a planner with the same interface as the baselines.
* :mod:`repro.core.online` — the online adaptation controller used in the
  highly-dynamic-network experiment (Section V-F / Fig. 13).
"""

from repro.core.cost import PartitionCostModel, partition_score
from repro.core.partitioner import LCPSS, LCPSSResult
from repro.core.mdp import SplitAction, SplitMDP, SplitState
from repro.core.networks import MLP, Adam
from repro.core.replay import ReplayBuffer, Transition
from repro.core.ddpg import DDPGAgent, DDPGConfig
from repro.core.osds import OSDS, OSDSConfig, OSDSResult
from repro.core.distredge import DistrEdge, DistrEdgeConfig
from repro.core.online import OnlineDistrEdgeController

__all__ = [
    "PartitionCostModel",
    "partition_score",
    "LCPSS",
    "LCPSSResult",
    "SplitMDP",
    "SplitState",
    "SplitAction",
    "MLP",
    "Adam",
    "ReplayBuffer",
    "Transition",
    "DDPGAgent",
    "DDPGConfig",
    "OSDS",
    "OSDSConfig",
    "OSDSResult",
    "DistrEdge",
    "DistrEdgeConfig",
    "OnlineDistrEdgeController",
]
