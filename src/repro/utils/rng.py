"""Random-number-generator helpers.

Every stochastic component in the package (bandwidth traces, random split
decisions in LC-PSS, DDPG exploration, workload generators) accepts either a
seed or a :class:`numpy.random.Generator`.  Funnelling construction through
:func:`as_rng` keeps experiments reproducible and lets callers fork
independent streams with :func:`spawn_rng`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Fork ``n`` statistically independent generators from ``rng``.

    The child streams do not perturb the parent stream, which makes
    experiment components independent of the order in which they draw.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a single integer seed from ``rng`` (for labelling/reporting)."""
    return int(rng.integers(0, 2**31 - 1))


def root_seed(seed: SeedLike = None) -> int:
    """Collapse any :data:`SeedLike` into one non-negative integer root.

    Integers pass through unchanged (so a fixed integer seed names a fixed
    family of counter streams); generators and seed sequences contribute one
    draw, and ``None`` pulls fresh OS entropy.  The result is the ``root``
    argument of :func:`counter_rng`.
    """
    if isinstance(seed, (int, np.integer)):
        root = int(seed)
        if root < 0:
            raise ValueError(f"integer seeds must be >= 0, got {root}")
        return root
    return derive_seed(as_rng(seed))


def counter_rng(root: int, *counters: int) -> np.random.Generator:
    """Counter-based stream derivation: a fresh generator per counter tuple.

    ``counter_rng(root, episode, step)`` is a pure function of its arguments
    — no hidden stream position — so a consumer drawing from it observes the
    *same* values no matter how many other counter tuples were consumed
    before, in what order, or from which process.  This is what makes
    episode-batched OSDS replay-consistent: exploration randomness for
    ``(episode, step)`` is identical whether episodes run one at a time or
    ``E`` at a time in lockstep.

    Distinct counter tuples yield statistically independent streams (the
    counters extend the :class:`numpy.random.SeedSequence` entropy pool).
    """
    entropy = [int(root)]
    for c in counters:
        c = int(c)
        if c < 0:
            raise ValueError(f"counters must be >= 0, got {c}")
        entropy.append(c)
    return np.random.default_rng(np.random.SeedSequence(entropy))


__all__ = ["SeedLike", "as_rng", "spawn_rng", "derive_seed", "root_seed", "counter_rng"]
