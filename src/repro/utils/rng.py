"""Random-number-generator helpers.

Every stochastic component in the package (bandwidth traces, random split
decisions in LC-PSS, DDPG exploration, workload generators) accepts either a
seed or a :class:`numpy.random.Generator`.  Funnelling construction through
:func:`as_rng` keeps experiments reproducible and lets callers fork
independent streams with :func:`spawn_rng`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an integer seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Fork ``n`` statistically independent generators from ``rng``.

    The child streams do not perturb the parent stream, which makes
    experiment components independent of the order in which they draw.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a single integer seed from ``rng`` (for labelling/reporting)."""
    return int(rng.integers(0, 2**31 - 1))


__all__ = ["SeedLike", "as_rng", "spawn_rng", "derive_seed"]
