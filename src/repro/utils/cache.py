"""A small LRU cache with hit/miss accounting.

Used by the batched evaluation engine (plan-level results), the memoized
compute oracle (per-part latencies) and the partition cost model (mean ``Cp``
scores).  ``functools.lru_cache`` is deliberately not used: the caches here
are per-instance (two evaluators must not share entries), need explicit
``seed``-style insertion from the vectorised batch path, and expose their
hit/miss counters so tests and benchmarks can assert that re-voting /
re-evaluation was actually eliminated.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Keys must be hashable.  ``get`` refreshes recency; ``put`` inserts or
    refreshes and evicts the oldest entry beyond ``maxsize``.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Optional[Any] = None) -> Optional[Any]:
        """Look up ``key``, refreshing its recency; counts a hit or a miss."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key: Hashable, default: Optional[Any] = None) -> Optional[Any]:
        """Look up ``key`` without touching recency or the counters."""
        return self._data.get(key, default)

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the oldest beyond capacity."""
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> Dict[str, int]:
        """Counters snapshot: ``{"size", "maxsize", "hits", "misses"}``."""
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
        }


__all__ = ["LRUCache"]
