"""Unit conversions used across the simulator.

Conventions
-----------
* Time is carried in **milliseconds** inside latency models and the runtime
  simulator (the paper reports per-image latency in ms), and in **seconds**
  inside bandwidth traces (trace time slots are minutes-long).
* Data sizes are carried in **bytes**.
* Bandwidths are specified in **Mbps** (the paper's unit) and converted to
  bytes/second at the link layer.
"""

from __future__ import annotations

#: One megabit per second, expressed in bits per second.
MBPS: float = 1.0e6

#: Bytes occupied by one FP16 tensor element (the paper runs TensorRT FP16).
FP16_BYTES: int = 2

#: Bytes occupied by one FP32 tensor element.
FP32_BYTES: int = 4


def megabits_to_bytes(megabits: float) -> float:
    """Convert a size in megabits to bytes."""
    return megabits * MBPS / 8.0


def bytes_per_second(mbps: float) -> float:
    """Convert a bandwidth in Mbps to bytes per second."""
    if mbps < 0:
        raise ValueError(f"bandwidth must be non-negative, got {mbps}")
    return mbps * MBPS / 8.0


def ms_to_s(milliseconds: float) -> float:
    """Convert milliseconds to seconds."""
    return milliseconds / 1000.0


def s_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return seconds * 1000.0


def bytes_to_megabytes(n_bytes: float) -> float:
    """Convert bytes to megabytes (1 MB = 1e6 bytes)."""
    return n_bytes / 1.0e6


__all__ = [
    "MBPS",
    "FP16_BYTES",
    "FP32_BYTES",
    "megabits_to_bytes",
    "bytes_per_second",
    "ms_to_s",
    "s_to_ms",
    "bytes_to_megabytes",
]
