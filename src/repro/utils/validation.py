"""Small validation helpers shared by configuration dataclasses."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Raise ``ValueError`` unless ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def check_probability_vector(values: Sequence[float], name: str) -> np.ndarray:
    """Validate that ``values`` is a non-negative vector summing to 1."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be non-negative")
    total = float(arr.sum())
    if not np.isclose(total, 1.0):
        raise ValueError(f"{name} must sum to 1, sums to {total}")
    return arr


def check_monotone_non_decreasing(values: Sequence[float], name: str) -> np.ndarray:
    """Validate that ``values`` is sorted in non-decreasing order."""
    arr = np.asarray(values, dtype=float)
    if arr.size > 1 and np.any(np.diff(arr) < 0):
        raise ValueError(f"{name} must be non-decreasing, got {list(values)}")
    return arr


__all__ = [
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_probability_vector",
    "check_monotone_non_decreasing",
]
