"""Shared utilities: RNG handling, units, validation helpers."""

from repro.utils.rng import as_rng, spawn_rng
from repro.utils.units import (
    MBPS,
    bytes_per_second,
    megabits_to_bytes,
    ms_to_s,
    s_to_ms,
)
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "as_rng",
    "spawn_rng",
    "MBPS",
    "bytes_per_second",
    "megabits_to_bytes",
    "ms_to_s",
    "s_to_ms",
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_probability_vector",
]
