"""Distributed-inference runtime simulator.

Models the paper's execution setup (Section V-A): a service requester streams
images one at a time (an image is not sent before the previous image's result
has returned), service providers hold their pre-loaded split-part weights and
run three concurrent activities — receiving, computing, transmitting — and
all traffic flows through a WiFi router.

* :mod:`repro.runtime.plan` — the :class:`DistributionPlan` data model
  (partition scheme + per-volume split decisions + head placement) and the
  redistribution-volume arithmetic shared with the cost models.
* :mod:`repro.runtime.lanes` — per-device send/receive/compute lane
  bookkeeping (the three threads of the testbed).
* :mod:`repro.runtime.evaluator` — the single-image end-to-end latency
  evaluator with per-volume accumulated latencies and compute/transmission
  breakdowns.
* :mod:`repro.runtime.batch` — the batched evaluation engine: vectorised
  scheduling of many plans at once plus the LRU evaluation cache every
  planner routes through.
* :mod:`repro.runtime.shard` — the sharded evaluation engine: plan batches
  partitioned across a persistent worker-process pool, each worker running
  its own batch engine, merged bit-identically to the in-process path.
* :mod:`repro.runtime.streaming` — the image-stream simulator producing the
  paper's IPS metric and per-image latency series over a bandwidth trace.
"""

from repro.runtime.plan import (
    DistributionPlan,
    VolumeAssignment,
    redistribution_bytes,
    scatter_bytes,
)
from repro.runtime.lanes import Lane, LaneSet
from repro.runtime.evaluator import EvaluationResult, PlanEvaluator, VolumeTiming
from repro.runtime.batch import BatchPlanEvaluator, network_state_signature, plan_signature
from repro.runtime.oracles import MemoizedComputeOracle
from repro.runtime.shard import OracleSpec, ShardedPlanEvaluator
from repro.runtime.streaming import StreamingResult, StreamingSimulator

__all__ = [
    "DistributionPlan",
    "VolumeAssignment",
    "redistribution_bytes",
    "scatter_bytes",
    "Lane",
    "LaneSet",
    "PlanEvaluator",
    "BatchPlanEvaluator",
    "ShardedPlanEvaluator",
    "OracleSpec",
    "MemoizedComputeOracle",
    "network_state_signature",
    "plan_signature",
    "EvaluationResult",
    "VolumeTiming",
    "StreamingSimulator",
    "StreamingResult",
]
