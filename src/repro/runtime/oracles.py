"""Compute-latency oracles used by the schedule evaluator.

The evaluator is agnostic about *where* per-part compute latencies come
from.  Two oracles are provided:

* :class:`GroundTruthComputeOracle` — queries the device latency model
  directly.  This is the "real execution on devices" path: the paper's final
  IPS numbers are measured on real hardware, and this oracle plays that role
  in the simulation.
* :class:`ProfileComputeOracle` — queries per-device latency *profiles*
  (tables or regression models).  This is the controller's view of the world
  and is what planners (and optionally OSDS training) use; the difference
  between the two oracles is exactly the profiling error a real deployment
  would face.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Protocol, Sequence

from repro.devices.latency_model import ComputeLatencyModel, layer_compute_latency_ms
from repro.devices.profiles import LatencyProfile
from repro.devices.specs import DeviceInstance
from repro.nn.graph import LayerVolume
from repro.nn.layers import LayerSpec
from repro.nn.splitting import SplitPart


class ComputeOracle(Protocol):
    """Interface: per-part and per-head compute latency predictions."""

    def part_latency_ms(self, device_index: int, volume: LayerVolume, part: SplitPart) -> float:
        """Latency of one split-part on one provider."""
        ...

    def head_latency_ms(self, device_index: int, head_layers: Sequence[LayerSpec]) -> float:
        """Latency of the trailing dense layers on one provider."""
        ...


class GroundTruthComputeOracle:
    """Oracle backed by the nonlinear device latency model (real execution)."""

    def __init__(self, devices: Sequence[DeviceInstance]) -> None:
        self.devices = list(devices)
        self._models = [ComputeLatencyModel(d.dtype) for d in self.devices]

    def part_latency_ms(self, device_index: int, volume: LayerVolume, part: SplitPart) -> float:
        return self._models[device_index].part(part, volume)

    def head_latency_ms(self, device_index: int, head_layers: Sequence[LayerSpec]) -> float:
        model = self._models[device_index]
        return sum(model.layer(layer) for layer in head_layers)


class ProfileComputeOracle:
    """Oracle backed by per-device latency profiles (the controller's view).

    Parameters
    ----------
    devices:
        The providers (needed for head-latency fallback).
    profiles:
        One :class:`~repro.devices.profiles.LatencyProfile` per provider,
        indexed like ``devices``.  Typically profiles are built per device
        *type* and shared by providers of the same type, exactly as the paper
        profiles each of its four device types once.
    """

    def __init__(
        self,
        devices: Sequence[DeviceInstance],
        profiles: Sequence[LatencyProfile],
    ) -> None:
        if len(devices) != len(profiles):
            raise ValueError(
                f"{len(devices)} devices but {len(profiles)} profiles were provided"
            )
        self.devices = list(devices)
        self.profiles = list(profiles)
        self._fallback = GroundTruthComputeOracle(devices)

    def part_latency_ms(self, device_index: int, volume: LayerVolume, part: SplitPart) -> float:
        if part.is_empty:
            return 0.0
        profile = self.profiles[device_index]
        layer_rows = [
            (layer.name, b - a) for layer, (a, b) in zip(volume.layers, part.layer_out_rows)
        ]
        return profile.volume_latency_ms(layer_rows)

    def head_latency_ms(self, device_index: int, head_layers: Sequence[LayerSpec]) -> float:
        # Dense layers are not part of the split profiles (they are never
        # split); fall back to the device model, as the controller would use
        # a separate single measurement for the head.
        return self._fallback.head_latency_ms(device_index, head_layers)


def profiles_by_device(
    devices: Sequence[DeviceInstance],
    per_type_profiles: Mapping[str, LatencyProfile],
) -> List[LatencyProfile]:
    """Expand per-device-type profiles to a per-provider list.

    The paper profiles each device *type* once and reuses the result for all
    providers of that type; this helper performs the expansion and raises a
    ``KeyError`` naming the missing type otherwise.
    """
    out: List[LatencyProfile] = []
    for d in devices:
        try:
            out.append(per_type_profiles[d.type_name])
        except KeyError:
            raise KeyError(
                f"no profile for device type {d.type_name!r}; available: "
                f"{sorted(per_type_profiles)}"
            ) from None
    return out


__all__ = [
    "ComputeOracle",
    "GroundTruthComputeOracle",
    "ProfileComputeOracle",
    "profiles_by_device",
]
