"""Compute-latency oracles used by the schedule evaluator.

The evaluator is agnostic about *where* per-part compute latencies come
from.  Two oracles are provided:

* :class:`GroundTruthComputeOracle` — queries the device latency model
  directly.  This is the "real execution on devices" path: the paper's final
  IPS numbers are measured on real hardware, and this oracle plays that role
  in the simulation.
* :class:`ProfileComputeOracle` — queries per-device latency *profiles*
  (tables or regression models).  This is the controller's view of the world
  and is what planners (and optionally OSDS training) use; the difference
  between the two oracles is exactly the profiling error a real deployment
  would face.

Both can be wrapped in a :class:`MemoizedComputeOracle`, which caches
per-part latencies keyed on ``(device, layer-volume, output rows)``.  Both
underlying oracles are deterministic functions of that key, so memoization
returns the *identical* float and cannot change any schedule — it only
removes the re-computation of identical (partition, split) samples that the
OSDS episode loop and LC-PSS re-voting otherwise pay for over and over.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

from repro.devices.latency_model import ComputeLatencyModel
from repro.devices.profiles import LatencyProfile
from repro.devices.specs import DeviceInstance
from repro.nn.graph import LayerVolume
from repro.nn.layers import LayerSpec
from repro.nn.splitting import SplitPart
from repro.utils.cache import LRUCache


class ComputeOracle(Protocol):
    """Interface: per-part and per-head compute latency predictions."""

    def part_latency_ms(self, device_index: int, volume: LayerVolume, part: SplitPart) -> float:
        """Latency of one split-part on one provider."""
        ...

    def head_latency_ms(self, device_index: int, head_layers: Sequence[LayerSpec]) -> float:
        """Latency of the trailing dense layers on one provider."""
        ...


class GroundTruthComputeOracle:
    """Oracle backed by the nonlinear device latency model (real execution)."""

    def __init__(self, devices: Sequence[DeviceInstance]) -> None:
        self.devices = list(devices)
        self._models = [ComputeLatencyModel(d.dtype) for d in self.devices]

    def part_latency_ms(self, device_index: int, volume: LayerVolume, part: SplitPart) -> float:
        return self._models[device_index].part(part, volume)

    def head_latency_ms(self, device_index: int, head_layers: Sequence[LayerSpec]) -> float:
        model = self._models[device_index]
        return sum(model.layer(layer) for layer in head_layers)


class ProfileComputeOracle:
    """Oracle backed by per-device latency profiles (the controller's view).

    Parameters
    ----------
    devices:
        The providers (needed for head-latency fallback).
    profiles:
        One :class:`~repro.devices.profiles.LatencyProfile` per provider,
        indexed like ``devices``.  Typically profiles are built per device
        *type* and shared by providers of the same type, exactly as the paper
        profiles each of its four device types once.
    """

    def __init__(
        self,
        devices: Sequence[DeviceInstance],
        profiles: Sequence[LatencyProfile],
    ) -> None:
        if len(devices) != len(profiles):
            raise ValueError(
                f"{len(devices)} devices but {len(profiles)} profiles were provided"
            )
        self.devices = list(devices)
        self.profiles = list(profiles)
        self._fallback = GroundTruthComputeOracle(devices)

    def part_latency_ms(self, device_index: int, volume: LayerVolume, part: SplitPart) -> float:
        if part.is_empty:
            return 0.0
        profile = self.profiles[device_index]
        layer_rows = [
            (layer.name, b - a) for layer, (a, b) in zip(volume.layers, part.layer_out_rows)
        ]
        return profile.volume_latency_ms(layer_rows)

    def head_latency_ms(self, device_index: int, head_layers: Sequence[LayerSpec]) -> float:
        # Dense layers are not part of the split profiles (they are never
        # split); fall back to the device model, as the controller would use
        # a separate single measurement for the head.
        return self._fallback.head_latency_ms(device_index, head_layers)


class MemoizedComputeOracle:
    """Memoizing wrapper around any :class:`ComputeOracle`.

    The latency of a split-part is fully determined by the provider, the
    layer-volume and the part's output row range (the per-sub-layer row
    ranges follow deterministically via the exact VSL arithmetic), so the
    logical cache key is ``(volume, device_index, out_rows)``.  The cache is
    two-level: volumes resolve to an inner table first by object identity
    (the splitting MDP re-uses the same volume objects across thousands of
    episodes) and only on an identity miss by *structural* equality —
    :class:`LayerVolume` is a frozen dataclass — so equal volumes built by
    different :class:`DistributionPlan` objects, or seeded by the vectorised
    batch engine, share one table while the hot path never re-hashes a
    volume.

    Wrapping is behaviour-preserving by construction: a hit returns the very
    float a miss would have computed.
    """

    def __init__(self, base: ComputeOracle, max_entries: int = 1 << 20) -> None:
        if isinstance(base, MemoizedComputeOracle):
            base = base.base
        self.base: ComputeOracle = base
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self._entries = 0
        # Structural volume -> {(device_index, out_rows): latency_ms}.
        self._by_volume: Dict[LayerVolume, Dict[Tuple, float]] = {}
        # Identity fast path; the referenced volumes are kept alive by
        # _by_volume's keys plus _id_refs, so ids cannot be recycled.
        self._by_id: Dict[int, Dict[Tuple, float]] = {}
        self._id_refs: Dict[int, LayerVolume] = {}
        self._head_cache = LRUCache(256)

    #: Bound on the identity fast-path map.  Every freshly partitioned plan
    #: creates new (structurally equal) volume objects, so the id map grows
    #: with plan churn even though the structural tables stay flat; resetting
    #: it merely costs the next lookup one structural hash per volume.
    _ID_MAP_LIMIT = 8192

    def _table(self, volume: LayerVolume) -> Dict[Tuple, float]:
        table = self._by_id.get(id(volume))
        if table is None:
            if len(self._by_id) >= self._ID_MAP_LIMIT:
                self._by_id.clear()
                self._id_refs.clear()
            table = self._by_volume.get(volume)
            if table is None:
                table = {}
                self._by_volume[volume] = table
            self._by_id[id(volume)] = table
            self._id_refs[id(volume)] = volume
        return table

    def part_latency_ms(self, device_index: int, volume: LayerVolume, part: SplitPart) -> float:
        if part.is_empty:
            # Both concrete oracles return 0.0 for empty parts.
            return 0.0
        table = self._table(volume)
        key = (device_index, part.out_rows)
        value = table.get(key)
        if value is None:
            self.misses += 1
            value = self.base.part_latency_ms(device_index, volume, part)
            self._insert(table, key, value)
        else:
            self.hits += 1
        return value

    def head_latency_ms(self, device_index: int, head_layers: Sequence[LayerSpec]) -> float:
        # Head layers are never split: one entry per (device, head) suffices
        # and the tuple being hashed is tiny.
        key = ("head", device_index, tuple(head_layers))
        value = self._head_cache.get(key)
        if value is None:
            self.misses += 1
            value = self.base.head_latency_ms(device_index, head_layers)
            self._head_cache.put(key, value)
        else:
            self.hits += 1
        return value

    def _insert(self, table: Dict[Tuple, float], key: Tuple, value: float) -> None:
        if self._entries >= self.max_entries:
            # Degenerate workloads (e.g. sweeping every possible split of a
            # huge model) could grow without bound; a full reset is cheap and
            # keeps the wrapper behaviour-preserving (the dropped entries are
            # simply recomputed on the next lookup).  ``table`` keeps working
            # as a detached scratch dict until its volume is re-registered.
            self.clear()
            table.clear()
        if key not in table:
            self._entries += 1
        table[key] = value

    # -- batch-path integration ------------------------------------------- #
    def seed_parts(
        self,
        volume: LayerVolume,
        items: Mapping[Tuple[int, Tuple[int, int]], float],
    ) -> None:
        """Bulk-insert part latencies computed by the vectorised batch engine.

        ``items`` maps ``(device_index, out_rows)`` to latency.  The batch
        engine mirrors the scalar latency model operation-for-operation, so
        seeded values are bit-identical to what a miss would compute
        (asserted by the parity test suite).
        """
        table = self._table(volume)
        for key, value in items.items():
            if key not in table:
                self._insert(table, key, float(value))

    def cache_info(self) -> dict:
        return {
            "size": self._entries,
            "maxsize": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        self._by_volume.clear()
        self._by_id.clear()
        self._id_refs.clear()
        self._head_cache.clear()
        self._entries = 0
        self.hits = 0
        self.misses = 0


def unwrap_oracle(oracle: Optional[ComputeOracle]) -> Optional[ComputeOracle]:
    """Return the concrete oracle behind an optional memoizing wrapper."""
    if isinstance(oracle, MemoizedComputeOracle):
        return oracle.base
    return oracle


def profiles_by_device(
    devices: Sequence[DeviceInstance],
    per_type_profiles: Mapping[str, LatencyProfile],
) -> List[LatencyProfile]:
    """Expand per-device-type profiles to a per-provider list.

    The paper profiles each device *type* once and reuses the result for all
    providers of that type; this helper performs the expansion and raises a
    ``KeyError`` naming the missing type otherwise.
    """
    out: List[LatencyProfile] = []
    for d in devices:
        try:
            out.append(per_type_profiles[d.type_name])
        except KeyError:
            raise KeyError(
                f"no profile for device type {d.type_name!r}; available: "
                f"{sorted(per_type_profiles)}"
            ) from None
    return out


__all__ = [
    "ComputeOracle",
    "GroundTruthComputeOracle",
    "MemoizedComputeOracle",
    "ProfileComputeOracle",
    "profiles_by_device",
    "unwrap_oracle",
]
