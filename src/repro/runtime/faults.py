"""Fleet churn, failure injection and recovery policies.

The serving stack assumed an immortal fleet: every device that starts a
scenario finishes it.  This module removes that assumption with four pieces:

* :class:`FaultTrace` — a seeded, deterministic timeline of device **join /
  leave / crash** events on an absolute-ms clock, plus the ``churn:`` spec
  grammar (:func:`parse_churn_spec`, :func:`resolve_churn`) mirroring the
  ``gen:`` / ``traffic:`` grammars.  A *crash* kills work in flight on the
  device; a *leave* is graceful (in-flight work finishes, the device just
  stops taking new work); a *join* revives a previously lost roster member.
* :class:`RetryPolicy` — per-tenant recovery: max attempts, exponential
  backoff with counter-based seeded jitter (execution-order independent, so
  every serving loop draws identical delays), and an optional per-request
  timeout.
* :class:`DegradationPolicy` — graceful load shedding: when the live fleet
  fraction drops below a threshold, the lowest-weight tenants have their
  open-loop arrivals rejected at arrival time for the duration of the
  degraded window, instead of letting the whole fleet collapse.
* :func:`resolve_faulted_request` / :func:`degrade_plan` — the shared pure
  decision logic: given a dispatch, a latency oracle and the trace, walk the
  retry chain (replan around dead devices, detect mid-inference crashes,
  back off, abandon) and return one :class:`ResolvedRequest`.  Both scalar
  serving loops and the array engine call this same function, which is what
  keeps churn under the repo's bit-exact parity contract.

Determinism contract: every decision here is a pure function of
``(trace, policies, dispatch times, latency floats)`` — no wall clocks, no
shared RNG streams — so the reference, batched and array loops reach
identical verdicts in identical order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.runtime.plan import DistributionPlan
from repro.utils.rng import counter_rng

#: Prefix of churn spec strings accepted by :func:`resolve_churn`.
CHURN_PREFIX = "churn:"

#: Event kinds the grammar understands.
CHURN_KINDS = ("crash", "leave", "join")


# ---------------------------------------------------------------------- #
# fault events and traces
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class FaultEvent:
    """One membership event: ``device`` crashes, leaves or (re)joins at ``t_ms``."""

    t_ms: float
    kind: str
    device: int

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ValueError(
                f"unknown churn event kind {self.kind!r}; expected one of {sorted(CHURN_KINDS)}"
            )
        if self.t_ms < 0:
            raise ValueError(f"churn event times must be >= 0, got {self.t_ms}")

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.device}@{self.t_ms:g}"


@dataclass(frozen=True)
class FaultTrace:
    """A validated timeline of membership events over a fixed device roster.

    The roster has ``num_devices`` positions, all live at t=0.  Events toggle
    liveness; a ``join`` may only revive a roster member that previously
    crashed or left (the fleet never grows beyond its roster — index
    stability is what keeps plans, lane accounting and reports comparable).
    An event takes effect *at* its timestamp: ``live_indices(t)`` reflects
    every event with ``t_event <= t``.

    Crash semantics for in-flight work use the **open** interval: a request
    spanning ``(start_ms, completion_ms)`` is killed by a crash strictly
    inside it.  A crash exactly at the completion tick does not kill the
    request (it already finished); a crash exactly at the dispatch tick is
    excluded at planning time instead (the dead device is not in
    ``live_indices(start_ms)``).
    """

    events: Tuple[FaultEvent, ...]
    num_devices: int

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {self.num_devices}")
        events = tuple(self.events)
        object.__setattr__(self, "events", events)
        prev = 0.0
        live = set(range(self.num_devices))
        seg_times: List[float] = [0.0]
        seg_live: List[Tuple[int, ...]] = [tuple(sorted(live))]
        for e in events:
            if e.t_ms < prev:
                raise ValueError(
                    f"churn event times must be non-decreasing, got {e.t_ms} after {prev}"
                )
            prev = e.t_ms
            if not 0 <= e.device < self.num_devices:
                raise ValueError(
                    f"churn event {e.label!r} references unknown device id {e.device}; "
                    f"the fleet has {self.num_devices} devices (0..{self.num_devices - 1})"
                )
            if e.kind in ("crash", "leave"):
                if e.device not in live:
                    raise ValueError(
                        f"churn event {e.label!r} removes device {e.device}, "
                        "which is not live at that time"
                    )
                if len(live) == 1:
                    raise ValueError(
                        f"churn event {e.label!r} would {e.kind} the last remaining "
                        "device; the fleet must stay non-empty"
                    )
                live.remove(e.device)
            else:  # join
                if e.device in live:
                    raise ValueError(
                        f"churn event {e.label!r} joins device {e.device}, "
                        "which is already live"
                    )
                live.add(e.device)
            seg_times.append(e.t_ms)
            seg_live.append(tuple(sorted(live)))
        object.__setattr__(self, "_seg_times", tuple(seg_times))
        object.__setattr__(self, "_seg_live", tuple(seg_live))

    # -------------------------------------------------------------- #
    def live_indices(self, t_ms: float) -> Tuple[int, ...]:
        """Sorted tuple of live device indices at time ``t_ms`` (events at
        ``t_ms`` already applied) — also the churn component of cache keys."""
        times: Tuple[float, ...] = self._seg_times  # type: ignore[attr-defined]
        idx = int(np.searchsorted(np.asarray(times), t_ms, side="right")) - 1
        return self._seg_live[max(idx, 0)]  # type: ignore[attr-defined]

    def live_fraction(self, t_ms: float) -> float:
        return len(self.live_indices(t_ms)) / self.num_devices

    def first_crash_touching(
        self, devices: FrozenSet[int], start_ms: float, end_ms: float
    ) -> Optional[FaultEvent]:
        """Earliest crash of a device in ``devices`` strictly inside
        ``(start_ms, end_ms)``, or ``None`` — the mid-inference kill test."""
        for e in self.events:
            if e.t_ms >= end_ms:
                return None
            if e.t_ms > start_ms and e.kind == "crash" and e.device in devices:
                return e
        return None

    def next_event_after(self, t_ms: float) -> Optional[float]:
        """Timestamp of the first event strictly after ``t_ms`` (any kind)."""
        for e in self.events:
            if e.t_ms > t_ms:
                return e.t_ms
        return None

    def segments(self, start_ms: float, end_ms: float) -> List[Tuple[float, float, Tuple[int, ...]]]:
        """Constant-liveness intervals ``(t0_ms, t1_ms, live)`` covering
        ``[start_ms, end_ms)``."""
        out: List[Tuple[float, float, Tuple[int, ...]]] = []
        times: Tuple[float, ...] = self._seg_times  # type: ignore[attr-defined]
        lives: Tuple[Tuple[int, ...], ...] = self._seg_live  # type: ignore[attr-defined]
        for i, (t0, live) in enumerate(zip(times, lives)):
            t1 = times[i + 1] if i + 1 < len(times) else float("inf")
            lo = max(t0, start_ms)
            hi = min(t1, end_ms)
            if hi > lo:
                out.append((lo, hi, live))
        return out

    # -------------------------------------------------------------- #
    @property
    def span_ms(self) -> float:
        """Timestamp of the last event (0 for an empty trace)."""
        return self.events[-1].t_ms if self.events else 0.0

    @property
    def live_at_end(self) -> int:
        return len(self._seg_live[-1])  # type: ignore[attr-defined]

    @property
    def num_crashes(self) -> int:
        return sum(1 for e in self.events if e.kind == "crash")

    @property
    def num_leaves(self) -> int:
        return sum(1 for e in self.events if e.kind == "leave")

    @property
    def num_joins(self) -> int:
        return sum(1 for e in self.events if e.kind == "join")

    @property
    def spec(self) -> str:
        """Canonical ``churn:`` spec; ``resolve_churn(spec, num_devices)``
        rebuilds an equal trace."""
        body = ";".join(f"{e.kind}:{e.device}@{e.t_ms:g}" for e in self.events)
        return f"{CHURN_PREFIX}events={body}"


# ---------------------------------------------------------------------- #
# the churn: grammar
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ChurnSpec:
    """Parsed ``churn:`` spec, resolvable against a fleet size.

    Either *explicit* (``events`` non-empty: a literal event list whose
    device ids must name roster members) or *seeded* (event counts drawn
    deterministically from ``seed`` inside ``[start_ms, start_ms +
    window_ms)``, valid for any fleet size).
    """

    events: Tuple[Tuple[str, int, float], ...] = ()
    crashes: int = 0
    leaves: int = 0
    joins: int = 0
    seed: int = 0
    start_ms: float = 1000.0
    window_ms: float = 10000.0

    def __post_init__(self) -> None:
        for count, name in ((self.crashes, "crashes"), (self.leaves, "leaves"), (self.joins, "joins")):
            if count < 0:
                raise ValueError(f"churn option {name} must be >= 0, got {count}")
        if self.seed < 0:
            raise ValueError(f"churn option seed must be >= 0, got {self.seed}")
        if self.start_ms < 0:
            raise ValueError(f"churn option start_ms must be >= 0, got {self.start_ms}")
        if self.window_ms <= 0:
            raise ValueError(f"churn option window_ms must be > 0, got {self.window_ms}")

    def resolve(self, num_devices: int) -> FaultTrace:
        """Materialise a :class:`FaultTrace` for a fleet of ``num_devices``."""
        if self.events:
            return FaultTrace(
                events=tuple(FaultEvent(t_ms=t, kind=k, device=d) for k, d, t in self.events),
                num_devices=num_devices,
            )
        return FaultTrace(events=self._generate(num_devices), num_devices=num_devices)

    def _generate(self, num_devices: int) -> Tuple[FaultEvent, ...]:
        # Pure function of (spec fields, num_devices): fresh generator per
        # call, sorted times, devices drawn from the evolving live/dead sets.
        # Events that would empty the fleet (or join with nobody dead) are
        # dropped deterministically rather than rejected.
        rng = np.random.default_rng(self.seed)
        kinds = ["crash"] * self.crashes + ["leave"] * self.leaves + ["join"] * self.joins
        if not kinds:
            return ()
        order = rng.permutation(len(kinds))
        kinds = [kinds[i] for i in order]
        times = np.sort(rng.uniform(self.start_ms, self.start_ms + self.window_ms, len(kinds)))
        live = set(range(num_devices))
        dead: set = set()
        events: List[FaultEvent] = []
        for kind, t in zip(kinds, times):
            if kind in ("crash", "leave"):
                if len(live) <= 1:
                    continue
                pool = sorted(live)
                dev = pool[int(rng.integers(len(pool)))]
                live.remove(dev)
                dead.add(dev)
            else:
                if not dead:
                    continue
                pool = sorted(dead)
                dev = pool[int(rng.integers(len(pool)))]
                dead.remove(dev)
                live.add(dev)
            events.append(FaultEvent(t_ms=float(round(float(t), 3)), kind=kind, device=dev))
        return tuple(events)

    @property
    def spec(self) -> str:
        if self.events:
            body = ";".join(f"{k}:{d}@{t:g}" for k, d, t in self.events)
            return f"{CHURN_PREFIX}events={body}"
        return (
            f"{CHURN_PREFIX}crashes={self.crashes},leaves={self.leaves},joins={self.joins},"
            f"seed={self.seed},start_ms={self.start_ms:g},window_ms={self.window_ms:g}"
        )


def _parse_churn_float(options: Dict[str, str], key: str, default: float) -> float:
    raw = options.get(key)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"churn option {key}={raw!r} is not a number") from None


def _parse_churn_int(options: Dict[str, str], key: str, default: int) -> int:
    raw = options.get(key)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"churn option {key}={raw!r} is not an integer") from None


def _parse_event_item(item: str) -> Tuple[str, int, float]:
    """One explicit event: ``<kind>:<device>@<t_ms>``."""
    head, sep, t_raw = item.partition("@")
    kind, sep2, dev_raw = head.partition(":")
    if not sep or not sep2:
        raise ValueError(
            f"malformed churn event {item!r}; expected <kind>:<device>@<t_ms> "
            f"with kind one of {sorted(CHURN_KINDS)}"
        )
    kind = kind.strip().lower()
    if kind not in CHURN_KINDS:
        raise ValueError(
            f"unknown churn event kind {kind!r} in {item!r}; expected one of {sorted(CHURN_KINDS)}"
        )
    try:
        device = int(dev_raw.strip())
    except ValueError:
        raise ValueError(f"churn event {item!r} device {dev_raw!r} is not an integer") from None
    try:
        t_ms = float(t_raw.strip())
    except ValueError:
        raise ValueError(f"churn event {item!r} time {t_raw!r} is not a number") from None
    return kind, device, t_ms


def parse_churn_spec(spec: str) -> ChurnSpec:
    """Parse the ``churn:`` grammar into a :class:`ChurnSpec`.

    Two forms, mirroring ``gen:`` / ``traffic:``:

    ==========  =================================================================
    form        keys (defaults)
    ==========  =================================================================
    explicit    ``events`` — ``;``-separated ``<kind>:<device>@<t_ms>`` items,
                e.g. ``churn:events=crash:3@5000;leave:1@8000``
    seeded      ``crashes`` (0), ``leaves`` (0), ``joins`` (0), ``seed`` (0),
                ``start_ms`` (1000), ``window_ms`` (10000) — events drawn
                deterministically inside ``[start_ms, start_ms + window_ms)``
    ==========  =================================================================

    The forms are mutually exclusive.  Event timestamps must be
    non-decreasing, device ids must name roster members, and the fleet must
    stay non-empty — violations raise ``ValueError`` at resolve time.
    """
    if not isinstance(spec, str) or not spec.startswith(CHURN_PREFIX):
        raise ValueError(f"churn spec must start with {CHURN_PREFIX!r}, got {spec!r}")
    body = spec[len(CHURN_PREFIX):]
    items = [part.strip() for part in body.split(",") if part.strip()]
    if not items:
        raise ValueError(
            f"empty churn spec {spec!r}; expected churn:events=... or "
            "churn:crashes=...,seed=..."
        )
    options: Dict[str, str] = {}
    for item in items:
        if "=" not in item:
            raise ValueError(f"malformed churn option {item!r}; expected key=value")
        key, value = item.split("=", 1)
        key, value = key.strip(), value.strip()
        if key in options:
            raise ValueError(f"duplicate churn option {key!r} in {spec!r}")
        options[key] = value
    known = ("events", "crashes", "leaves", "joins", "seed", "start_ms", "window_ms")
    unknown = set(options) - set(known)
    if unknown:
        raise ValueError(
            f"unknown churn option(s) {sorted(unknown)}; known: {sorted(known)}"
        )
    if "events" in options:
        extra = set(options) - {"events"}
        if extra:
            raise ValueError(
                f"churn:events=... cannot be combined with {sorted(extra)}; "
                "the explicit and seeded forms are mutually exclusive"
            )
        raw = options["events"]
        if not raw:
            raise ValueError("churn:events requires at least one <kind>:<device>@<t_ms> item")
        events = tuple(_parse_event_item(part) for part in raw.split(";") if part.strip())
        return ChurnSpec(events=events)
    return ChurnSpec(
        crashes=_parse_churn_int(options, "crashes", 0),
        leaves=_parse_churn_int(options, "leaves", 0),
        joins=_parse_churn_int(options, "joins", 0),
        seed=_parse_churn_int(options, "seed", 0),
        start_ms=_parse_churn_float(options, "start_ms", 1000.0),
        window_ms=_parse_churn_float(options, "window_ms", 10000.0),
    )


def resolve_churn(
    churn: Union[str, ChurnSpec, FaultTrace], num_devices: int
) -> FaultTrace:
    """Accept a ``churn:`` spec string, a parsed spec or a built trace."""
    if isinstance(churn, FaultTrace):
        if churn.num_devices != num_devices:
            raise ValueError(
                f"FaultTrace covers {churn.num_devices} devices but the fleet has "
                f"{num_devices}; rebuild the trace for this fleet"
            )
        return churn
    if isinstance(churn, ChurnSpec):
        return churn.resolve(num_devices)
    return parse_churn_spec(churn).resolve(num_devices)


# ---------------------------------------------------------------------- #
# recovery policies
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class RetryPolicy:
    """Per-tenant mid-inference recovery: attempts, backoff, jitter, timeout.

    A request killed by a crash is retried after
    ``backoff_ms * multiplier**(attempt-1)`` plus a uniform jitter in
    ``[0, jitter_ms)`` drawn from a counter-based stream keyed
    ``(seed, tenant, request, attempt)`` — a pure function of its counters,
    so every serving loop observes identical delays regardless of execution
    order.  ``timeout_ms`` bounds how far past its first dispatch a request
    may still be retried; ``None`` disables the bound.
    """

    max_attempts: int = 3
    backoff_ms: float = 50.0
    multiplier: float = 2.0
    jitter_ms: float = 10.0
    timeout_ms: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_ms < 0:
            raise ValueError(f"backoff_ms must be >= 0, got {self.backoff_ms}")
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {self.jitter_ms}")
        if self.timeout_ms is not None and self.timeout_ms < self.backoff_ms:
            raise ValueError(
                f"timeout_ms must be >= backoff_ms ({self.backoff_ms}), got {self.timeout_ms}"
            )
        if self.seed < 0:
            raise ValueError(f"seed must be >= 0, got {self.seed}")

    def delay_ms(self, attempt: int, tenant_index: int, request_ordinal: int) -> float:
        """Backoff before attempt ``attempt + 1`` (``attempt`` is the failed
        attempt number, 1-based)."""
        base = self.backoff_ms * self.multiplier ** (attempt - 1)
        if self.jitter_ms > 0:
            rng = counter_rng(self.seed, tenant_index, request_ordinal, attempt)
            return base + float(rng.uniform(0.0, self.jitter_ms))
        return base


@dataclass(frozen=True)
class DegradationPolicy:
    """Deterministic load shedding under capacity loss.

    While the live fleet fraction is below ``min_live_fraction``, tenants are
    shed **lowest weight first** (ties by tenant index) until the kept weight
    fraction fits the surviving capacity, always keeping at least one tenant.
    Shed tenants have their open-loop arrivals rejected *at arrival time* for
    the duration of the degraded window — a pure function of
    ``(trace, weights, threshold)``, so every loop sheds the same requests.
    Closed-loop tenants are never shed (they self-throttle by construction).
    """

    min_live_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.min_live_fraction <= 1.0:
            raise ValueError(
                f"min_live_fraction must be in (0, 1], got {self.min_live_fraction}"
            )

    def shed_order(self, weights: Sequence[float]) -> Tuple[int, ...]:
        """Deterministic shed preference: lowest weight first, ties by index.

        The single source of truth for "who goes first" — shared by
        capacity-loss shedding (:meth:`shed_tenants`) and the SLO burn-rate
        monitor's advisory plan (:func:`repro.obs.slo.shed_restore_plan`),
        so the two control paths can never disagree on the victim order.
        """
        return tuple(sorted(range(len(weights)), key=lambda i: (weights[i], i)))

    def shed_tenants(self, weights: Sequence[float], live_fraction: float) -> Tuple[int, ...]:
        """Tenant indices to shed at a given live fraction (possibly empty)."""
        if live_fraction >= self.min_live_fraction or len(weights) <= 1:
            return ()
        total = float(sum(weights))
        if total <= 0:
            return ()
        order = self.shed_order(weights)
        shed: List[int] = []
        kept = total
        for idx in order[:-1]:  # always keep at least one tenant
            if kept / total <= live_fraction:
                break
            shed.append(idx)
            kept -= weights[idx]
        return tuple(sorted(shed))

    def plan(
        self,
        trace: FaultTrace,
        weights: Sequence[float],
        start_s: float,
        horizon_s: float,
    ) -> Tuple[Tuple[Tuple[float, float], ...], Tuple[Tuple[float, float], ...]]:
        """Degradation plan over ``[start_s, horizon_s)``.

        Returns ``(per_tenant_shed_intervals_s, degraded_windows_s)``: for
        each tenant a tuple of ``(t0_s, t1_s)`` intervals in which its
        arrivals are shed, plus the overall degraded windows.
        """
        per_tenant: List[List[Tuple[float, float]]] = [[] for _ in weights]
        windows: List[Tuple[float, float]] = []
        for t0_ms, t1_ms, live in trace.segments(start_s * 1000.0, horizon_s * 1000.0):
            fraction = len(live) / trace.num_devices
            if fraction >= self.min_live_fraction:
                continue
            lo, hi = t0_ms / 1000.0, t1_ms / 1000.0
            if windows and windows[-1][1] == lo:
                windows[-1] = (windows[-1][0], hi)
            else:
                windows.append((lo, hi))
            for idx in self.shed_tenants(weights, fraction):
                spans = per_tenant[idx]
                if spans and spans[-1][1] == lo:
                    spans[-1] = (spans[-1][0], hi)
                else:
                    spans.append((lo, hi))
        return (
            tuple(tuple(spans) for spans in per_tenant),
            tuple(windows),
        )


# ---------------------------------------------------------------------- #
# replanning around dead devices
# ---------------------------------------------------------------------- #


def plan_devices(plan: DistributionPlan) -> FrozenSet[int]:
    """Roster indices a plan's execution touches (providers + dense head)."""
    touched = {idx for a in plan.assignments for idx in a.active_devices}
    if plan.model.head_layers:
        touched.add(plan.head_device)
    return frozenset(touched)


def degrade_plan(plan: DistributionPlan, live: Sequence[int]) -> DistributionPlan:
    """Failover strategy for ``plan`` when only ``live`` devices survive.

    If the plan touches only live devices it is returned unchanged.
    Otherwise the whole model is offloaded to the surviving device that held
    the largest share of the original plan (ties: lowest index; devices
    absent from the plan rank last) — the deterministic, always-feasible
    fallback strategy.  The full roster is kept in the plan so device
    indices stay stable for lane accounting.
    """
    live_set = set(live)
    if not live_set:
        raise ValueError("cannot replan: no live devices remain")
    if plan_devices(plan) <= live_set:
        return plan
    shares = [0.0] * plan.num_devices
    for a in plan.assignments:
        for dev, rows in enumerate(a.decision.rows_per_device()):
            shares[dev] += rows
    target = min(live_set, key=lambda j: (-shares[j], j))
    return DistributionPlan.single_device(
        plan.model, plan.devices, target, method=f"{plan.method}+failover"
    )


class PlanDegrader:
    """Per-run cache of failover plans keyed ``(plan identity, live set)``.

    Both serving loops of one run share a single instance, so the same
    ``DistributionPlan`` object is reused for repeated (plan, live-set)
    queries and downstream identity-keyed latency caches stay warm.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[int, Tuple[int, ...]], DistributionPlan] = {}
        self._keep: List[DistributionPlan] = []  # pin id() keys alive

    def effective_plan(self, plan: DistributionPlan, live: Tuple[int, ...]) -> DistributionPlan:
        key = (id(plan), live)
        hit = self._cache.get(key)
        if hit is None:
            hit = degrade_plan(plan, live)
            self._cache[key] = hit
            self._keep.append(plan)
        return hit


# ---------------------------------------------------------------------- #
# the shared retry-chain resolver
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ResolvedRequest:
    """Outcome of walking one dispatch through the fault/retry chain.

    ``latency_ms`` spans first dispatch to final completion (it includes
    lost attempts and backoff); ``retry_added_ms`` is the delay between the
    first dispatch and the start of the terminating attempt.
    """

    status: str  # "completed" | "abandoned"
    latency_ms: float
    lost_attempts: int
    retry_added_ms: float
    abandon_s: Optional[float]
    plan: DistributionPlan
    attempts: int

    @property
    def retried(self) -> bool:
        return self.attempts > 1


def resolve_faulted_request(
    start_s: float,
    plan: DistributionPlan,
    latency_of: Callable[[DistributionPlan, float], float],
    trace: FaultTrace,
    retry: RetryPolicy,
    degrader: PlanDegrader,
    tenant_index: int,
    request_ordinal: int,
) -> ResolvedRequest:
    """Walk one uncontended dispatch through crashes, retries and replans.

    ``latency_of(plan, t_s)`` must be the loop's latency oracle — the only
    floats entering the decision — so reference, batched and array loops
    calling this function with bit-identical oracles resolve identically.
    """
    start_ms = start_s * 1000.0
    t_ms = start_ms
    attempt = 1
    lost = 0
    while True:
        eff = degrader.effective_plan(plan, trace.live_indices(t_ms))
        lat = latency_of(eff, t_ms / 1000.0)
        crash = trace.first_crash_touching(plan_devices(eff), t_ms, t_ms + lat)
        if crash is None:
            # First-attempt completions return the oracle's float untouched —
            # a (t_ms + lat) - start_ms round trip would cost an ulp and
            # break bit-parity with loops that commit the raw latency.
            return ResolvedRequest(
                status="completed",
                latency_ms=lat if attempt == 1 else (t_ms + lat) - start_ms,
                lost_attempts=lost,
                retry_added_ms=t_ms - start_ms,
                abandon_s=None,
                plan=eff,
                attempts=attempt,
            )
        lost += 1
        fail_ms = crash.t_ms
        next_ms = fail_ms + retry.delay_ms(attempt, tenant_index, request_ordinal)
        timed_out = retry.timeout_ms is not None and next_ms - start_ms > retry.timeout_ms
        if attempt >= retry.max_attempts or timed_out:
            return ResolvedRequest(
                status="abandoned",
                latency_ms=fail_ms - start_ms,
                lost_attempts=lost,
                retry_added_ms=t_ms - start_ms,
                abandon_s=fail_ms / 1000.0,
                plan=eff,
                attempts=attempt,
            )
        t_ms = next_ms
        attempt += 1


# ---------------------------------------------------------------------- #
# the per-run fault context shared by every serving loop
# ---------------------------------------------------------------------- #


@dataclass
class FaultContext:
    """Everything one serving run needs to decide fault outcomes.

    Built once per :meth:`ServingSimulator.run` call and shared by whichever
    loop executes it (reference, batched or array) — the decisions are pure
    functions of this context plus the loop's latency floats, which is the
    churn parity contract.
    """

    trace: FaultTrace
    retry: RetryPolicy
    degradation: Optional[DegradationPolicy]
    degrader: PlanDegrader
    #: Per-tenant arrival-time shed intervals (seconds), degradation-planned.
    shed_intervals: Tuple[Tuple[Tuple[float, float], ...], ...]
    degraded_windows_s: Tuple[Tuple[float, float], ...]
    horizon_s: float


def build_fault_context(
    faults: Union[str, ChurnSpec, FaultTrace, None],
    retry: Optional[RetryPolicy],
    degradation: Optional[DegradationPolicy],
    num_devices: int,
    weights: Sequence[float],
    start_s: float,
    duration_s: Optional[float],
) -> Optional[FaultContext]:
    """Resolve the churn arguments of one serving run into a context.

    ``None`` faults means an immortal fleet — then retry/degradation
    policies are meaningless and rejected (mirroring how contention knobs
    require ``--contention``).
    """
    if faults is None:
        if retry is not None or degradation is not None:
            raise ValueError(
                "RetryPolicy/DegradationPolicy model fleet churn; "
                "pass faults (a churn: spec or FaultTrace) to enable them"
            )
        return None
    trace = resolve_churn(faults, num_devices)
    horizon_s = (
        start_s + duration_s
        if duration_s is not None
        else max(start_s, trace.span_ms / 1000.0)
    )
    if degradation is not None:
        shed, windows = degradation.plan(trace, weights, start_s, horizon_s)
    else:
        shed, windows = tuple(() for _ in weights), ()
    return FaultContext(
        trace=trace,
        retry=retry if retry is not None else RetryPolicy(),
        degradation=degradation,
        degrader=PlanDegrader(),
        shed_intervals=shed,
        degraded_windows_s=windows,
        horizon_s=horizon_s,
    )


# ---------------------------------------------------------------------- #
# reporting
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class FaultReport:
    """Churn outcome summary attached to a ``ServingReport``."""

    num_crashes: int
    num_leaves: int
    num_joins: int
    live_at_end: int
    lost_attempts: int
    retried_requests: int
    abandoned_requests: int
    retry_latency_added_ms: float
    degraded_ms: float
    shed_by_tenant: Tuple[int, ...]
    degraded_windows_s: Tuple[Tuple[float, float], ...] = field(default=())

    @property
    def total_shed(self) -> int:
        return int(sum(self.shed_by_tenant))

    def to_dict(self) -> Dict[str, object]:
        return {
            "num_crashes": self.num_crashes,
            "num_leaves": self.num_leaves,
            "num_joins": self.num_joins,
            "live_at_end": self.live_at_end,
            "lost_attempts": self.lost_attempts,
            "retried_requests": self.retried_requests,
            "abandoned_requests": self.abandoned_requests,
            "retry_latency_added_ms": self.retry_latency_added_ms,
            "degraded_ms": self.degraded_ms,
            "degraded_windows_s": [list(w) for w in self.degraded_windows_s],
            "shed_by_tenant": list(self.shed_by_tenant),
            "total_shed": self.total_shed,
        }


def build_fault_report(ctx: FaultContext, tenant_reports: Sequence) -> FaultReport:
    """Summarise a run's churn outcome from its context and tenant reports.

    ``tenant_reports`` are :class:`repro.serving.tenants.TenantReport` rows
    (duck-typed here to keep this package importable below the serving
    layer).  Sums run in tenant order, so the float accumulation is
    identical across loops.
    """
    degraded_ms = float(sum((hi - lo) * 1000.0 for lo, hi in ctx.degraded_windows_s))
    return FaultReport(
        num_crashes=ctx.trace.num_crashes,
        num_leaves=ctx.trace.num_leaves,
        num_joins=ctx.trace.num_joins,
        live_at_end=ctx.trace.live_at_end,
        lost_attempts=int(sum(t.num_lost_attempts for t in tenant_reports)),
        retried_requests=int(sum(t.num_retried for t in tenant_reports)),
        abandoned_requests=int(sum(t.num_abandoned for t in tenant_reports)),
        retry_latency_added_ms=float(sum(t.retry_added_ms for t in tenant_reports)),
        degraded_ms=degraded_ms,
        shed_by_tenant=tuple(int(t.num_shed) for t in tenant_reports),
        degraded_windows_s=ctx.degraded_windows_s,
    )


def emit_resolution(tracer, tenant_name: str, release_s: float, resolved) -> None:
    """Emit one request's retry-chain resolution as a trace instant.

    Shared by every serving loop so the emitted bytes are identical by
    construction.  Only *eventful* resolutions emit (a retry happened or an
    attempt was lost); first-attempt completions stay silent — their
    lifecycle is derived from the committed report.  The event sets match
    across loops because the array engine window-commits only requests whose
    span contains no membership event, so every eventful request reaches the
    scalar resolver in all modes.
    """
    if not tracer.enabled:
        return
    if resolved.attempts <= 1 and not resolved.lost_attempts:
        return
    tracer.instant(
        release_s * 1000.0,
        f"tenant:{tenant_name}",
        "fault",
        "retry_chain",
        attempts=resolved.attempts,
        lost_attempts=resolved.lost_attempts,
        retry_added_ms=resolved.retry_added_ms,
        status=resolved.status,
    )


def emit_fault_timeline(tracer, trace: FaultTrace) -> None:
    """Emit the membership timeline as trace instants on the ``fleet`` track.

    Pure function of the :class:`FaultTrace` (itself a pure function of the
    churn spec), so the emitted events are identical no matter which serving
    loop ran the scenario.
    """
    if not tracer.enabled:
        return
    for event in trace.events:
        tracer.instant(
            event.t_ms, "fleet", "fault", event.kind, device=event.device
        )


__all__ = [
    "CHURN_PREFIX",
    "CHURN_KINDS",
    "FaultEvent",
    "FaultTrace",
    "ChurnSpec",
    "parse_churn_spec",
    "resolve_churn",
    "RetryPolicy",
    "DegradationPolicy",
    "plan_devices",
    "degrade_plan",
    "PlanDegrader",
    "ResolvedRequest",
    "resolve_faulted_request",
    "FaultContext",
    "build_fault_context",
    "FaultReport",
    "build_fault_report",
    "emit_fault_timeline",
    "emit_resolution",
]
