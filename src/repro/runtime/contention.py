"""Contention-aware concurrent execution over a shared lane fleet.

The paper's Section V-A lane model (:mod:`repro.runtime.lanes`) assumes one
image in flight: every evaluation starts from empty lanes, so two inferences
dispatched onto the same cluster never compete for a device's compute, send
or receive thread.  This module removes that assumption:

* :class:`SharedFleetState` keeps one *persistent* set of provider lanes
  whose busy-until times survive across inferences — the residual occupancy
  one tenant's request leaves behind is exactly what the next tenant's
  request queues on.
* :class:`ContentionAwareEvaluator` schedules a plan *against* that shared
  state: a request released at absolute time ``r`` sees, per lane, the
  relative residual ``max(0, busy_until - r)``, and its schedule is computed
  in release-relative time with those residuals (and an optional admission
  gate) as lane floors.  The returned latency is the **contended makespan**
  — queueing on other requests' lane occupancy included — alongside a
  per-lane queueing-delay breakdown.

Determinism and the memo.  The relative schedule of one request is a pure
function of ``(model, plan structure, instantaneous network state, admission
gate, lane residuals)`` — the same argument that makes the batch engine's
plan LRU sound (PR 1) extends here with the residual vector added to the
key.  :class:`ContentionAwareEvaluator` therefore memoizes contended
schedules in an LRU on exactly that key: the serving loop's *batched* mode
groups equal-signature dispatches into one evaluation, while the *reference*
mode (``memoize=False``) re-walks every request scalar-ly — and the two are
bit-identical because a memo hit replays the very floats a fresh walk would
produce.

The scalar walk itself is :class:`~repro.runtime.evaluator.PlanEvaluator`'s
own ``process_volume``/``finalize`` code, driven over lanes pre-seeded with
the residuals (plus wait-time recording that never changes a scheduled
float).  With all residuals zero the walk *is* the uncontended evaluation,
so an idle fleet reproduces the paper's one-image-in-flight numbers exactly.

Prediction vs. commitment.  :meth:`ContentionAwareEvaluator.predict`
computes a request's contended outcome *without* touching the shared state;
:meth:`~ContentionAwareEvaluator.commit` applies a predicted outcome, and
:meth:`~ContentionAwareEvaluator.evaluate` is exactly the two in sequence.
The split is what the predictive control plane (:mod:`repro.serving.control`)
builds on: deny-at-admission consults ``predict`` and only commits admitted
requests.  See ``docs/architecture.md`` for how this module sits between the
serving loops and the planner core, and which parity contracts bind it.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.topology import REQUESTER
from repro.obs.profile import NULL_PROFILER
from repro.nn.graph import ModelSpec
from repro.runtime.batch import network_state_signature, plan_signature
from repro.runtime.evaluator import EvaluationResult, PlanEvaluator
from repro.runtime.lanes import LaneSet
from repro.runtime.plan import DistributionPlan
from repro.utils.cache import LRUCache

#: Lane roles of one provider, in the canonical signature order.
LANE_ROLES: Tuple[str, ...] = ("compute", "send", "recv")


def fleet_lane_keys(num_devices: int) -> List[Tuple[int, str]]:
    """Canonical ``(provider, role)`` order used by residual/end vectors."""
    return [(j, role) for j in range(num_devices) for role in LANE_ROLES]


class _RecordingLaneSet(LaneSet):
    """A :class:`LaneSet` that also accounts how long each job queued.

    ``note_wait`` records ``max(0, busy_until - earliest)`` — the time a
    job's start was (or would have been) held back by the lane's prior
    occupancy.  Recording is pure bookkeeping: every scheduled float is
    produced by the unmodified base-class arithmetic.
    """

    def __init__(self) -> None:
        super().__init__()
        self.wait_ms: Dict[Tuple[Hashable, str], float] = {}

    def note_wait(self, endpoint: Hashable, role: str, earliest_ms: float) -> None:
        lane = self.lane(endpoint, role)
        if lane.free_at > earliest_ms:
            key = (endpoint, role)
            self.wait_ms[key] = self.wait_ms.get(key, 0.0) + (lane.free_at - earliest_ms)

    def schedule(
        self, endpoint: Hashable, role: str, earliest_start: float, duration_ms: float
    ) -> Tuple[float, float]:
        self.note_wait(endpoint, role, earliest_start)
        return super().schedule(endpoint, role, earliest_start, duration_ms)


class _ContendedWalk(PlanEvaluator):
    """The scalar evaluator walk, over wait-recording lanes.

    Scheduling arithmetic is inherited unchanged — ``_transfer`` only notes
    the send/recv lane waits before delegating, so a walk over all-zero
    residuals is operation-for-operation the uncontended evaluation.
    """

    def new_state(self):
        state = super().new_state()
        state.lanes = _RecordingLaneSet()
        return state

    def _transfer(self, state, src, dst, n_bytes, earliest_ms, t_seconds):
        if n_bytes > 0 and src != dst:
            state.lanes.note_wait(src, "send", earliest_ms)
            state.lanes.note_wait(dst, "recv", earliest_ms)
        return super()._transfer(state, src, dst, n_bytes, earliest_ms, t_seconds)


@dataclass(frozen=True)
class ContendedOutcome:
    """One request's contended schedule, in release-relative time.

    ``lane_*`` vectors follow :func:`fleet_lane_keys` order.  ``lane_end_rel``
    is each lane's busy-until after this request (equal to the residual it
    started from when the request never used the lane — ``lane_jobs`` tells
    the two apart); ``lane_wait_ms`` is how long this request's jobs queued
    on each lane's prior occupancy (cross-request residuals *and*
    intra-request serialisation).  ``gate_wait_ms`` is the admission-gate
    hold (``max_inflight``), already part of ``latency_ms``.
    """

    latency_ms: float
    lane_end_rel: Tuple[float, ...]
    lane_busy_ms: Tuple[float, ...]
    lane_wait_ms: Tuple[float, ...]
    lane_jobs: Tuple[int, ...]
    gate_wait_ms: float
    contended: bool


def truncated_outcome(outcome: ContendedOutcome, cut_rel_ms: float) -> ContendedOutcome:
    """Clamp a predicted schedule at a mid-flight failure instant.

    A device crash at ``release + cut_rel_ms`` kills the request there: every
    lane occupancy, busy and wait interval is cut at the crash and the
    request's latency becomes the time it held the fleet before dying.  The
    clamp is pure arithmetic on the outcome vectors — identical in every
    serving loop — and the truncated outcome commits through the unmodified
    :meth:`SharedFleetState.commit` (the completion it registers at the crash
    instant is what frees the admission gate and the WFQ accounting).  Lanes
    the request never used (``lane_jobs == 0``) are ignored by ``commit``, so
    clamping their carried-through residuals is harmless.
    """
    if cut_rel_ms < 0:
        raise ValueError(f"cut_rel_ms must be >= 0, got {cut_rel_ms}")
    return ContendedOutcome(
        latency_ms=cut_rel_ms,
        lane_end_rel=tuple(min(e, cut_rel_ms) for e in outcome.lane_end_rel),
        lane_busy_ms=tuple(min(b, cut_rel_ms) for b in outcome.lane_busy_ms),
        lane_wait_ms=tuple(min(w, cut_rel_ms) for w in outcome.lane_wait_ms),
        lane_jobs=outcome.lane_jobs,
        gate_wait_ms=min(outcome.gate_wait_ms, cut_rel_ms),
        contended=outcome.contended,
    )


@dataclass(eq=False)
class FleetLoadSeries:
    """Windowed time series of fleet load (the :class:`FleetLoadReport` totals
    resolved over fixed ``window_ms`` buckets of absolute simulated time).

    ``*_busy_ms`` / ``*_wait_ms`` are ``(windows, devices)`` matrices; a
    request's lane busy time is attributed to the windows its occupancy
    interval overlaps (proportionally), its queueing delay to the windows
    following its release, so every column family sums — over windows — to
    the corresponding run total exactly (up to float summation order).
    ``inflight_ms`` is per-window total in-flight request time (latency mass)
    and ``released`` counts request releases per window.
    """

    window_ms: float
    compute_busy_ms: np.ndarray
    send_busy_ms: np.ndarray
    recv_busy_ms: np.ndarray
    compute_wait_ms: np.ndarray
    send_wait_ms: np.ndarray
    recv_wait_ms: np.ndarray
    inflight_ms: np.ndarray
    released: np.ndarray

    @property
    def num_windows(self) -> int:
        return int(self.released.shape[0])

    def utilization(self, role: str) -> np.ndarray:
        """Per-window per-device busy fraction of one lane role."""
        if role not in LANE_ROLES:
            raise ValueError(f"role must be one of {LANE_ROLES}, got {role!r}")
        busy = getattr(self, f"{role}_busy_ms")
        if self.window_ms <= 0:
            return np.zeros_like(busy)
        return busy / self.window_ms

    def mean_utilization(self, role: str = "compute") -> np.ndarray:
        """Per-window busy fraction of one role, averaged across devices."""
        util = self.utilization(role)
        return util.mean(axis=1) if util.size else np.zeros(0)

    def to_dict(self) -> Dict:
        return {
            "window_ms": float(self.window_ms),
            "num_windows": self.num_windows,
            "compute_busy_ms": [[float(v) for v in row] for row in self.compute_busy_ms],
            "send_busy_ms": [[float(v) for v in row] for row in self.send_busy_ms],
            "recv_busy_ms": [[float(v) for v in row] for row in self.recv_busy_ms],
            "compute_wait_ms": [[float(v) for v in row] for row in self.compute_wait_ms],
            "send_wait_ms": [[float(v) for v in row] for row in self.send_wait_ms],
            "recv_wait_ms": [[float(v) for v in row] for row in self.recv_wait_ms],
            "inflight_ms": [float(v) for v in self.inflight_ms],
            "released": [int(v) for v in self.released],
        }


class _WindowAccumulator:
    """Grow-on-demand window buckets behind :class:`FleetLoadSeries`.

    Intervals are attributed by exact overlap with each ``window_ms`` bucket;
    the buffers double on growth so commits stay amortised O(overlapping
    windows).  Accumulation is pure bookkeeping — it never feeds back into
    any scheduled float, so enabling the series cannot perturb parity.
    """

    BUSY_WAIT_FIELDS = tuple(
        f"{role}_{kind}" for role in LANE_ROLES for kind in ("busy", "wait")
    )

    def __init__(self, num_devices: int, window_ms: float) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be > 0, got {window_ms}")
        self.num_devices = int(num_devices)
        self.window_ms = float(window_ms)
        self._mats: Dict[str, np.ndarray] = {
            field: np.zeros((0, num_devices)) for field in self.BUSY_WAIT_FIELDS
        }
        self._inflight = np.zeros(0)
        self._released = np.zeros(0, dtype=np.int64)
        self._used = 0

    def _ensure(self, windows: int) -> None:
        self._used = max(self._used, windows)
        current = self._inflight.shape[0]
        if windows <= current:
            return
        grow = max(windows, 2 * current, 4)
        for field, mat in self._mats.items():
            new = np.zeros((grow, self.num_devices))
            new[:current] = mat
            self._mats[field] = new
        new_inflight = np.zeros(grow)
        new_inflight[:current] = self._inflight
        self._inflight = new_inflight
        new_released = np.zeros(grow, dtype=np.int64)
        new_released[:current] = self._released
        self._released = new_released

    def _overlaps(self, t0_ms: float, t1_ms: float):
        """Yield ``(window index, overlap ms)`` covering ``[t0, t1)``."""
        if t1_ms <= t0_ms:
            return
        w = self.window_ms
        first = int(t0_ms // w)
        last = max(first + 1, int(-(-t1_ms // w)))  # ceil
        self._ensure(last)
        for idx in range(first, last):
            overlap = min(t1_ms, (idx + 1) * w) - max(t0_ms, idx * w)
            if overlap > 0:
                yield idx, overlap

    def add_lane(self, field: str, device: int, t0_ms: float, t1_ms: float) -> None:
        mat = self._mats[field]
        for idx, overlap in self._overlaps(t0_ms, t1_ms):
            mat = self._mats[field]  # _ensure may have reallocated
            mat[idx, device] += overlap

    def add_request(self, release_ms: float, latency_ms: float) -> None:
        for idx, overlap in self._overlaps(release_ms, release_ms + latency_ms):
            self._inflight[idx] += overlap
        idx = int(release_ms // self.window_ms)
        self._ensure(idx + 1)
        self._released[idx] += 1

    def series(self) -> FleetLoadSeries:
        n = self._used
        return FleetLoadSeries(
            window_ms=self.window_ms,
            compute_busy_ms=self._mats["compute_busy"][:n].copy(),
            send_busy_ms=self._mats["send_busy"][:n].copy(),
            recv_busy_ms=self._mats["recv_busy"][:n].copy(),
            compute_wait_ms=self._mats["compute_wait"][:n].copy(),
            send_wait_ms=self._mats["send_wait"][:n].copy(),
            recv_wait_ms=self._mats["recv_wait"][:n].copy(),
            inflight_ms=self._inflight[:n].copy(),
            released=self._released[:n].copy(),
        )


@dataclass(eq=False)
class FleetLoadReport:
    """Cumulative per-device lane load of one contended serving run.

    Arrays are ``(devices,)``-shaped, one entry per provider; ``*_busy_ms``
    is total lane occupancy, ``*_wait_ms`` total queueing delay recorded on
    the lane, ``*_jobs`` the number of jobs it served.  ``utilization`` of a
    lane is its busy time over the run makespan.  ``series`` is the optional
    :class:`FleetLoadSeries` (present when the fleet was created with a
    ``window_ms``).
    """

    device_ids: List[str]
    compute_busy_ms: np.ndarray
    send_busy_ms: np.ndarray
    recv_busy_ms: np.ndarray
    compute_wait_ms: np.ndarray
    send_wait_ms: np.ndarray
    recv_wait_ms: np.ndarray
    compute_jobs: np.ndarray
    send_jobs: np.ndarray
    recv_jobs: np.ndarray
    makespan_ms: float
    requests: int
    contended_requests: int
    gate_wait_ms: float
    series: Optional[FleetLoadSeries] = None

    def utilization(self, role: str) -> np.ndarray:
        """Per-device busy fraction of one lane role over the makespan."""
        if role not in LANE_ROLES:
            raise ValueError(f"role must be one of {LANE_ROLES}, got {role!r}")
        busy = getattr(self, f"{role}_busy_ms")
        if self.makespan_ms <= 0:
            return np.zeros_like(busy)
        return busy / self.makespan_ms

    @property
    def total_wait_ms(self) -> float:
        """All queueing delay recorded on provider lanes (gate excluded)."""
        return float(
            self.compute_wait_ms.sum() + self.send_wait_ms.sum() + self.recv_wait_ms.sum()
        )

    @property
    def contended_share(self) -> float:
        """Fraction of requests that saw a non-idle fleet at dispatch."""
        return self.contended_requests / self.requests if self.requests else 0.0

    def to_dict(self) -> Dict:
        return {
            "device_ids": list(self.device_ids),
            "compute_busy_ms": [float(v) for v in self.compute_busy_ms],
            "send_busy_ms": [float(v) for v in self.send_busy_ms],
            "recv_busy_ms": [float(v) for v in self.recv_busy_ms],
            "compute_wait_ms": [float(v) for v in self.compute_wait_ms],
            "send_wait_ms": [float(v) for v in self.send_wait_ms],
            "recv_wait_ms": [float(v) for v in self.recv_wait_ms],
            "compute_jobs": [int(v) for v in self.compute_jobs],
            "send_jobs": [int(v) for v in self.send_jobs],
            "recv_jobs": [int(v) for v in self.recv_jobs],
            "compute_utilization": [float(v) for v in self.utilization("compute")],
            "makespan_ms": float(self.makespan_ms),
            "requests": int(self.requests),
            "contended_requests": int(self.contended_requests),
            "contended_share": float(self.contended_share),
            "gate_wait_ms": float(self.gate_wait_ms),
            "total_wait_ms": float(self.total_wait_ms),
            "series": self.series.to_dict() if self.series is not None else None,
        }


class SharedFleetState:
    """Persistent lane occupancy of one shared provider fleet.

    Lane busy-until times are kept in *absolute* milliseconds of simulated
    time; requests interact with them through release-relative residuals
    (:meth:`residuals`) and commit their relative lane ends back
    (:meth:`commit`).  The state also tracks completion times of committed
    requests for the cluster-wide ``max_inflight`` admission gate, and
    accumulates the per-lane busy/wait/job accounting that becomes the
    run's :class:`FleetLoadReport`.
    """

    def __init__(self, num_devices: int, window_ms: Optional[float] = None) -> None:
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        self.num_devices = int(num_devices)
        self.window_ms = float(window_ms) if window_ms is not None else None
        self._windows = (
            _WindowAccumulator(self.num_devices, self.window_ms)
            if self.window_ms is not None
            else None
        )
        self.lane_keys = fleet_lane_keys(num_devices)
        self.lanes = LaneSet()
        # Column mirror of the lanes' busy-until times, in lane_keys order.
        # residuals()/busy_until_ms() run once per dispatch over every lane,
        # which made them the serving loop's hottest per-request Python on
        # big fleets; the mirror turns both into one array expression.
        # commit() is the only mutator of the lane objects and keeps the
        # mirror in sync, and max(0, free - release) is elementwise the very
        # float op of the scalar walk, so the vectors are bit-identical.
        self._free_ms = np.zeros(len(self.lane_keys))
        self.wait_ms: Dict[Tuple[int, str], float] = {}
        self._completions: List[float] = []  # sorted absolute completion times (ms)
        self.requests = 0
        self.contended_requests = 0
        self.gate_wait_ms = 0.0

    # ------------------------------------------------------------------ #
    def residuals(self, release_ms: float) -> Tuple[float, ...]:
        """Per-lane leftover occupancy relative to ``release_ms`` (>= 0)."""
        return tuple(np.maximum(self._free_ms - release_ms, 0.0).tolist())

    def busy_until_ms(self) -> float:
        """Latest lane busy-until across the fleet (0 when never used)."""
        return float(self._free_ms.max())

    def next_free_event_ms(self, release_ms: float) -> Optional[float]:
        """Earliest lane busy-until strictly after ``release_ms``.

        The natural re-queue target for a request whose predicted completion
        misses its deadline: the fleet's state cannot change before some lane
        frees up.  ``None`` means no lane is busy past ``release_ms`` — the
        fleet is idle, so waiting cannot improve the prediction.
        """
        later = self._free_ms[self._free_ms > release_ms]
        return float(later.min()) if later.size else None

    def admission_floor(self, release_ms: float, max_inflight: Optional[int]) -> float:
        """Earliest time a request released at ``release_ms`` may be admitted.

        With a cluster-wide cap of ``max_inflight`` concurrent requests, a
        new request waits until enough of the committed requests still in
        flight at its release (completion after ``release_ms``) have
        finished.  ``None`` disables the gate.
        """
        if max_inflight is None:
            return release_ms
        live = self._completions[bisect_right(self._completions, release_ms):]
        if len(live) < max_inflight:
            return release_ms
        return live[len(live) - max_inflight]

    def prune_completions(self, watermark_ms: float) -> None:
        """Drop completions at/below ``watermark_ms``.

        Safe once no future release can precede the watermark: the gate only
        counts completions strictly after a release time.
        """
        cut = bisect_right(self._completions, watermark_ms)
        if cut:
            del self._completions[:cut]

    # ------------------------------------------------------------------ #
    def commit(self, release_ms: float, outcome: ContendedOutcome) -> None:
        """Apply one scheduled request's lane usage to the shared state."""
        for index, (key, rel_end, busy, wait, jobs) in enumerate(
            zip(
                self.lane_keys,
                outcome.lane_end_rel,
                outcome.lane_busy_ms,
                outcome.lane_wait_ms,
                outcome.lane_jobs,
            )
        ):
            if jobs:
                lane = self.lanes.lane(*key)
                # max(): a full schedule always ends at/after the lane's prior
                # free time, but a crash-truncated outcome may be cut before
                # it — occupancy committed by earlier requests must stand.
                lane.free_at = max(lane.free_at, release_ms + rel_end)
                lane.busy_ms += busy
                lane.jobs += jobs
                self._free_ms[index] = lane.free_at
                if self._windows is not None and busy > 0:
                    # Busy mass is attributed to the trailing interval
                    # [end - busy, end]: within-request gaps on a lane are
                    # compacted against its final busy-until, so windowed
                    # placement is approximate but the series sums back to
                    # the lane's busy total by construction.
                    end_ms = release_ms + rel_end
                    self._windows.add_lane(
                        f"{key[1]}_busy", key[0], end_ms - busy, end_ms
                    )
            if wait:
                self.wait_ms[key] = self.wait_ms.get(key, 0.0) + wait
                if self._windows is not None:
                    self._windows.add_lane(
                        f"{key[1]}_wait", key[0], release_ms, release_ms + wait
                    )
        self.requests += 1
        if outcome.contended:
            self.contended_requests += 1
        self.gate_wait_ms += outcome.gate_wait_ms
        if self._windows is not None:
            self._windows.add_request(release_ms, outcome.latency_ms)
        insort(self._completions, release_ms + outcome.latency_ms)

    # ------------------------------------------------------------------ #
    def load_report(
        self, makespan_ms: float, device_ids: Optional[Sequence[str]] = None
    ) -> FleetLoadReport:
        """Snapshot the cumulative lane accounting as a report."""
        n = self.num_devices
        ids = list(device_ids) if device_ids is not None else [str(j) for j in range(n)]
        if len(ids) != n:
            raise ValueError(f"expected {n} device ids, got {len(ids)}")

        def per_role(role: str, field: str) -> np.ndarray:
            if field == "wait":
                return np.array([self.wait_ms.get((j, role), 0.0) for j in range(n)])
            lanes = [self.lanes.lane(j, role) for j in range(n)]
            if field == "busy":
                return np.array([lane.busy_ms for lane in lanes])
            return np.array([lane.jobs for lane in lanes], dtype=np.int64)

        return FleetLoadReport(
            device_ids=ids,
            compute_busy_ms=per_role("compute", "busy"),
            send_busy_ms=per_role("send", "busy"),
            recv_busy_ms=per_role("recv", "busy"),
            compute_wait_ms=per_role("compute", "wait"),
            send_wait_ms=per_role("send", "wait"),
            recv_wait_ms=per_role("recv", "wait"),
            compute_jobs=per_role("compute", "jobs"),
            send_jobs=per_role("send", "jobs"),
            recv_jobs=per_role("recv", "jobs"),
            makespan_ms=float(makespan_ms),
            requests=self.requests,
            contended_requests=self.contended_requests,
            gate_wait_ms=self.gate_wait_ms,
            series=self._windows.series() if self._windows is not None else None,
        )


def _scalar_base(evaluator) -> PlanEvaluator:
    """Resolve an evaluator that can drive the scalar walk.

    Accepts any :class:`PlanEvaluator` (incl. the batch engine) directly; a
    :class:`~repro.runtime.shard.ShardedPlanEvaluator` contributes its
    in-process ``local`` engine — contended scheduling is inherently
    sequential, so the pool itself is never consulted.
    """
    if isinstance(evaluator, PlanEvaluator):
        return evaluator
    local = getattr(evaluator, "local", None)
    if isinstance(local, PlanEvaluator):
        return local
    raise TypeError(
        "contention-aware evaluation needs a PlanEvaluator (or a sharded "
        f"evaluator exposing one as .local); got {type(evaluator).__name__}"
    )


class ContentionAwareEvaluator:
    """Schedules plans against a :class:`SharedFleetState`.

    Parameters
    ----------
    evaluator:
        The cluster-bound evaluator whose devices/network/oracle define the
        world (scalar, batch or sharded — see :func:`_scalar_base`).
    fleet:
        Shared lane state; a fresh one is created when omitted.
    max_inflight:
        Cluster-wide cap on concurrently in-flight requests (admission
        gate); ``None`` disables it.
    memoize:
        Cache contended schedules in an LRU keyed on ``(model, plan
        structure, network state, gate, lane residuals)``.  A hit replays
        the exact floats of the original walk, so memoization is
        behaviour-preserving; the serving reference loop disables it to
        stay the semantics oracle.
    memo:
        An externally-owned :class:`~repro.utils.cache.LRUCache` to use
        instead of a private one (implies ``memoize``).  The capacity
        planner shares one memo across probe runs at the same fleet size so
        repeat probes refine over the already-memoized contended walk
        instead of re-evaluating from scratch.
    """

    def __init__(
        self,
        evaluator,
        fleet: Optional[SharedFleetState] = None,
        max_inflight: Optional[int] = None,
        memoize: bool = True,
        cache_size: int = 4096,
        memo: Optional[LRUCache] = None,
    ) -> None:
        base = _scalar_base(evaluator)
        if max_inflight is not None and max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1 (or None), got {max_inflight}")
        self.devices = base.devices
        self.network = base.network
        self.fleet = fleet or SharedFleetState(len(base.devices))
        if self.fleet.num_devices != len(base.devices):
            raise ValueError(
                f"fleet covers {self.fleet.num_devices} devices, evaluator has "
                f"{len(base.devices)}"
            )
        self.max_inflight = max_inflight
        self._walk = _ContendedWalk(
            base.devices,
            base.network,
            compute_oracle=base.oracle,
            input_bytes_per_element=base.input_bytes_per_element,
        )
        if memo is not None:
            self._memo: Optional[LRUCache] = memo
        else:
            self._memo = LRUCache(cache_size) if memoize else None
        self._model_tokens: Dict[int, int] = {}
        self._model_refs: Dict[int, ModelSpec] = {}
        # Plan signatures cached by object identity (plans are immutable;
        # the reference pins the id against recycling) — the memo key is
        # rebuilt per dispatch and this is its only non-trivial component.
        self._plan_sigs: Dict[int, Tuple] = {}
        self._plan_refs: Dict[int, DistributionPlan] = {}
        self.evaluations = 0
        self.profiler = NULL_PROFILER

    # ------------------------------------------------------------------ #
    @property
    def memo_hits(self) -> int:
        return self._memo.hits if self._memo is not None else 0

    def _model_token(self, model: ModelSpec) -> int:
        key = id(model)
        token = self._model_tokens.get(key)
        if token is None:
            token = len(self._model_tokens)
            self._model_tokens[key] = token
            self._model_refs[key] = model
        return token

    # ------------------------------------------------------------------ #
    def _schedule(
        self,
        plan: DistributionPlan,
        t_seconds: float,
        residuals: Tuple[float, ...],
        gate_rel_ms: float,
    ) -> Tuple[EvaluationResult, ContendedOutcome]:
        """One scalar walk over residual-seeded lanes (release-relative)."""
        walk = self._walk
        state = walk.new_state()
        lanes = state.lanes
        for key, residual in zip(self.fleet.lane_keys, residuals):
            lanes.lane(*key).free_at = residual
        # The admission gate holds the requester's first transmission: the
        # image may not be sent before the gate opens.
        lanes.lane(REQUESTER, "send").free_at = gate_rel_ms
        for assignment in plan.assignments:
            walk.process_volume(state, assignment, t_seconds)
        result = walk.finalize(state, plan, t_seconds)
        ends: List[float] = []
        busy: List[float] = []
        waits: List[float] = []
        jobs: List[int] = []
        for key in self.fleet.lane_keys:
            lane = lanes.lane(*key)
            ends.append(lane.free_at)
            busy.append(lane.busy_ms)
            jobs.append(lane.jobs)
            waits.append(lanes.wait_ms.get(key, 0.0))
        outcome = ContendedOutcome(
            latency_ms=result.end_to_end_ms,
            lane_end_rel=tuple(ends),
            lane_busy_ms=tuple(busy),
            lane_wait_ms=tuple(waits),
            lane_jobs=tuple(jobs),
            gate_wait_ms=gate_rel_ms,
            contended=gate_rel_ms > 0.0 or any(r > 0.0 for r in residuals),
        )
        self.evaluations += 1
        return result, outcome

    def _plan_signature(self, plan: DistributionPlan) -> Tuple:
        sig = self._plan_sigs.get(id(plan))
        if sig is None:
            sig = plan_signature(plan)
            self._plan_sigs[id(plan)] = sig
            self._plan_refs[id(plan)] = plan
        return sig

    def _floors(self, release_ms: float) -> Tuple[Tuple[float, ...], float]:
        residuals = self.fleet.residuals(release_ms)
        floor = self.fleet.admission_floor(release_ms, self.max_inflight)
        return residuals, max(0.0, floor - release_ms)

    def _dispatch_key(
        self,
        plan: DistributionPlan,
        t_seconds: float,
        residuals: Tuple[float, ...],
        gate_rel: float,
    ) -> Tuple:
        return (
            self._model_token(plan.model),
            self._plan_signature(plan),
            network_state_signature(self.network, t_seconds),
            gate_rel,
            residuals,
        )

    # ------------------------------------------------------------------ #
    def predict(
        self, plan: DistributionPlan, release_ms: float, t_seconds: float = 0.0
    ) -> ContendedOutcome:
        """Predict one request's contended outcome *without* committing it.

        The prediction is exact, not estimated: it is the very schedule
        :meth:`evaluate` would commit, computed against the fleet's current
        residuals (memo hit or fresh scalar walk).  Predictive admission
        (:mod:`repro.serving.control`) decides on this outcome and only
        :meth:`commit`\\ s it when the request is admitted, so a denied
        request leaves the shared state untouched.
        """
        if plan.num_devices != self.fleet.num_devices:
            raise ValueError(
                f"plan covers {plan.num_devices} devices, fleet has "
                f"{self.fleet.num_devices}"
            )
        residuals, gate_rel = self._floors(release_ms)
        outcome: Optional[ContendedOutcome] = None
        if self._memo is not None:
            key = self._dispatch_key(plan, t_seconds, residuals, gate_rel)
            outcome = self._memo.get(key)
        prof = self.profiler
        if outcome is None:
            if prof.enabled:
                walk_start = perf_counter()
                _, outcome = self._schedule(plan, t_seconds, residuals, gate_rel)
                prof.add("contention.schedule_walk", perf_counter() - walk_start)
                prof.count("contention.memo_miss")
            else:
                _, outcome = self._schedule(plan, t_seconds, residuals, gate_rel)
            if self._memo is not None:
                self._memo.put(key, outcome)
        elif prof.enabled:
            prof.count("contention.memo_hit")
        return outcome

    def commit(self, outcome: ContendedOutcome, release_ms: float) -> None:
        """Apply a predicted outcome's lane usage to the shared fleet."""
        self.fleet.commit(release_ms, outcome)

    def evaluate(
        self, plan: DistributionPlan, release_ms: float, t_seconds: float = 0.0
    ) -> ContendedOutcome:
        """Schedule one request against the fleet and commit its lane usage.

        Exactly :meth:`predict` followed by :meth:`commit`.  Returns the
        request's :class:`ContendedOutcome`; its ``latency_ms`` is the
        contended makespan (relative to ``release_ms``).  Requests must be
        evaluated in the dispatcher's canonical order — the shared state
        makes results order-dependent by design.
        """
        outcome = self.predict(plan, release_ms, t_seconds)
        self.fleet.commit(release_ms, outcome)
        return outcome

    def evaluate_contended(
        self, plan: DistributionPlan, release_ms: float = 0.0, t_seconds: float = 0.0
    ) -> Tuple[EvaluationResult, ContendedOutcome]:
        """Full-detail contended evaluation (always a fresh walk; commits).

        Returns the complete :class:`EvaluationResult` (times relative to
        the release instant) together with the outcome carrying the
        per-lane queueing-delay breakdown.
        """
        if plan.num_devices != self.fleet.num_devices:
            raise ValueError(
                f"plan covers {plan.num_devices} devices, fleet has "
                f"{self.fleet.num_devices}"
            )
        residuals, gate_rel = self._floors(release_ms)
        result, outcome = self._schedule(plan, t_seconds, residuals, gate_rel)
        if self._memo is not None:
            self._memo.put(self._dispatch_key(plan, t_seconds, residuals, gate_rel), outcome)
        self.fleet.commit(release_ms, outcome)
        return result, outcome


__all__ = [
    "LANE_ROLES",
    "fleet_lane_keys",
    "ContendedOutcome",
    "truncated_outcome",
    "FleetLoadReport",
    "FleetLoadSeries",
    "SharedFleetState",
    "ContentionAwareEvaluator",
]
