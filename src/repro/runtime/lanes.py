"""Per-device service lanes.

Section V-A of the paper: "On each service provider, three threads are
running parallel to implement computation, data receiving, and data
transmission by sharing data with a queue."  A *lane* models one of those
threads as a unit-capacity resource: requests are serviced in the order they
are submitted and each request occupies the lane for its duration.  The
requester likewise has a send lane (it splits and transmits the input image)
and a receive lane (it collects results).

The lane abstraction is what turns the per-part latency numbers into a
schedule: two transfers leaving the same device serialise on its send lane,
two parts assigned to the same device serialise on its compute lane, while
work on different devices proceeds in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple


@dataclass
class Lane:
    """A unit-capacity resource with busy-until bookkeeping (times in ms)."""

    name: str
    free_at: float = 0.0
    busy_ms: float = 0.0
    jobs: int = 0

    def schedule(self, earliest_start: float, duration_ms: float) -> Tuple[float, float]:
        """Reserve the lane for a job.

        The job starts at ``max(earliest_start, free_at)`` and holds the lane
        for ``duration_ms``.  Returns ``(start, end)`` and advances the
        lane's ``free_at``.
        """
        if duration_ms < 0:
            raise ValueError(f"duration must be >= 0, got {duration_ms}")
        start = max(earliest_start, self.free_at)
        end = start + duration_ms
        self.free_at = end
        self.busy_ms += duration_ms
        self.jobs += 1
        return start, end

    def peek(self, earliest_start: float, duration_ms: float) -> Tuple[float, float]:
        """Like :meth:`schedule` but without reserving the lane."""
        start = max(earliest_start, self.free_at)
        return start, start + duration_ms

    def reset(self) -> None:
        """Clear all bookkeeping (new image / new simulation)."""
        self.free_at = 0.0
        self.busy_ms = 0.0
        self.jobs = 0


class LaneSet:
    """A collection of named lanes, one per (endpoint, role) pair.

    Roles used by the evaluator: ``"send"``, ``"recv"`` and ``"compute"``.
    Lanes are created lazily on first use so the evaluator does not need to
    enumerate endpoints up front.
    """

    def __init__(self) -> None:
        self._lanes: Dict[Tuple[Hashable, str], Lane] = {}

    def lane(self, endpoint: Hashable, role: str) -> Lane:
        key = (endpoint, role)
        if key not in self._lanes:
            self._lanes[key] = Lane(name=f"{endpoint}:{role}")
        return self._lanes[key]

    def schedule(
        self, endpoint: Hashable, role: str, earliest_start: float, duration_ms: float
    ) -> Tuple[float, float]:
        """Reserve ``endpoint``'s ``role`` lane; see :meth:`Lane.schedule`."""
        return self.lane(endpoint, role).schedule(earliest_start, duration_ms)

    def busy_ms(self, endpoint: Hashable, role: str) -> float:
        """Total busy time accumulated on a lane (0 if never used)."""
        return self._lanes.get((endpoint, role), Lane(name="empty")).busy_ms

    def reset(self) -> None:
        for lane in self._lanes.values():
            lane.reset()

    def all_lanes(self) -> List[Lane]:
        return list(self._lanes.values())


__all__ = ["Lane", "LaneSet"]
