"""Sharded plan evaluation: a batch fanned out over worker processes.

:class:`~repro.runtime.batch.BatchPlanEvaluator` removed the per-plan Python
loop, but one process is still one core — and the paper's large-scale
workloads (Table III's 16-provider groups, Fig. 9, generated 32-64 device
fleets) multiply both the number of candidate plans and the per-plan
scheduling work, which grows with the square of the device count.
:class:`ShardedPlanEvaluator` adds the second axis: it partitions a plan
batch into shards, evaluates each shard in a persistent worker process
running its own :class:`BatchPlanEvaluator`, and merges the results in input
order.

Design notes:

* **Nothing stateful crosses the process boundary.**  Workers receive a
  :func:`~repro.runtime.serialization.scenario_to_dict` payload plus an
  :class:`OracleSpec` once (at pool start) and rebuild devices, seeded
  traces, models and oracles locally; plans travel as compact
  :func:`~repro.runtime.serialization.plan_batch_to_payload` shard payloads
  (cluster and partition schemes factored out per group) and results return
  as full-fidelity :func:`~repro.runtime.serialization.evaluation_to_payload`
  dicts.  Because every rebuild is deterministic (seeded), a worker's world
  is identical to the parent's, and because the batch engine is bit-exact
  with the scalar evaluator, the merged sharded results are **bit-identical**
  to a single-process evaluation of the same batch.

* **Streaming merge.**  Shard futures are consumed ``as_completed``: the
  parent decodes each shard's result payloads while slower workers are
  still computing, instead of blocking behind a submission-order barrier;
  results are placed by input index, so the merged order never depends on
  completion order.

* **Cache locality.**  The pool is persistent: each worker keeps its
  :class:`BatchPlanEvaluator` — plan LRU, per-part compute memo, profile
  tables — alive across ``evaluate_plans`` calls, so iterative planners
  (LC-PSS re-voting, OSDS episodes) that re-submit overlapping batches hit
  warm per-shard caches.  Shards are formed from whole (model, partition)
  groups, so the vectorised group sweep never straddles processes.

* **When sharding loses.**  Shipping a plan costs serialisation + IPC
  (~tens of microseconds) while a warm cache hit costs ~1 microsecond:
  small batches, single-group batches on few devices, and cache-hit-heavy
  steady states are better off on the in-process batch path.  The evaluator
  therefore falls back to its local engine whenever the batch cannot fill
  ``min_shard_size`` plans per worker, and ``evaluate`` (single plan) is
  always local.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from time import perf_counter
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nn import model_zoo
from repro.nn.graph import ModelSpec
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import EvaluationResult, PlanEvaluator
from repro.runtime.oracles import ComputeOracle, ProfileComputeOracle, profiles_by_device
from repro.runtime.plan import DistributionPlan
from repro.runtime.serialization import (
    evaluation_from_payload,
    evaluation_to_payload,
    plan_batch_from_payload,
    plan_batch_to_payload,
    scenario_from_dict,
    scenario_to_dict,
)

#: Profile representations an :class:`OracleSpec` may name.
_PROFILE_REPRESENTATIONS = ("tabular", "linear", "piecewise", "knn")


@dataclass(frozen=True)
class OracleSpec:
    """Declarative description of a compute oracle, rebuildable per process.

    ``kind="ground_truth"`` is the real-execution latency model.
    ``kind="profile"`` profiles ``model`` once per device type with the
    seeded :class:`~repro.devices.profiler.LatencyProfiler` and evaluates
    through the chosen profile ``representation`` — the controller's view of
    the world.  Both rebuilds are deterministic functions of the spec, which
    is what lets every worker construct an oracle identical to the parent's.
    """

    kind: str = "ground_truth"
    model: Optional[str] = None
    representation: str = "tabular"
    heights_per_layer: Optional[int] = 16
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("ground_truth", "profile"):
            raise ValueError(f"kind must be 'ground_truth' or 'profile', got {self.kind!r}")
        if self.kind == "profile":
            if not self.model:
                raise ValueError("profile oracle specs must name the model to profile")
            if self.representation not in _PROFILE_REPRESENTATIONS:
                raise ValueError(
                    f"unknown profile representation {self.representation!r}; "
                    f"known: {_PROFILE_REPRESENTATIONS}"
                )


def build_oracle(spec: OracleSpec, devices) -> Optional[ComputeOracle]:
    """Materialise an :class:`OracleSpec` for a device list (deterministic)."""
    if spec.kind == "ground_truth":
        return None  # the evaluator's default
    from repro.devices.profiler import LatencyProfiler
    from repro.devices.profiles import (
        KNNProfile,
        LinearProfile,
        PiecewiseLinearProfile,
        TabularProfile,
    )

    representation = {
        "tabular": TabularProfile,
        "linear": LinearProfile,
        "piecewise": PiecewiseLinearProfile,
        "knn": KNNProfile,
    }[spec.representation]
    model = model_zoo.get(spec.model)
    per_type: Dict[str, object] = {}
    for device in devices:
        if device.type_name not in per_type:
            points = LatencyProfiler(device.dtype, seed=spec.seed).profile_model(
                model, heights_per_layer=spec.heights_per_layer
            )
            per_type[device.type_name] = representation.from_points(points)
    return ProfileComputeOracle(devices, profiles_by_device(devices, per_type))


# ---------------------------------------------------------------------- #
# worker-process side
# ---------------------------------------------------------------------- #

_WORKER_STATE: Optional["_WorkerState"] = None


class _WorkerState:
    """One worker's rebuilt world: devices, network, oracle, batch engine.

    Deserialising a shard is dominated by re-splitting models into
    layer-volumes when done naively (~40% of shard wall time at 32 devices).
    Two memos remove that: ``model()`` keeps one :class:`ModelSpec` per name
    alive for the worker's lifetime, and plan reconstruction goes through
    the boundaries->volumes partition memo
    (:func:`repro.nn.graph.cached_partition`, keyed on the worker's model
    instances), so the splitting arithmetic runs once per
    ``(model, boundaries)`` group ever seen by this worker, not once per
    plan.  The memo returns the identical frozen volume objects, so reuse is
    invisible to evaluation.
    """

    def __init__(self, config: Dict) -> None:
        scenario = scenario_from_dict(config["scenario"])
        devices, network = scenario.build(
            seed=config["seed"], trace_kind=config.get("trace_kind")
        )
        oracle = build_oracle(OracleSpec(**config["oracle"]), devices)
        self.devices = devices
        self.evaluator = BatchPlanEvaluator(
            devices,
            network,
            compute_oracle=oracle,
            input_bytes_per_element=config["input_bytes_per_element"],
            cache_size=config["cache_size"],
        )
        self.models: Dict[str, ModelSpec] = {}

    def model(self, name: str) -> ModelSpec:
        if name not in self.models:
            self.models[name] = model_zoo.get(name)
        return self.models[name]


def _init_worker(config: Dict) -> None:
    global _WORKER_STATE
    _WORKER_STATE = _WorkerState(config)


def _worker_ping(delay_s: float) -> int:
    """Used by :meth:`ShardedPlanEvaluator.warm_up` to start every worker."""
    time.sleep(delay_s)
    return os.getpid()


def _evaluate_shard(batch_payload: Dict, t_seconds: float) -> List[Dict]:
    state = _WORKER_STATE
    assert state is not None, "worker used before initialisation"
    plans = plan_batch_from_payload(
        batch_payload, model_resolver=state.model, devices=state.devices
    )
    results = state.evaluator.evaluate_plans(plans, t_seconds)
    return [evaluation_to_payload(result) for result in results]


def _clear_worker_caches(delay_s: float) -> int:
    state = _WORKER_STATE
    if state is not None:
        state.evaluator.clear_cache()
    time.sleep(delay_s)
    return os.getpid()


# ---------------------------------------------------------------------- #
# parent side
# ---------------------------------------------------------------------- #


class ShardedPlanEvaluator:
    """Multiprocess :meth:`evaluate_plans` over a persistent worker pool.

    Parameters
    ----------
    scenario:
        The deployment to evaluate against — a
        :class:`~repro.experiments.scenarios.Scenario` from the catalogue,
        :func:`~repro.experiments.scenarios.generate_scenario`, or
        :meth:`~repro.experiments.scenarios.Scenario.adhoc`.  The scenario
        (not live objects) is what worker processes receive.
    num_workers:
        Worker process count; ``None`` picks ``min(4, cpu_count)``; ``0`` or
        ``1`` keeps everything in-process (still batched and cached).
    oracle_spec:
        Compute-oracle description (default: ground truth).
    seed / trace_kind:
        Forwarded to :meth:`Scenario.build` — workers use the same values, so
        their traces are identical to the parent's.
    min_shard_size:
        Smallest worthwhile per-worker shard: a batch is dispatched to at
        most ``len(plans) // min_shard_size`` workers (so shards average at
        least this many plans, whole groups permitting), and when that
        allows fewer than two workers the batch takes the local path.
    """

    def __init__(
        self,
        scenario,
        num_workers: Optional[int] = None,
        oracle_spec: Optional[OracleSpec] = None,
        seed: int = 0,
        trace_kind: Optional[str] = None,
        input_bytes_per_element: float = PlanEvaluator.DEFAULT_INPUT_BYTES_PER_ELEMENT,
        cache_size: int = 4096,
        min_shard_size: int = 4,
        mp_context: Optional[str] = None,
    ) -> None:
        if num_workers is None:
            num_workers = min(4, os.cpu_count() or 1)
        if num_workers < 0:
            raise ValueError(f"num_workers must be >= 0, got {num_workers}")
        if min_shard_size < 1:
            raise ValueError(f"min_shard_size must be >= 1, got {min_shard_size}")
        self.scenario = scenario
        self.num_workers = int(num_workers)
        self.oracle_spec = oracle_spec or OracleSpec()
        self.seed = int(seed)
        self.trace_kind = trace_kind
        self.min_shard_size = int(min_shard_size)
        self._mp_method = mp_context
        self._worker_config = {
            "scenario": scenario_to_dict(scenario),
            "seed": self.seed,
            "trace_kind": trace_kind,
            "oracle": asdict(self.oracle_spec),
            "input_bytes_per_element": float(input_bytes_per_element),
            "cache_size": int(cache_size),
        }
        devices, network = scenario.build(seed=self.seed, trace_kind=trace_kind)
        self.devices = devices
        self.network = network
        #: In-process engine: single-plan calls, small batches, and the
        #: reference the parity tests compare worker output against.
        self.local = BatchPlanEvaluator(
            devices,
            network,
            compute_oracle=build_oracle(self.oracle_spec, devices),
            input_bytes_per_element=input_bytes_per_element,
            cache_size=cache_size,
        )
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Worker-pool breakages survived (a worker process died mid-batch —
        #: e.g. the machine reclaiming cores on a fleet shrink).  Each one is
        #: recovered by retiring the broken pool and serving the batch on the
        #: in-process engine, which is bit-identical by construction.
        self.pool_failures = 0
        # Validated models are kept by strong reference so their ids cannot
        # be recycled by a different (unvalidated) model after collection.
        self._validated_models: Dict[int, ModelSpec] = {}

    @property
    def profiler(self):
        """Wall-clock profiler, shared with the in-process engine so one
        attachment covers both the pooled and local paths."""
        return self.local.profiler

    @profiler.setter
    def profiler(self, value) -> None:
        self.local.profiler = value

    # ------------------------------------------------------------------ #
    # pool lifecycle
    # ------------------------------------------------------------------ #
    def _context(self):
        if self._mp_method is not None:
            return multiprocessing.get_context(self._mp_method)
        # Prefer fork where the platform offers it: workers start in
        # milliseconds and inherit the imported modules.  Everything a worker
        # *uses* still arrives via the serialised config, so the evaluator
        # behaves identically under spawn/forkserver (macOS, Windows).
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context("fork" if "fork" in methods else None)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.num_workers,
                mp_context=self._context(),
                initializer=_init_worker,
                initargs=(self._worker_config,),
            )
        return self._executor

    def warm_up(self, delay_s: float = 0.05) -> int:
        """Start (and initialise) the worker processes; returns the number of
        distinct workers that answered.  Benchmarks call this so pool start-up
        is not billed to the first measured batch."""
        if self.num_workers <= 1:
            return 0
        executor = self._ensure_executor()
        futures = [
            executor.submit(_worker_ping, delay_s) for _ in range(self.num_workers)
        ]
        return len({future.result() for future in futures})

    def clear_cache(self) -> int:
        """Drop the local caches and, best-effort, every worker's caches.

        Returns the number of *distinct* workers that confirmed the clear.
        Like :meth:`warm_up`, the fan-out submits one briefly-sleeping task
        per worker, but the pool does not guarantee one task lands on each
        process — a busy worker can be skipped.  A return value below
        ``num_workers`` means some worker may still hold warm caches; callers
        that need a guaranteed-cold pool should ``close()`` and let the next
        batch restart it."""
        self.local.clear_cache()
        if self._executor is None:
            return 0
        futures = [
            self._executor.submit(_clear_worker_caches, 0.05)
            for _ in range(self.num_workers)
        ]
        return len({future.result() for future in futures})

    def close(self) -> None:
        """Shut the worker pool down; the evaluator stays usable in-process."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "ShardedPlanEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown path
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, plan: DistributionPlan, t_seconds: float = 0.0) -> EvaluationResult:
        """Single-plan evaluation (always in-process; sharding one plan is
        pure overhead)."""
        return self.local.evaluate(plan, t_seconds)

    def ips(self, plan: DistributionPlan, t_seconds: float = 0.0) -> float:
        return self.evaluate(plan, t_seconds).ips

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters of the in-process engine's plan LRU."""
        return self.local.cache_info()

    def _check_model(self, model: ModelSpec) -> None:
        """Plans must use zoo-named models: that is how workers rebuild them."""
        key = id(model)
        if self._validated_models.get(key) is model:
            return
        try:
            rebuilt = model_zoo.get(model.name)
        except KeyError:
            raise ValueError(
                f"sharded evaluation requires zoo models (plans reference models "
                f"by name across processes); {model.name!r} is not in the zoo"
            ) from None
        # ModelSpec is not a dataclass; compare structure field by field
        # (LayerSpec is frozen, so the layers tuple compares structurally).
        if (
            rebuilt.input_shape != model.input_shape
            or rebuilt.layers != model.layers
        ):
            raise ValueError(
                f"model {model.name!r} differs from the zoo build of the same name "
                "(custom input size?); sharded workers could not reconstruct it"
            )
        self._validated_models[key] = model

    def _shards(
        self, plans: Sequence[DistributionPlan], num_bins: int
    ) -> List[List[int]]:
        """Partition plan indices into ``num_bins`` shards, keeping each
        (model, partition) group whole so the vectorised group sweep never
        straddles processes.  Greedy balance by plan count."""
        groups: Dict[Tuple, List[int]] = {}
        for i, plan in enumerate(plans):
            groups.setdefault((plan.model.name, tuple(plan.boundaries)), []).append(i)
        shards: List[List[int]] = [[] for _ in range(num_bins)]
        for indices in sorted(groups.values(), key=len, reverse=True):
            min(shards, key=len).extend(indices)
        return [sorted(shard) for shard in shards if shard]

    def evaluate_plans(
        self, plans: Sequence[DistributionPlan], t_seconds: float = 0.0
    ) -> List[EvaluationResult]:
        """Evaluate a batch across the worker pool; results in input order,
        bit-identical to :meth:`BatchPlanEvaluator.evaluate_plans`."""
        plans = list(plans)
        # Use only as many workers as the batch can feed min_shard_size
        # plans each; below two such shards the pool is pure overhead.
        usable_workers = min(self.num_workers, len(plans) // self.min_shard_size)
        if usable_workers < 2:
            return self.local.evaluate_plans(plans, t_seconds)
        for plan in plans:
            if plan.num_devices != len(self.devices):
                raise ValueError(
                    f"plan covers {plan.num_devices} devices, evaluator has "
                    f"{len(self.devices)}"
                )
            self._check_model(plan.model)
        shards = self._shards(plans, usable_workers)
        if len(shards) < 2:
            return self.local.evaluate_plans(plans, t_seconds)
        executor = self._ensure_executor()
        prof = self.local.profiler
        try:
            dispatch_start = perf_counter() if prof.enabled else 0.0
            futures = {
                executor.submit(
                    _evaluate_shard,
                    plan_batch_to_payload([plans[i] for i in shard]),
                    t_seconds,
                ): shard
                for shard in shards
            }
            if prof.enabled:
                prof.add("shard.dispatch", perf_counter() - dispatch_start)
                prof.count("shard.batches")
                prof.count("shard.shards", len(shards))
            # Streaming merge: decode each shard's payloads the moment its
            # future completes (as_completed), so parent-side deserialisation
            # overlaps the compute of workers still running instead of waiting
            # behind a submission-order barrier.  Input order is preserved by
            # index placement, so the merged list is unaffected by completion
            # order.
            merge_start = perf_counter() if prof.enabled else 0.0
            results: List[Optional[EvaluationResult]] = [None] * len(plans)
            for future in as_completed(futures):
                shard = futures[future]
                for i, payload in zip(shard, future.result()):
                    results[i] = evaluation_from_payload(payload)
            if prof.enabled:
                # Includes worker wait: the time from last submit to the
                # final decoded payload.
                prof.add("shard.merge", perf_counter() - merge_start)
            return results  # type: ignore[return-value]
        except BrokenProcessPool:
            # A worker died mid-batch (machine churn, OOM kill, fleet
            # shrink reclaiming cores).  The pool is unusable from here on:
            # retire it and serve the whole batch on the in-process engine —
            # bit-identical output by the sharding contract, so callers
            # never observe the failure.  The next batch lazily starts a
            # fresh pool.
            self.pool_failures += 1
            if prof.enabled:
                prof.count("shard.pool_failures")
            self.close()
            return self.local.evaluate_plans(plans, t_seconds)


__all__ = ["OracleSpec", "ShardedPlanEvaluator", "build_oracle"]
