"""Single-image end-to-end latency evaluation of a distribution plan.

The evaluator builds the task graph of one inference — input scatter, per
volume compute on every participating provider, the redistribution between
consecutive volumes, the gather onto the head device (or the requester) and
the final result return — and schedules it over the per-device send /
receive / compute lanes and the WiFi links.  The result carries:

* the end-to-end latency (``1000 / latency`` is the paper's IPS metric,
  because an image is only sent after the previous result returned),
* the per-volume *accumulated latencies* ``T^l`` of every provider — exactly
  the quantity that forms the DRL state in Eq. 7,
* per-device compute and transmission busy times, from which Fig. 15's
  "max computing latency" / "max transmission latency" bars are produced.

The evaluator exposes its internal stepping (:class:`ScheduleState`,
:meth:`PlanEvaluator.process_volume`, :meth:`PlanEvaluator.finalize`) so the
OSDS MDP environment can advance one layer-volume at a time while observing
identical semantics to whole-plan evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.specs import DeviceInstance
from repro.network.topology import REQUESTER, NetworkModel
from repro.nn.splitting import SplitPart
from repro.runtime.lanes import LaneSet
from repro.runtime.oracles import ComputeOracle, GroundTruthComputeOracle, MemoizedComputeOracle
from repro.runtime.plan import DistributionPlan, VolumeAssignment, redistribution_bytes
from repro.utils.units import FP16_BYTES


@dataclass
class VolumeTiming:
    """Timing detail for one layer-volume of one inference."""

    volume_index: int
    ready_ms: np.ndarray  # when each provider's inputs were available
    finish_ms: np.ndarray  # when each provider finished its part (accumulated latency)
    compute_ms: np.ndarray  # pure compute duration of each provider's part
    recv_bytes: np.ndarray  # bytes received by each provider for this volume


@dataclass
class EvaluationResult:
    """Complete timing result of one distributed inference."""

    end_to_end_ms: float
    volume_timings: List[VolumeTiming]
    per_device_compute_ms: np.ndarray
    per_device_send_ms: np.ndarray
    per_device_recv_ms: np.ndarray
    scatter_end_ms: float
    head_device: Optional[int]
    head_compute_ms: float
    method: str = "unspecified"

    @property
    def ips(self) -> float:
        """Images per second under the paper's one-image-in-flight protocol.

        Raises :class:`ValueError` on a non-positive latency: every real
        inference pays at least the scatter and compute time, so a zero or
        negative ``end_to_end_ms`` always indicates a corrupted result, and
        silently returning ``inf`` (the old behaviour) poisoned downstream
        aggregations like mean IPS and speedup-over-baseline ratios.
        """
        if self.end_to_end_ms <= 0:
            raise ValueError(
                f"cannot compute IPS from non-positive end_to_end_ms={self.end_to_end_ms!r}; "
                "the evaluation result is corrupt"
            )
        return 1000.0 / self.end_to_end_ms

    @property
    def accumulated_latencies(self) -> List[np.ndarray]:
        """Per-volume accumulated latencies ``T^l`` (ms) of every provider."""
        return [vt.finish_ms.copy() for vt in self.volume_timings]

    @property
    def max_compute_ms(self) -> float:
        """Largest per-provider total compute time (Fig. 15 light bars)."""
        return float(self.per_device_compute_ms.max()) if self.per_device_compute_ms.size else 0.0

    @property
    def max_transmission_ms(self) -> float:
        """Largest per-provider transmission (send + receive) time (Fig. 15 dark bars)."""
        if self.per_device_send_ms.size == 0:
            return 0.0
        return float((self.per_device_send_ms + self.per_device_recv_ms).max())


@dataclass
class ScheduleState:
    """Mutable scheduling state carried across volumes of one inference."""

    lanes: LaneSet
    data_ready_ms: Dict[int, float]  # provider -> time its current rows are ready
    prev_parts: Optional[Tuple[SplitPart, ...]]
    accumulated: List[np.ndarray] = field(default_factory=list)
    volume_timings: List[VolumeTiming] = field(default_factory=list)
    scatter_end_ms: float = 0.0
    compute_ms_total: Optional[np.ndarray] = None


class PlanEvaluator:
    """Evaluates distribution plans on a device cluster and network.

    Parameters
    ----------
    devices:
        Service providers, in plan order.
    network:
        The WiFi star network connecting requester and providers.
    compute_oracle:
        Source of per-part compute latencies; defaults to the ground-truth
        nonlinear device model (i.e. "real execution").
    input_bytes_per_element:
        Bytes per input-tensor element for the requester's scatter of the
        *first* volume.  The requester ships encoded camera images (the
        testbed streams JPEG frames), not FP16 activations; the default of
        0.4 bytes per element corresponds to a ~60 KB JPEG for a 224x224 RGB
        frame.  Set to 1.0 for raw uint8 pixels or 2.0 for raw FP16 input.
        All inter-volume activation traffic stays FP16.
    memoize_compute:
        Wrap the compute oracle in a :class:`MemoizedComputeOracle` so that
        identical (volume, split) samples are never re-computed.  Memoization
        is behaviour-preserving (a hit returns the identical float) and is on
        by default; pass ``False`` to measure raw evaluator cost.
    """

    #: Default encoded-image size per input element (JPEG-compressed frames).
    DEFAULT_INPUT_BYTES_PER_ELEMENT: float = 0.4

    def __init__(
        self,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        compute_oracle: Optional[ComputeOracle] = None,
        input_bytes_per_element: float = DEFAULT_INPUT_BYTES_PER_ELEMENT,
        memoize_compute: bool = True,
    ) -> None:
        if network.num_providers != len(devices):
            raise ValueError(
                f"network has {network.num_providers} provider links for {len(devices)} devices"
            )
        if input_bytes_per_element <= 0:
            raise ValueError(
                f"input_bytes_per_element must be > 0, got {input_bytes_per_element}"
            )
        self.devices = list(devices)
        self.network = network
        oracle: ComputeOracle = compute_oracle or GroundTruthComputeOracle(devices)
        if memoize_compute and not isinstance(oracle, MemoizedComputeOracle):
            oracle = MemoizedComputeOracle(oracle)
        self.oracle = oracle
        self.input_bytes_per_element = float(input_bytes_per_element)

    # ------------------------------------------------------------------ #
    # stepping API (used by the OSDS environment)
    # ------------------------------------------------------------------ #
    def new_state(self) -> ScheduleState:
        """Fresh scheduling state for a new inference (time 0 = image ready)."""
        return ScheduleState(
            lanes=LaneSet(),
            data_ready_ms={},
            prev_parts=None,
            compute_ms_total=np.zeros(len(self.devices)),
        )

    def _transfer(
        self,
        state: ScheduleState,
        src: int,
        dst: int,
        n_bytes: int,
        earliest_ms: float,
        t_seconds: float,
    ) -> float:
        """Schedule one transfer across the sender's send and receiver's recv lanes."""
        if n_bytes <= 0 or src == dst:
            return earliest_ms
        duration = self.network.transfer_latency_ms(src, dst, n_bytes, t_seconds)
        send = state.lanes.lane(src, "send")
        recv = state.lanes.lane(dst, "recv")
        start = max(earliest_ms, send.free_at, recv.free_at)
        end = start + duration
        send.free_at = end
        send.busy_ms += duration
        send.jobs += 1
        recv.free_at = end
        recv.busy_ms += duration
        recv.jobs += 1
        return end

    def process_volume(
        self,
        state: ScheduleState,
        assignment: VolumeAssignment,
        t_seconds: float = 0.0,
    ) -> np.ndarray:
        """Schedule one layer-volume; returns the accumulated latencies ``T^l``."""
        n = len(self.devices)
        ready = np.zeros(n)
        finish = np.zeros(n)
        compute = np.zeros(n)
        recv_bytes = np.zeros(n)

        prev_finish = (
            state.accumulated[-1] if state.accumulated else np.zeros(n)
        )
        row_bytes = assignment.volume.first.in_w * assignment.volume.first.in_c * FP16_BYTES

        if state.prev_parts is None:
            # First volume: the requester scatters each provider's exact
            # input rows (the image was split beforehand by the controller).
            # The scatter carries image pixels, so its size uses the input
            # encoding rather than the FP16 activation size.
            in_w = assignment.volume.first.in_w
            in_c = assignment.volume.first.in_c
            transfers: Dict[Tuple[int, int], int] = {
                (REQUESTER, p.device_index): int(
                    round(p.num_input_rows * in_w * in_c * self.input_bytes_per_element)
                )
                for p in assignment.parts
                if not p.is_empty
            }
        else:
            transfers = redistribution_bytes(state.prev_parts, assignment.parts, row_bytes)

        for part in assignment.parts:
            j = part.device_index
            if part.is_empty:
                # Provider does not participate in this volume; its
                # accumulated latency carries over unchanged.
                finish[j] = prev_finish[j]
                ready[j] = prev_finish[j]
                continue
            arrival = 0.0
            for (src, dst), n_bytes in transfers.items():
                if dst != j:
                    continue
                source_ready = 0.0 if src == REQUESTER else state.data_ready_ms.get(src, 0.0)
                end = self._transfer(state, src, dst, n_bytes, source_ready, t_seconds)
                arrival = max(arrival, end)
                recv_bytes[j] += n_bytes
            # Rows the provider already holds locally from the previous volume.
            local_ready = 0.0
            if state.prev_parts is not None:
                prev_part = state.prev_parts[j]
                if not prev_part.is_empty:
                    need_lo, need_hi = part.in_rows
                    have_lo, have_hi = prev_part.out_rows
                    if min(need_hi, have_hi) > max(need_lo, have_lo):
                        local_ready = state.data_ready_ms.get(j, 0.0)
            ready[j] = max(arrival, local_ready)
            duration = self.oracle.part_latency_ms(j, assignment.volume, part)
            compute[j] = duration
            _, end = state.lanes.schedule(j, "compute", ready[j], duration)
            finish[j] = end
            state.compute_ms_total[j] += duration

        # Update data ownership for the next boundary.
        for part in assignment.parts:
            j = part.device_index
            state.data_ready_ms[j] = finish[j] if not part.is_empty else 0.0
        state.prev_parts = assignment.parts
        state.accumulated.append(finish.copy())
        state.volume_timings.append(
            VolumeTiming(
                volume_index=len(state.volume_timings),
                ready_ms=ready,
                finish_ms=finish.copy(),
                compute_ms=compute,
                recv_bytes=recv_bytes,
            )
        )
        if state.prev_parts is not None and len(state.volume_timings) == 1:
            state.scatter_end_ms = float(ready.max())
        return finish.copy()

    def finalize(
        self,
        state: ScheduleState,
        plan: DistributionPlan,
        t_seconds: float = 0.0,
    ) -> EvaluationResult:
        """Schedule gather / head / result return and assemble the result."""
        if not state.volume_timings:
            raise ValueError("finalize called before any volume was processed")
        n = len(self.devices)
        last_assignment = plan.assignment(plan.num_volumes - 1)
        head_layers = plan.model.head_layers
        head_compute_ms = 0.0

        if head_layers:
            head = plan.head_device
            # Gather every other provider's output rows onto the head device.
            gather_ready = state.data_ready_ms.get(head, 0.0)
            for part in last_assignment.parts:
                j = part.device_index
                if part.is_empty or j == head:
                    continue
                end = self._transfer(
                    state, j, head, part.output_bytes, state.data_ready_ms.get(j, 0.0), t_seconds
                )
                gather_ready = max(gather_ready, end)
            head_compute_ms = self.oracle.head_latency_ms(head, head_layers)
            _, head_end = state.lanes.schedule(head, "compute", gather_ready, head_compute_ms)
            state.compute_ms_total[head] += head_compute_ms
            result_bytes = head_layers[-1].output_bytes
            end_to_end = self._transfer(state, head, REQUESTER, result_bytes, head_end, t_seconds)
            head_device: Optional[int] = head
        else:
            # No dense head (e.g. YOLOv2): each provider returns its own
            # output rows to the requester.
            end_to_end = 0.0
            for part in last_assignment.parts:
                j = part.device_index
                if part.is_empty:
                    continue
                end = self._transfer(
                    state, j, REQUESTER, part.output_bytes, state.data_ready_ms.get(j, 0.0), t_seconds
                )
                end_to_end = max(end_to_end, end)
            head_device = None

        per_send = np.array([state.lanes.busy_ms(j, "send") for j in range(n)])
        per_recv = np.array([state.lanes.busy_ms(j, "recv") for j in range(n)])
        return EvaluationResult(
            end_to_end_ms=float(end_to_end),
            volume_timings=state.volume_timings,
            per_device_compute_ms=state.compute_ms_total.copy(),
            per_device_send_ms=per_send,
            per_device_recv_ms=per_recv,
            scatter_end_ms=state.scatter_end_ms,
            head_device=head_device,
            head_compute_ms=head_compute_ms,
            method=plan.method,
        )

    # ------------------------------------------------------------------ #
    def evaluate(self, plan: DistributionPlan, t_seconds: float = 0.0) -> EvaluationResult:
        """Evaluate a complete plan for one inference starting at ``t_seconds``.

        ``t_seconds`` indexes into the bandwidth traces, so the same plan can
        be evaluated under the instantaneous network conditions of any moment
        of a trace (used by the dynamic-network experiments).
        """
        if plan.num_devices != len(self.devices):
            raise ValueError(
                f"plan covers {plan.num_devices} devices, evaluator has {len(self.devices)}"
            )
        state = self.new_state()
        for assignment in plan.assignments:
            self.process_volume(state, assignment, t_seconds)
        return self.finalize(state, plan, t_seconds)

    def ips(self, plan: DistributionPlan, t_seconds: float = 0.0) -> float:
        """Convenience wrapper returning images-per-second for a plan."""
        return self.evaluate(plan, t_seconds).ips


__all__ = ["PlanEvaluator", "EvaluationResult", "VolumeTiming", "ScheduleState"]
