"""Serialisation of distribution plans, scenarios and evaluation results.

A deployment workflow needs to move plans between machines: the controller
computes a strategy once, stores it, and the requester/providers load it at
service time (the paper's controller "informs the requester to send the
split-parts to the corresponding providers").  This module provides a stable
JSON representation for :class:`~repro.runtime.plan.DistributionPlan` plus a
compact dict form of evaluation results for logging experiment outcomes.

The model itself is not embedded — plans reference the model by name and are
re-validated against a freshly built :class:`~repro.nn.graph.ModelSpec` on
load, so a stale plan for a different architecture fails loudly instead of
silently mis-splitting.

The same codecs move work between the processes of a
:class:`~repro.runtime.shard.ShardedPlanEvaluator`: scenarios cross the
process boundary as :func:`scenario_to_dict` payloads (each worker rebuilds
its own devices, traces and oracle from the spec) and results come back as
:func:`evaluation_to_payload` dicts, which — unlike the compact
:func:`evaluation_to_dict` log form — round-trip every field of an
:class:`~repro.runtime.evaluator.EvaluationResult` exactly, so the merged
sharded results are bit-identical to a single-process evaluation.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.devices.specs import DeviceInstance, get_device_type
from repro.nn import model_zoo
from repro.nn.graph import ModelSpec, cached_partition
from repro.nn.splitting import SplitDecision
from repro.runtime.evaluator import EvaluationResult, VolumeTiming
from repro.runtime.plan import DistributionPlan

#: Format version written into every serialised plan.
PLAN_FORMAT_VERSION = 1


def plan_to_dict(plan: DistributionPlan) -> Dict:
    """Convert a plan to a JSON-serialisable dictionary."""
    return {
        "format_version": PLAN_FORMAT_VERSION,
        "method": plan.method,
        "model": plan.model.name,
        "boundaries": list(plan.boundaries),
        "head_device": plan.head_device,
        "devices": [
            {
                "device_id": d.device_id,
                "type": d.type_name,
                "bandwidth_mbps": d.bandwidth_mbps,
            }
            for d in plan.devices
        ],
        "decisions": [
            {"cuts": list(decision.cuts), "output_height": decision.output_height}
            for decision in plan.decisions
        ],
    }


def plan_from_dict(
    data: Dict,
    model: Optional[ModelSpec] = None,
    devices: Optional[Sequence[DeviceInstance]] = None,
) -> DistributionPlan:
    """Reconstruct a plan from :func:`plan_to_dict` output.

    ``model`` may be supplied explicitly (e.g. a custom architecture);
    otherwise the model is rebuilt from the zoo by name.  Validation inside
    :class:`DistributionPlan` re-checks boundaries and split heights against
    the model, so loading a plan against the wrong architecture raises.

    ``devices`` lets a caller that already holds the cluster (a sharded
    evaluator's worker, a batch loader) reuse its instances instead of
    rebuilding one list per plan; the serialised entries are checked against
    it so a plan for a different cluster still fails loudly.
    """
    version = data.get("format_version")
    if version != PLAN_FORMAT_VERSION:
        raise ValueError(
            f"unsupported plan format version {version!r}; expected {PLAN_FORMAT_VERSION}"
        )
    if model is None:
        model = model_zoo.get(data["model"])
    elif model.name != data["model"]:
        raise ValueError(
            f"plan was produced for model {data['model']!r}, got {model.name!r}"
        )
    if devices is not None:
        devices = list(devices)
        if len(devices) != len(data["devices"]):
            raise ValueError(
                f"plan covers {len(data['devices'])} devices, caller supplied {len(devices)}"
            )
        for device, entry in zip(devices, data["devices"]):
            if (
                device.type_name != get_device_type(entry["type"]).name
                or device.bandwidth_mbps != float(entry["bandwidth_mbps"])
            ):
                raise ValueError(
                    f"supplied device {device} does not match serialised entry {entry!r}"
                )
    else:
        devices = [
            DeviceInstance(
                device_id=entry["device_id"],
                dtype=get_device_type(entry["type"]),
                bandwidth_mbps=float(entry["bandwidth_mbps"]),
            )
            for entry in data["devices"]
        ]
    decisions = [
        SplitDecision(cuts=tuple(entry["cuts"]), output_height=int(entry["output_height"]))
        for entry in data["decisions"]
    ]
    return DistributionPlan(
        model=model,
        devices=devices,
        boundaries=[int(b) for b in data["boundaries"]],
        decisions=decisions,
        head_device=int(data["head_device"]),
        method=str(data["method"]),
    )


def plan_batch_to_payload(plans: Sequence[DistributionPlan]) -> Dict:
    """Compact batch form of many plans sharing one device cluster.

    :func:`plan_to_dict` repeats the device list and the partition scheme in
    every plan, which at 32+ devices makes the per-plan IPC payload of a
    sharded evaluator mostly redundant bytes.  The batch payload factors the
    cluster out once and groups plans by ``(model, boundaries)``, leaving
    each plan as just its cut points, head placement and method label.
    Plans are restored in input order by :func:`plan_batch_from_payload`.
    """
    if not plans:
        return {"format_version": PLAN_FORMAT_VERSION, "devices": [], "groups": []}
    reference = plans[0]
    groups: Dict = {}
    for index, plan in enumerate(plans):
        if plan.devices != reference.devices:
            raise ValueError(
                "plan batch payloads factor the cluster out once; plan "
                f"{index} targets different devices than plan 0"
            )
        key = (plan.model.name, tuple(plan.boundaries))
        group = groups.get(key)
        if group is None:
            group = groups[key] = {
                "model": plan.model.name,
                "boundaries": list(plan.boundaries),
                "indices": [],
                "plans": [],
            }
        group["indices"].append(index)
        group["plans"].append(
            {
                "cuts": [list(d.cuts) for d in plan.decisions],
                "head_device": plan.head_device,
                "method": plan.method,
            }
        )
    return {
        "format_version": PLAN_FORMAT_VERSION,
        "devices": plan_to_dict(reference)["devices"],
        "groups": list(groups.values()),
    }


def plan_batch_from_payload(
    payload: Dict,
    model_resolver=None,
    devices: Optional[Sequence[DeviceInstance]] = None,
) -> List[DistributionPlan]:
    """Rebuild the plans of :func:`plan_batch_to_payload`, in input order.

    ``model_resolver`` maps a model name to a :class:`ModelSpec` (default:
    the zoo); ``devices`` supplies an already-built cluster, validated once
    against the payload instead of once per plan.  Per-volume split heights
    come from the (memoized) partition of each group's model, so a worker
    deserialising a shard pays the splitting arithmetic once per
    ``(model, boundaries)`` group rather than once per plan.
    """
    version = payload.get("format_version")
    if version != PLAN_FORMAT_VERSION:
        raise ValueError(
            f"unsupported plan format version {version!r}; expected {PLAN_FORMAT_VERSION}"
        )
    if model_resolver is None:
        model_resolver = model_zoo.get
    if devices is not None:
        devices = list(devices)
        if len(devices) != len(payload["devices"]):
            raise ValueError(
                f"batch covers {len(payload['devices'])} devices, caller supplied "
                f"{len(devices)}"
            )
        for device, entry in zip(devices, payload["devices"]):
            if (
                device.type_name != get_device_type(entry["type"]).name
                or device.bandwidth_mbps != float(entry["bandwidth_mbps"])
            ):
                raise ValueError(
                    f"supplied device {device} does not match serialised entry {entry!r}"
                )
    else:
        devices = [
            DeviceInstance(
                device_id=entry["device_id"],
                dtype=get_device_type(entry["type"]),
                bandwidth_mbps=float(entry["bandwidth_mbps"]),
            )
            for entry in payload["devices"]
        ]
    total = sum(len(group["indices"]) for group in payload["groups"])
    plans: List[Optional[DistributionPlan]] = [None] * total
    for group in payload["groups"]:
        model = model_resolver(group["model"])
        boundaries = [int(b) for b in group["boundaries"]]
        volumes = cached_partition(model, boundaries)
        for index, entry in zip(group["indices"], group["plans"]):
            decisions = [
                SplitDecision(cuts=tuple(cuts), output_height=volume.output_height)
                for cuts, volume in zip(entry["cuts"], volumes)
            ]
            plans[index] = DistributionPlan(
                model=model,
                devices=devices,
                boundaries=boundaries,
                decisions=decisions,
                head_device=int(entry["head_device"]),
                method=str(entry["method"]),
            )
    if any(plan is None for plan in plans):
        raise ValueError("batch payload indices do not cover the batch densely")
    return plans  # type: ignore[return-value]


def save_plan(plan: DistributionPlan, path: Union[str, Path]) -> Path:
    """Write a plan to a JSON file; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(plan_to_dict(plan), indent=2, sort_keys=True))
    return path


def load_plan(path: Union[str, Path], model: Optional[ModelSpec] = None) -> DistributionPlan:
    """Load a plan previously written by :func:`save_plan`."""
    data = json.loads(Path(path).read_text())
    return plan_from_dict(data, model=model)


def scenario_to_dict(scenario) -> Dict:
    """Convert a :class:`~repro.experiments.scenarios.Scenario` to a plain dict.

    The dict is the unit a :class:`~repro.runtime.shard.ShardedPlanEvaluator`
    ships to its worker processes: each worker rebuilds the identical fleet
    and (seeded) traces from it, so nothing stateful crosses the boundary.
    """
    return {
        "name": scenario.name,
        "device_specs": [[t, float(b)] for t, b in scenario.device_specs],
        "description": scenario.description,
        "trace_kind": scenario.trace_kind,
    }


def scenario_from_dict(data: Dict):
    """Rebuild a :class:`~repro.experiments.scenarios.Scenario` from its dict."""
    from repro.experiments.scenarios import Scenario

    return Scenario(
        name=str(data["name"]),
        device_specs=tuple((str(t), float(b)) for t, b in data["device_specs"]),
        description=str(data.get("description", "")),
        trace_kind=str(data.get("trace_kind", "constant")),
    )


def evaluation_to_payload(result: EvaluationResult) -> Dict:
    """Full-fidelity dict form of an :class:`EvaluationResult`.

    Unlike :func:`evaluation_to_dict` (a compact summary for logs), the
    payload keeps every field — including per-volume timings — as plain
    lists/floats, and :func:`evaluation_from_payload` reconstructs an equal
    result bit for bit (float64 survives the list round-trip exactly).
    """
    return {
        "end_to_end_ms": result.end_to_end_ms,
        "scatter_end_ms": result.scatter_end_ms,
        "head_device": result.head_device,
        "head_compute_ms": result.head_compute_ms,
        "method": result.method,
        "per_device_compute_ms": result.per_device_compute_ms.tolist(),
        "per_device_send_ms": result.per_device_send_ms.tolist(),
        "per_device_recv_ms": result.per_device_recv_ms.tolist(),
        "volume_timings": [
            {
                "volume_index": vt.volume_index,
                "ready_ms": vt.ready_ms.tolist(),
                "finish_ms": vt.finish_ms.tolist(),
                "compute_ms": vt.compute_ms.tolist(),
                "recv_bytes": vt.recv_bytes.tolist(),
            }
            for vt in result.volume_timings
        ],
    }


def evaluation_from_payload(data: Dict) -> EvaluationResult:
    """Reconstruct an :class:`EvaluationResult` from :func:`evaluation_to_payload`."""
    timings: List[VolumeTiming] = [
        VolumeTiming(
            volume_index=int(vt["volume_index"]),
            ready_ms=np.asarray(vt["ready_ms"], dtype=np.float64),
            finish_ms=np.asarray(vt["finish_ms"], dtype=np.float64),
            compute_ms=np.asarray(vt["compute_ms"], dtype=np.float64),
            recv_bytes=np.asarray(vt["recv_bytes"], dtype=np.float64),
        )
        for vt in data["volume_timings"]
    ]
    head_device = data["head_device"]
    return EvaluationResult(
        end_to_end_ms=float(data["end_to_end_ms"]),
        volume_timings=timings,
        per_device_compute_ms=np.asarray(data["per_device_compute_ms"], dtype=np.float64),
        per_device_send_ms=np.asarray(data["per_device_send_ms"], dtype=np.float64),
        per_device_recv_ms=np.asarray(data["per_device_recv_ms"], dtype=np.float64),
        scatter_end_ms=float(data["scatter_end_ms"]),
        head_device=None if head_device is None else int(head_device),
        head_compute_ms=float(data["head_compute_ms"]),
        method=str(data["method"]),
    )


def evaluation_to_dict(result: EvaluationResult) -> Dict:
    """Compact, JSON-serialisable summary of an evaluation result."""
    return {
        "method": result.method,
        "end_to_end_ms": result.end_to_end_ms,
        "ips": result.ips,
        "max_compute_ms": result.max_compute_ms,
        "max_transmission_ms": result.max_transmission_ms,
        "head_device": result.head_device,
        "head_compute_ms": result.head_compute_ms,
        "per_device_compute_ms": [float(v) for v in result.per_device_compute_ms],
        "per_device_send_ms": [float(v) for v in result.per_device_send_ms],
        "per_device_recv_ms": [float(v) for v in result.per_device_recv_ms],
    }


__all__ = [
    "PLAN_FORMAT_VERSION",
    "plan_to_dict",
    "plan_from_dict",
    "plan_batch_to_payload",
    "plan_batch_from_payload",
    "save_plan",
    "load_plan",
    "scenario_to_dict",
    "scenario_from_dict",
    "evaluation_to_dict",
    "evaluation_to_payload",
    "evaluation_from_payload",
]
