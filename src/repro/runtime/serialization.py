"""Serialisation of distribution plans and evaluation results.

A deployment workflow needs to move plans between machines: the controller
computes a strategy once, stores it, and the requester/providers load it at
service time (the paper's controller "informs the requester to send the
split-parts to the corresponding providers").  This module provides a stable
JSON representation for :class:`~repro.runtime.plan.DistributionPlan` plus a
compact dict form of evaluation results for logging experiment outcomes.

The model itself is not embedded — plans reference the model by name and are
re-validated against a freshly built :class:`~repro.nn.graph.ModelSpec` on
load, so a stale plan for a different architecture fails loudly instead of
silently mis-splitting.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.devices.specs import DeviceInstance, get_device_type
from repro.nn import model_zoo
from repro.nn.graph import ModelSpec
from repro.nn.splitting import SplitDecision
from repro.runtime.evaluator import EvaluationResult
from repro.runtime.plan import DistributionPlan

#: Format version written into every serialised plan.
PLAN_FORMAT_VERSION = 1


def plan_to_dict(plan: DistributionPlan) -> Dict:
    """Convert a plan to a JSON-serialisable dictionary."""
    return {
        "format_version": PLAN_FORMAT_VERSION,
        "method": plan.method,
        "model": plan.model.name,
        "boundaries": list(plan.boundaries),
        "head_device": plan.head_device,
        "devices": [
            {
                "device_id": d.device_id,
                "type": d.type_name,
                "bandwidth_mbps": d.bandwidth_mbps,
            }
            for d in plan.devices
        ],
        "decisions": [
            {"cuts": list(decision.cuts), "output_height": decision.output_height}
            for decision in plan.decisions
        ],
    }


def plan_from_dict(data: Dict, model: Optional[ModelSpec] = None) -> DistributionPlan:
    """Reconstruct a plan from :func:`plan_to_dict` output.

    ``model`` may be supplied explicitly (e.g. a custom architecture);
    otherwise the model is rebuilt from the zoo by name.  Validation inside
    :class:`DistributionPlan` re-checks boundaries and split heights against
    the model, so loading a plan against the wrong architecture raises.
    """
    version = data.get("format_version")
    if version != PLAN_FORMAT_VERSION:
        raise ValueError(
            f"unsupported plan format version {version!r}; expected {PLAN_FORMAT_VERSION}"
        )
    if model is None:
        model = model_zoo.get(data["model"])
    elif model.name != data["model"]:
        raise ValueError(
            f"plan was produced for model {data['model']!r}, got {model.name!r}"
        )
    devices = [
        DeviceInstance(
            device_id=entry["device_id"],
            dtype=get_device_type(entry["type"]),
            bandwidth_mbps=float(entry["bandwidth_mbps"]),
        )
        for entry in data["devices"]
    ]
    decisions = [
        SplitDecision(cuts=tuple(entry["cuts"]), output_height=int(entry["output_height"]))
        for entry in data["decisions"]
    ]
    return DistributionPlan(
        model=model,
        devices=devices,
        boundaries=[int(b) for b in data["boundaries"]],
        decisions=decisions,
        head_device=int(data["head_device"]),
        method=str(data["method"]),
    )


def save_plan(plan: DistributionPlan, path: Union[str, Path]) -> Path:
    """Write a plan to a JSON file; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(plan_to_dict(plan), indent=2, sort_keys=True))
    return path


def load_plan(path: Union[str, Path], model: Optional[ModelSpec] = None) -> DistributionPlan:
    """Load a plan previously written by :func:`save_plan`."""
    data = json.loads(Path(path).read_text())
    return plan_from_dict(data, model=model)


def evaluation_to_dict(result: EvaluationResult) -> Dict:
    """Compact, JSON-serialisable summary of an evaluation result."""
    return {
        "method": result.method,
        "end_to_end_ms": result.end_to_end_ms,
        "ips": result.ips,
        "max_compute_ms": result.max_compute_ms,
        "max_transmission_ms": result.max_transmission_ms,
        "head_device": result.head_device,
        "head_compute_ms": result.head_compute_ms,
        "per_device_compute_ms": [float(v) for v in result.per_device_compute_ms],
        "per_device_send_ms": [float(v) for v in result.per_device_send_ms],
        "per_device_recv_ms": [float(v) for v in result.per_device_recv_ms],
    }


__all__ = [
    "PLAN_FORMAT_VERSION",
    "plan_to_dict",
    "plan_from_dict",
    "save_plan",
    "load_plan",
    "evaluation_to_dict",
]
