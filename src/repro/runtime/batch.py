"""Batched plan evaluation: many inferences scheduled as one array program.

:class:`~repro.runtime.evaluator.PlanEvaluator` walks one plan at a time
through Python loops — fine for a single inference, but the planner stack
(LC-PSS re-voting, OSDS episodes, heuristic seeding, online candidate
scoring, figure regeneration) evaluates *thousands* of plans, and that loop
is the hottest path in the repository.  :class:`BatchPlanEvaluator` removes
it in two complementary ways:

1. **Vectorisation.**  All plans that share a model and a partition scheme
   are scheduled together: per layer-volume, one sweep over the canonical
   transfer order updates ``(batch,)``-shaped lane vectors, and per-part
   compute latencies are evaluated as ``(batch, devices)`` NumPy arrays, one
   fused expression per sub-layer, instead of per-plan Python loops.  The
   vectorised engine mirrors the scalar evaluator *operation for operation*
   (same float operands, same order, same ``max``/``+`` structure), so its
   results are bit-identical — asserted down to exact equality by the parity
   tests, which is what allows DDPG/LC-PSS/OSDS to route through this path
   without changing a single reported number.

2. **Memoization.**  Full evaluations are cached in an LRU keyed on
   ``(model, partition boundaries, split decisions, head placement,
   network state)``.  The network-state component is the tuple of
   instantaneous per-endpoint throughputs, so on a constant network the same
   plan is never evaluated twice regardless of ``t_seconds``, while dynamic
   traces naturally miss whenever conditions actually changed.  The batch
   engine additionally seeds the shared per-part
   :class:`~repro.runtime.oracles.MemoizedComputeOracle`, so the splitting
   MDP's step-by-step replay of a batch-evaluated plan (e.g. OSDS heuristic
   seed episodes) finds its compute latencies pre-paid.

Cache invalidation rules: entries are only reused when the *entire* key
matches — a changed bandwidth trace value, a different split decision, a
different head device or a structurally different model all produce new
keys.  Mutating a model or network in place after evaluation is not
supported (nothing in the repository does); build new objects instead.
Cached :class:`EvaluationResult` objects are shared between hits — treat
them as immutable.
"""

from __future__ import annotations

from dataclasses import replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.devices.specs import DeviceInstance
from repro.network.topology import NetworkModel
from repro.obs.profile import NULL_PROFILER
from repro.nn.graph import LayerVolume, ModelSpec
from repro.nn.layers import LayerSpec
from repro.runtime.evaluator import EvaluationResult, PlanEvaluator, VolumeTiming
from repro.runtime.oracles import (
    ComputeOracle,
    GroundTruthComputeOracle,
    MemoizedComputeOracle,
    ProfileComputeOracle,
    unwrap_oracle,
)
from repro.runtime.plan import DistributionPlan
from repro.utils.cache import LRUCache
from repro.utils.units import FP16_BYTES, MBPS


def plan_signature(plan: DistributionPlan) -> Tuple:
    """Structural identity of a plan: partition, split decisions, head.

    Together with a model token and the network-state signature this fully
    determines the evaluation result; the planner method name is excluded
    (it only labels the result and is patched on cache hits).
    """
    return (
        tuple(plan.boundaries),
        tuple(d.cuts for d in plan.decisions),
        plan.head_device,
    )


def network_state_signature(network: NetworkModel, t_seconds: float) -> Tuple[float, ...]:
    """Instantaneous per-endpoint throughputs — all the schedule depends on.

    The scalar evaluator samples every link's throughput at the single time
    ``t_seconds``; transmission-model constants are static per link.  Two
    moments with identical signatures therefore produce identical schedules,
    which is what makes the plan cache sound across time on constant (and
    piecewise-constant) traces.
    """
    thr = tuple(link.throughput_mbps(t_seconds) for link in network.provider_links)
    return thr + (network.requester_link.throughput_mbps(t_seconds),)


def network_state_signatures(network: NetworkModel, t_seconds: np.ndarray) -> np.ndarray:
    """Signature *matrix*: one :func:`network_state_signature` row per time.

    Returns a ``(times, links + 1)`` float64 array whose row ``i`` equals
    ``network_state_signature(network, t_seconds[i])`` element for element
    (traces vectorise their own sampling, see
    :meth:`~repro.network.bandwidth.BandwidthTrace.throughput_mbps_array`).
    The array serving engine verifies whole speculation windows against one
    assumed signature with a single vectorised comparison over this matrix
    instead of per-request Python link walks.
    """
    ts = np.asarray(t_seconds, dtype=np.float64)
    columns = [link.trace.throughput_mbps_array(ts) for link in network.provider_links]
    columns.append(network.requester_link.trace.throughput_mbps_array(ts))
    return np.column_stack(columns)


def _required_rows_vec(
    layer: LayerSpec, out_lo: np.ndarray, out_hi: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`repro.nn.splitting.required_input_rows` (exact ints)."""
    empty = out_hi <= out_lo
    lo = np.maximum(out_lo * layer.stride - layer.padding, 0)
    hi = np.minimum((out_hi - 1) * layer.stride - layer.padding + layer.kernel, layer.in_h)
    return np.where(empty, 0, lo), np.where(empty, 0, hi)


class BatchPlanEvaluator(PlanEvaluator):
    """Drop-in :class:`PlanEvaluator` with a vectorised, memoized batch path.

    ``evaluate`` / ``ips`` keep their signatures (so the splitting MDP, the
    streaming simulator and every baseline planner work unchanged) but route
    through :meth:`evaluate_plans`, gaining the LRU cache; callers with many
    candidate plans should pass them to :meth:`evaluate_plans` directly to
    also gain the array-program scheduling.

    Parameters beyond :class:`PlanEvaluator`'s:

    cache_size:
        Capacity of the full-evaluation LRU (default 4096 plans).
    """

    def __init__(
        self,
        devices: Sequence[DeviceInstance],
        network: NetworkModel,
        compute_oracle: Optional[ComputeOracle] = None,
        input_bytes_per_element: float = PlanEvaluator.DEFAULT_INPUT_BYTES_PER_ELEMENT,
        memoize_compute: bool = True,
        cache_size: int = 4096,
    ) -> None:
        super().__init__(
            devices,
            network,
            compute_oracle=compute_oracle,
            input_bytes_per_element=input_bytes_per_element,
            memoize_compute=memoize_compute,
        )
        self._plan_cache = LRUCache(cache_size)
        self.profiler = NULL_PROFILER
        # Model identity tokens: keyed by object id, with a strong reference
        # kept so ids cannot be recycled while the cache may still hold
        # entries derived from them.
        self._model_tokens: Dict[int, int] = {}
        self._model_refs: Dict[int, ModelSpec] = {}

        n = len(self.devices)
        base = unwrap_oracle(self.oracle)
        self._fast_compute = isinstance(base, GroundTruthComputeOracle)
        self._profile_compute = isinstance(base, ProfileComputeOracle)
        if self._profile_compute:
            # Providers of one type share a profile object; group the device
            # columns so each (layer, profile) lookup is one array call.
            by_profile: Dict[int, List[int]] = {}
            for j, profile in enumerate(base.profiles):
                by_profile.setdefault(id(profile), []).append(j)
            self._profile_groups = [
                (base.profiles[cols[0]], np.array(cols, dtype=np.intp))
                for cols in by_profile.values()
            ]
        oracle_devices = base.devices if self._fast_compute else self.devices
        self._tile = np.array([d.dtype.tile_rows for d in oracle_devices], dtype=np.int64)
        self._peak = np.array([d.dtype.peak_macs_per_s for d in oracle_devices])
        self._membw = np.array([d.dtype.mem_bandwidth_bytes_per_s for d in oracle_devices])
        self._launch = np.array([d.dtype.launch_overhead_ms for d in oracle_devices])
        # Transmission-model constants per endpoint (providers 0..n-1, then
        # the requester at index n — the lane/array layout used throughout).
        links = list(network.provider_links) + [network.requester_link]
        self._io_fixed = np.array([link.model.io_fixed_ms for link in links])
        self._io_bps = np.array([link.model.io_bytes_per_second for link in links])
        self._requester_index = n

    # ------------------------------------------------------------------ #
    @classmethod
    def from_evaluator(cls, evaluator: PlanEvaluator, cache_size: int = 4096):
        """Wrap an existing evaluator's devices/network/oracle configuration."""
        return cls(
            evaluator.devices,
            evaluator.network,
            compute_oracle=evaluator.oracle,
            input_bytes_per_element=evaluator.input_bytes_per_element,
            cache_size=cache_size,
        )

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters of the full-plan LRU cache."""
        return self._plan_cache.info()

    def clear_cache(self) -> None:
        """Drop all cached evaluations (plan-level and per-part)."""
        self._plan_cache.clear()
        if isinstance(self.oracle, MemoizedComputeOracle):
            self.oracle.clear()

    def _model_token(self, model: ModelSpec) -> int:
        key = id(model)
        token = self._model_tokens.get(key)
        if token is None:
            token = len(self._model_tokens)
            self._model_tokens[key] = token
            self._model_refs[key] = model
        return token

    # ------------------------------------------------------------------ #
    def evaluate(self, plan: DistributionPlan, t_seconds: float = 0.0) -> EvaluationResult:
        """Single-plan evaluation through the cached batch path."""
        return self.evaluate_plans([plan], t_seconds)[0]

    def evaluate_plans(
        self, plans: Sequence[DistributionPlan], t_seconds: float = 0.0
    ) -> List[EvaluationResult]:
        """Evaluate a batch of plans, vectorising across plans per group.

        Plans may mix models and partition schemes: the batch is grouped by
        (model, boundaries) and each group is scheduled as one array program.
        Results come back in input order.  Cached results are reused and new
        results are cached.
        """
        prof = self.profiler
        if not prof.enabled:
            return self._evaluate_plans_impl(plans, t_seconds)
        hits_before = self._plan_cache.hits
        start = perf_counter()
        try:
            return self._evaluate_plans_impl(plans, t_seconds)
        finally:
            prof.add("batch.evaluate_plans", perf_counter() - start)
            prof.count("batch.plans", len(plans))
            prof.count("batch.plan_cache_hits", self._plan_cache.hits - hits_before)

    def _evaluate_plans_impl(
        self, plans: Sequence[DistributionPlan], t_seconds: float = 0.0
    ) -> List[EvaluationResult]:
        n = len(self.devices)
        for plan in plans:
            if plan.num_devices != n:
                raise ValueError(
                    f"plan covers {plan.num_devices} devices, evaluator has {n}"
                )
        if not plans:
            return []
        net_sig = network_state_signature(self.network, t_seconds)
        results: List[Optional[EvaluationResult]] = [None] * len(plans)
        keys: List[Tuple] = []
        groups: Dict[Tuple, List[int]] = {}
        pending: Dict[Tuple, int] = {}
        # Results computed this call, kept locally so duplicates within the
        # batch resolve even if the LRU evicts early entries mid-call.
        computed: Dict[Tuple, EvaluationResult] = {}
        for i, plan in enumerate(plans):
            key = (self._model_token(plan.model), plan_signature(plan), net_sig)
            keys.append(key)
            cached = self._plan_cache.get(key)
            if cached is not None:
                results[i] = cached
            elif key in pending:
                # Duplicate within this batch: evaluate once, share the result.
                pass
            else:
                pending[key] = i
                group_key = (id(plan.model), tuple(plan.boundaries))
                groups.setdefault(group_key, []).append(i)
        for indices in groups.values():
            fresh = self._evaluate_group([plans[i] for i in indices], t_seconds)
            for i, result in zip(indices, fresh):
                self._plan_cache.put(keys[i], result)
                computed[keys[i]] = result
                results[i] = result
        out: List[EvaluationResult] = []
        for i, plan in enumerate(plans):
            result = results[i]
            if result is None:  # duplicate of an entry computed above
                result = computed[keys[i]]
            if result.method != plan.method:
                result = replace(result, method=plan.method)
            out.append(result)
        return out

    # ------------------------------------------------------------------ #
    # the vectorised engine
    # ------------------------------------------------------------------ #
    def _evaluate_group(
        self, plans: Sequence[DistributionPlan], t_seconds: float
    ) -> List[EvaluationResult]:
        """Schedule a group of plans sharing (model, boundaries) as arrays.

        The sweep (see :class:`BatchVolumeScheduler`) mirrors
        :meth:`PlanEvaluator.process_volume` / :meth:`PlanEvaluator.finalize`
        exactly: transfers are applied in the canonical (destination
        ascending, source ascending) order the scalar dict iteration
        produces, lane reservations use the same three-operand ``max``, and
        per-part latencies use the same float expression tree — so every
        element of every output array is the very float the scalar evaluator
        would produce.
        """
        if len(plans) == 1:
            # Array scheduling only pays off across plans; a singleton group
            # takes the scalar path (bit-identical by the parity guarantee)
            # and still populates the shared per-part compute memo.
            return [PlanEvaluator.evaluate(self, plans[0], t_seconds)]
        prof = self.profiler
        sweep_start = perf_counter() if prof.enabled else 0.0
        model = plans[0].model
        volumes = plans[0].volumes
        batch = len(plans)
        n = len(self.devices)
        scheduler = BatchVolumeScheduler(self, model, volumes, batch, t_seconds)
        for l in range(len(volumes)):
            cuts = np.array(
                [plan.decisions[l].cuts for plan in plans], dtype=np.int64
            ).reshape(batch, n - 1)
            scheduler.process_volume(cuts, plans=plans)
        heads = (
            np.array([plan.head_device for plan in plans], dtype=np.int64)
            if model.head_layers
            else None
        )
        out = scheduler.finalize(heads, [plan.method for plan in plans])
        if prof.enabled:
            prof.add("batch.group_sweep", perf_counter() - sweep_start)
            prof.count("batch.group_plans", len(plans))
        return out

    @property
    def supports_vectorized_stepping(self) -> bool:
        """Whether :class:`BatchVolumeScheduler` can step without plans.

        The ground-truth and profile compute paths evaluate per-part
        latencies directly from ``(batch, devices)`` row-count arrays; a
        custom oracle only exposes the per-part scalar API, which needs
        concrete plan assignments and therefore cannot serve the incremental
        (decisions-arrive-step-by-step) MDP path.
        """
        return self._fast_compute or self._profile_compute

    # ------------------------------------------------------------------ #
    def _part_durations(
        self,
        plans: Optional[Sequence[DistributionPlan]],
        volume_index: int,
        volume: LayerVolume,
        ranges: Sequence[Tuple[np.ndarray, np.ndarray]],
        nonempty: np.ndarray,
    ) -> np.ndarray:
        """Per-(plan, device) compute latency of one volume's split parts.

        ``plans`` may be ``None`` on the incremental MDP path (episode
        batches step before any plan object exists); only the custom-oracle
        fallback needs them — see :attr:`supports_vectorized_stepping`.
        """
        batch = nonempty.shape[0]
        n = len(self.devices)
        if self._fast_compute:
            total = np.zeros((batch, n))
            for layer, (lo, hi) in zip(volume.layers, ranges):
                req_rows = hi - lo
                rows = np.minimum(req_rows, layer.out_h)
                quantized = ((rows + self._tile - 1) // self._tile) * self._tile
                q_rows = np.minimum(quantized, np.maximum(layer.out_h, rows))
                macs_per_row = layer.macs / layer.out_h
                effective_macs = macs_per_row * q_rows
                in_hi = np.minimum(
                    (rows - 1) * layer.stride - layer.padding + layer.kernel, layer.in_h
                )
                input_bytes = in_hi * (layer.in_w * layer.in_c * FP16_BYTES)
                output_bytes = rows * (layer.out_w * layer.out_c * FP16_BYTES)
                touched_bytes = input_bytes + output_bytes + layer.weight_bytes
                compute_ms = effective_macs / self._peak * 1000.0
                memory_ms = touched_bytes / self._membw * 1000.0
                latency = self._launch + np.maximum(compute_ms, memory_ms)
                total = total + np.where(req_rows > 0, latency, 0.0)
        elif self._profile_compute:
            # Profiled-latency sweep: per (layer, shared profile) one array
            # lookup over every (plan, device) row count.  The profile batch
            # lookups are element-wise identical to the scalar ones and zero
            # where rows <= 0, and the accumulation visits layers in the same
            # order as ProfileComputeOracle.volume_latency_ms, so each total
            # is the very float the scalar oracle would return.
            total = np.zeros((batch, n))
            for layer, (lo, hi) in zip(volume.layers, ranges):
                rows = hi - lo
                for profile, cols in self._profile_groups:
                    sub = rows[:, cols]
                    if not (sub > 0).any():
                        # The scalar path never queries a profile for a layer
                        # none of its devices compute — a partial profile
                        # (layer absent) must not raise here either.
                        continue
                    total[:, cols] += profile.latency_ms_batch(layer.name, sub)
        else:
            if plans is None:
                raise RuntimeError(
                    "vectorised stepping requires a ground-truth or profile "
                    "compute oracle (see supports_vectorized_stepping)"
                )
            durations = np.zeros((batch, n))
            for b, plan in enumerate(plans):
                assignment = plan.assignment(volume_index)
                for j, part in enumerate(assignment.parts):
                    if not part.is_empty:
                        durations[b, j] = self.oracle.part_latency_ms(
                            j, assignment.volume, part
                        )
            return durations

        if isinstance(self.oracle, MemoizedComputeOracle):
            # Pre-pay the stepping path: the splitting MDP replaying any of
            # these plans volume-by-volume will find its per-part latencies
            # already cached (keys are structural, so the MDP's equal-valued
            # volume objects hit these entries).
            out_lo, out_hi = ranges[-1]
            items = {}
            bs, js = np.nonzero(nonempty)
            for b, j, lo, hi, value in zip(
                bs, js, out_lo[bs, js], out_hi[bs, js], total[bs, js]
            ):
                items[(int(j), (int(lo), int(hi)))] = value
            self.oracle.seed_parts(volume, items)
        return total


class BatchVolumeScheduler:
    """Incremental ``(batch, devices)`` array scheduling of one inference each.

    This is the vectorised counterpart of
    :class:`~repro.runtime.evaluator.ScheduleState` plus
    :meth:`~repro.runtime.evaluator.PlanEvaluator.process_volume` /
    :meth:`~repro.runtime.evaluator.PlanEvaluator.finalize`: it carries the
    send/recv/compute lane state of ``batch`` independent inferences and
    advances them all one layer-volume at a time.  Two consumers drive it:

    * :meth:`BatchPlanEvaluator._evaluate_group` feeds it the complete
      decision set of a plan group, one volume per call; and
    * the episode-batched splitting MDP
      (:class:`~repro.core.mdp.BatchSplitMDP`) feeds it one *step* of ``E``
      concurrent OSDS episodes at a time, reading back the accumulated
      latencies that form the DRL state of Eq. 7 between calls.

    Both uses execute the identical float-operation sequence as the scalar
    evaluator (same operands, same order, same ``max``/``+`` structure), so
    the results are bit-identical to scalar evaluation — the invariant the
    whole batch subsystem is built on.
    """

    def __init__(
        self,
        evaluator: BatchPlanEvaluator,
        model: ModelSpec,
        volumes: Sequence[LayerVolume],
        batch: int,
        t_seconds: float = 0.0,
    ) -> None:
        self.evaluator = evaluator
        self.model = model
        self.volumes = list(volumes)
        self.batch = int(batch)
        self.t_seconds = float(t_seconds)
        n = len(evaluator.devices)
        self.n = n
        self.req = evaluator._requester_index

        thr = np.array(network_state_signature(evaluator.network, t_seconds))
        if np.any(thr <= 0):
            raise ValueError("all link throughputs must be positive")
        # Achievable pairwise rate (bytes/s): min of the two endpoint links,
        # converted exactly as utils.units.bytes_per_second does.
        self.air_bps = np.minimum(thr[:, None], thr[None, :]) * MBPS / 8.0

        batch = self.batch
        self.send_free = np.zeros((batch, n + 1))
        self.recv_free = np.zeros((batch, n + 1))
        self.send_busy = np.zeros((batch, n + 1))
        self.recv_busy = np.zeros((batch, n + 1))
        self.comp_free = np.zeros((batch, n))
        self.comp_total = np.zeros((batch, n))
        self.data_ready = np.zeros((batch, n))
        self.prev_finish = np.zeros((batch, n))
        self.prev_out_lo: Optional[np.ndarray] = None
        self.prev_out_hi: Optional[np.ndarray] = None
        self.prev_nonempty: Optional[np.ndarray] = None
        self.scatter_end = np.zeros(batch)
        self.vol_records: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        self.volume_index = 0

    # ------------------------------------------------------------------ #
    @property
    def num_volumes(self) -> int:
        return len(self.volumes)

    @property
    def done(self) -> bool:
        return self.volume_index >= len(self.volumes)

    def _transfer(
        self,
        src: int,
        dst,
        nbytes: np.ndarray,
        earliest: np.ndarray,
        mask: np.ndarray,
    ) -> np.ndarray:
        """Masked lane-scheduled transfer; returns per-plan end times.

        ``dst`` is either a column index or a per-plan index array (the
        head-gather case).  Rows outside ``mask`` leave all lanes
        untouched and report ``earliest`` as their end time, exactly like
        the scalar ``_transfer`` skip path.
        """
        batch = self.batch
        send_free, recv_free = self.send_free, self.recv_free
        send_busy, recv_busy = self.send_busy, self.recv_busy
        nb = nbytes.astype(np.float64)
        duration = (
            self.evaluator._io_fixed[src] + nb / self.evaluator._io_bps[src] * 1000.0
        ) + nb / (
            self.air_bps[src, dst] if np.isscalar(dst) else self.air_bps[src][dst]
        ) * 1000.0
        if np.isscalar(dst):
            dst_free = recv_free[:, dst]
        else:
            dst_free = recv_free[np.arange(batch), dst]
        start = np.maximum(np.maximum(earliest, send_free[:, src]), dst_free)
        end = start + duration
        send_free[:, src] = np.where(mask, end, send_free[:, src])
        send_busy[:, src] = np.where(mask, send_busy[:, src] + duration, send_busy[:, src])
        new_dst_free = np.where(mask, end, dst_free)
        new_dst_busy = np.where(mask, duration, 0.0)
        if np.isscalar(dst):
            recv_free[:, dst] = new_dst_free
            recv_busy[:, dst] += new_dst_busy
        else:
            rows = np.arange(batch)
            recv_free[rows, dst] = new_dst_free
            recv_busy[rows, dst] += new_dst_busy
        return np.where(mask, end, earliest)

    # ------------------------------------------------------------------ #
    def process_volume(
        self,
        cuts: np.ndarray,
        plans: Optional[Sequence[DistributionPlan]] = None,
    ) -> np.ndarray:
        """Advance every inference by one layer-volume.

        ``cuts`` is the ``(batch, devices - 1)`` integer cut-point array of
        this volume's split decisions.  Returns the ``(batch, devices)``
        accumulated-latency array ``T^l`` (empty parts carry the previous
        volume's value, exactly like the scalar evaluator) — the quantity
        the splitting MDP observes.  ``plans`` is only consulted by the
        custom-oracle fallback of
        :meth:`BatchPlanEvaluator._part_durations`.
        """
        if self.done:
            raise RuntimeError("all volumes already processed; call finalize()")
        evaluator = self.evaluator
        batch, n = self.batch, self.n
        l = self.volume_index
        volume = self.volumes[l]
        data_ready = self.data_ready
        prev_out_lo, prev_out_hi = self.prev_out_lo, self.prev_out_hi
        prev_nonempty = self.prev_nonempty

        cuts = np.asarray(cuts, dtype=np.int64).reshape(batch, n - 1)
        height = volume.output_height
        edges = np.concatenate(
            [
                np.zeros((batch, 1), dtype=np.int64),
                cuts,
                np.full((batch, 1), height, dtype=np.int64),
            ],
            axis=1,
        )
        out_lo, out_hi = edges[:, :-1], edges[:, 1:]
        nonempty = out_hi > out_lo

        # Per-sub-layer output row ranges (the exact VSL arithmetic).
        layers = list(volume.layers)
        ranges: List[Tuple[np.ndarray, np.ndarray]] = [(out_lo, out_hi)] * len(layers)
        lo, hi = out_lo, out_hi
        for i in range(len(layers) - 1, 0, -1):
            lo, hi = _required_rows_vec(layers[i], lo, hi)
            ranges[i - 1] = (lo, hi)
        in_lo, in_hi = _required_rows_vec(layers[0], ranges[0][0], ranges[0][1])

        # ---- transfers, in the scalar evaluator's canonical order ---- #
        arrival = np.zeros((batch, n))
        recv_bytes = np.zeros((batch, n))
        if l == 0:
            in_elements = volume.first.in_w * volume.first.in_c
            scatter = np.rint(
                np.maximum(in_hi - in_lo, 0) * in_elements * evaluator.input_bytes_per_element
            ).astype(np.int64)
            for dst in range(n):
                mask = nonempty[:, dst] & (scatter[:, dst] > 0)
                if not mask.any():
                    continue
                end = self._transfer(self.req, dst, scatter[:, dst], np.zeros(batch), mask)
                arrival[:, dst] = np.where(
                    mask, np.maximum(arrival[:, dst], end), arrival[:, dst]
                )
                recv_bytes[:, dst] += np.where(mask, scatter[:, dst], 0)
        else:
            row_bytes = volume.first.in_w * volume.first.in_c * FP16_BYTES
            for dst in range(n):
                need_mask = nonempty[:, dst] & (in_hi[:, dst] > in_lo[:, dst])
                if not need_mask.any():
                    continue
                for src in range(n):
                    if src == dst:
                        continue
                    overlap = np.minimum(in_hi[:, dst], prev_out_hi[:, src]) - np.maximum(
                        in_lo[:, dst], prev_out_lo[:, src]
                    )
                    mask = need_mask & prev_nonempty[:, src] & (overlap > 0)
                    if not mask.any():
                        continue
                    nbytes = overlap * row_bytes
                    end = self._transfer(src, dst, nbytes, data_ready[:, src], mask)
                    arrival[:, dst] = np.where(
                        mask, np.maximum(arrival[:, dst], end), arrival[:, dst]
                    )
                    recv_bytes[:, dst] += np.where(mask, nbytes, 0)

        # Rows already held locally from the previous volume.
        if l == 0:
            local_ready = np.zeros((batch, n))
        else:
            have_overlap = (
                np.minimum(in_hi, prev_out_hi) > np.maximum(in_lo, prev_out_lo)
            ) & prev_nonempty
            local_ready = np.where(have_overlap, data_ready, 0.0)

        # ---- compute lanes -------------------------------------------- #
        durations = evaluator._part_durations(plans, l, volume, ranges, nonempty)
        ready = np.where(nonempty, np.maximum(arrival, local_ready), self.prev_finish)
        start = np.maximum(ready, self.comp_free)
        finish = np.where(nonempty, start + durations, self.prev_finish)
        self.comp_free = np.where(nonempty, finish, self.comp_free)
        active_durations = np.where(nonempty, durations, 0.0)
        self.comp_total = self.comp_total + active_durations

        self.data_ready = np.where(nonempty, finish, 0.0)
        self.prev_out_lo, self.prev_out_hi = out_lo, out_hi
        self.prev_nonempty = nonempty
        self.prev_finish = finish
        self.vol_records.append((ready, finish, active_durations, recv_bytes))
        if l == 0:
            self.scatter_end = ready.max(axis=1)
        self.volume_index += 1
        return finish

    # ------------------------------------------------------------------ #
    def finalize(
        self,
        head_devices: Optional[np.ndarray],
        methods: Sequence[str],
    ) -> List[EvaluationResult]:
        """Schedule gather / head / result return; assemble per-plan results.

        ``head_devices`` is the per-plan head-provider index array when the
        model has a dense head, ``None`` otherwise (each provider then
        returns its own rows to the requester).
        """
        if not self.done:
            raise RuntimeError(
                f"finalize() called after {self.volume_index} of {len(self.volumes)} volumes"
            )
        evaluator = self.evaluator
        batch, n, req = self.batch, self.n, self.req
        volumes = self.volumes
        data_ready = self.data_ready
        prev_nonempty = self.prev_nonempty
        send_free, recv_free = self.send_free, self.recv_free
        send_busy, recv_busy = self.send_busy, self.recv_busy
        comp_free, comp_total = self.comp_free, self.comp_total

        head_layers = self.model.head_layers
        last_lo, last_hi = self.prev_out_lo, self.prev_out_hi
        out_elements = volumes[-1].last.out_w * volumes[-1].last.out_c
        out_bytes_last = (last_hi - last_lo) * out_elements * FP16_BYTES
        rows_idx = np.arange(batch)
        if head_layers:
            head = np.asarray(head_devices, dtype=np.int64)
            head_lat = np.array(
                [evaluator.oracle.head_latency_ms(j, head_layers) for j in range(n)]
            )
            gather_ready = data_ready[rows_idx, head]
            for src in range(n):
                mask = prev_nonempty[:, src] & (head != src)
                if not mask.any():
                    continue
                end = self._transfer(src, head, out_bytes_last[:, src], data_ready[:, src], mask)
                gather_ready = np.where(mask, np.maximum(gather_ready, end), gather_ready)
            head_compute = head_lat[head]
            head_start = np.maximum(gather_ready, comp_free[rows_idx, head])
            head_end = head_start + head_compute
            comp_free[rows_idx, head] = head_end
            comp_total[rows_idx, head] += head_compute
            # The final result return always happens (result_bytes > 0).
            result_bytes = np.full(batch, head_layers[-1].output_bytes, dtype=np.int64)
            nb = result_bytes.astype(np.float64)
            duration = (
                evaluator._io_fixed[head] + nb / evaluator._io_bps[head] * 1000.0
            ) + nb / self.air_bps[head, req] * 1000.0
            start = np.maximum(
                np.maximum(head_end, send_free[rows_idx, head]), recv_free[:, req]
            )
            end_to_end = start + duration
            send_free[rows_idx, head] = end_to_end
            send_busy[rows_idx, head] += duration
            recv_free[:, req] = end_to_end
            recv_busy[:, req] += duration
            out_heads: List[Optional[int]] = [int(h) for h in head]
        else:
            head_compute = np.zeros(batch)
            end_to_end = np.zeros(batch)
            for src in range(n):
                mask = prev_nonempty[:, src] & (out_bytes_last[:, src] > 0)
                if not mask.any():
                    continue
                end = self._transfer(src, req, out_bytes_last[:, src], data_ready[:, src], mask)
                end_to_end = np.where(mask, np.maximum(end_to_end, end), end_to_end)
            out_heads = [None] * batch

        # ---- per-plan result assembly ------------------------------------- #
        results: List[EvaluationResult] = []
        for b in range(batch):
            timings = [
                VolumeTiming(
                    volume_index=l,
                    ready_ms=ready[b].copy(),
                    finish_ms=finish[b].copy(),
                    compute_ms=compute[b].copy(),
                    recv_bytes=recv[b].copy(),
                )
                for l, (ready, finish, compute, recv) in enumerate(self.vol_records)
            ]
            results.append(
                EvaluationResult(
                    end_to_end_ms=float(end_to_end[b]),
                    volume_timings=timings,
                    per_device_compute_ms=comp_total[b].copy(),
                    per_device_send_ms=send_busy[b, :n].copy(),
                    per_device_recv_ms=recv_busy[b, :n].copy(),
                    scatter_end_ms=float(self.scatter_end[b]),
                    head_device=out_heads[b],
                    head_compute_ms=float(head_compute[b]),
                    method=methods[b],
                )
            )
        return results


__all__ = [
    "BatchPlanEvaluator",
    "BatchVolumeScheduler",
    "network_state_signature",
    "plan_signature",
]
