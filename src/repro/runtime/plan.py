"""Distribution plans and the redistribution-volume arithmetic.

A :class:`DistributionPlan` is the complete output of a distribution method
(DistrEdge or any baseline): the horizontal partition of the model into
layer-volumes, a vertical split decision per volume, and the placement of the
trailing dense head.  The same plan object is consumed by the latency
evaluator, the streaming simulator, the cost models, and the numerical
split-correctness checks, which keeps every method comparable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.devices.specs import DeviceInstance
from repro.nn.graph import LayerVolume, ModelSpec, cached_partition
from repro.nn.splitting import SplitDecision, SplitPart, split_volume
from repro.utils.units import FP16_BYTES


@dataclass(frozen=True)
class VolumeAssignment:
    """A layer-volume together with its split into per-provider parts."""

    volume: LayerVolume
    decision: SplitDecision
    parts: Tuple[SplitPart, ...]

    @property
    def active_devices(self) -> List[int]:
        """Indices of providers that received a non-empty part."""
        return [p.device_index for p in self.parts if not p.is_empty]


def scatter_bytes(parts: Sequence[SplitPart]) -> int:
    """Bytes the requester must scatter to providers for the first volume.

    Every provider needs its part's exact input rows; rows needed by several
    providers (the halo overlap) are sent to each of them, as in the real
    system where the image is "split beforehand according to the distribution
    strategy".
    """
    return sum(p.input_bytes for p in parts if not p.is_empty)


def redistribution_bytes(
    prev_parts: Sequence[SplitPart],
    cur_parts: Sequence[SplitPart],
    row_bytes: int,
) -> Dict[Tuple[int, int], int]:
    """Per-(source, destination) bytes exchanged at a volume boundary.

    ``prev_parts`` are the parts of volume *l-1* (their ``out_rows`` describe
    which provider holds which rows of the tensor entering volume *l*);
    ``cur_parts`` are the parts of volume *l* (their ``in_rows`` describe
    which rows each provider needs).  ``row_bytes`` is the size of one row of
    that tensor.  Rows a provider already holds locally are never
    transferred; the returned dict maps ``(src_device, dst_device)`` to the
    transferred byte count and contains only non-zero, non-local entries.
    """
    transfers: Dict[Tuple[int, int], int] = {}
    for cur in cur_parts:
        if cur.is_empty:
            continue
        need_lo, need_hi = cur.in_rows
        if need_hi <= need_lo:
            continue
        for prev in prev_parts:
            if prev.is_empty or prev.device_index == cur.device_index:
                continue
            have_lo, have_hi = prev.out_rows
            lo = max(need_lo, have_lo)
            hi = min(need_hi, have_hi)
            if hi > lo:
                key = (prev.device_index, cur.device_index)
                transfers[key] = transfers.get(key, 0) + (hi - lo) * row_bytes
    return transfers


class DistributionPlan:
    """A complete CNN inference distribution strategy.

    Parameters
    ----------
    model:
        The CNN model being distributed.
    devices:
        The service providers, in the order referenced by split decisions.
    boundaries:
        Horizontal partition scheme: strictly increasing indices over the
        spatial layers, starting at 0 and ending at
        ``model.num_spatial_layers``.
    decisions:
        One :class:`~repro.nn.splitting.SplitDecision` per layer-volume, each
        with ``num_devices == len(devices)``.
    head_device:
        Provider computing the trailing dense layers; ``None`` (default)
        places it on the provider holding the largest share of the last
        volume, as the paper does.
    method:
        Name of the method that produced the plan (for reporting).
    """

    def __init__(
        self,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        boundaries: Sequence[int],
        decisions: Sequence[SplitDecision],
        head_device: Optional[int] = None,
        method: str = "unspecified",
    ) -> None:
        self.model = model
        self.devices = list(devices)
        self.boundaries = [int(b) for b in boundaries]
        self.decisions = list(decisions)
        self.method = method

        # Memoized: plans sharing (model, boundaries) — every OSDS episode,
        # every sharded worker's deserialised shard — share volume objects.
        self._volumes = cached_partition(model, self.boundaries)
        if len(self._volumes) != len(self.decisions):
            raise ValueError(
                f"partition has {len(self._volumes)} volumes but {len(self.decisions)} "
                "split decisions were provided"
            )
        for volume, decision in zip(self._volumes, self.decisions):
            if decision.num_devices != len(self.devices):
                raise ValueError(
                    f"decision for volume [{volume.start}, {volume.end}) covers "
                    f"{decision.num_devices} devices, cluster has {len(self.devices)}"
                )
            if decision.output_height != volume.output_height:
                raise ValueError(
                    f"decision output height {decision.output_height} does not match "
                    f"volume output height {volume.output_height}"
                )
        self._assignments = [
            VolumeAssignment(volume=v, decision=d, parts=tuple(split_volume(v, d)))
            for v, d in zip(self._volumes, self.decisions)
        ]
        if head_device is None:
            head_device = self.largest_share_device(-1)
        if not 0 <= head_device < len(self.devices):
            raise ValueError(f"head_device {head_device} out of range")
        self.head_device = head_device

    # ------------------------------------------------------------------ #
    @property
    def num_volumes(self) -> int:
        return len(self._assignments)

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def volumes(self) -> List[LayerVolume]:
        return list(self._volumes)

    @property
    def assignments(self) -> List[VolumeAssignment]:
        return list(self._assignments)

    def assignment(self, volume_index: int) -> VolumeAssignment:
        return self._assignments[volume_index]

    def same_strategy(self, other: "DistributionPlan") -> bool:
        """Whether ``other`` encodes the same strategy (content, not identity).

        Two plans are the same strategy when they distribute the same model
        with identical partition boundaries, identical per-volume cut points
        and the same head placement — the exact key the evaluation cache uses,
        so same-strategy plans are guaranteed the same latency.  The method
        label and the device *objects* are ignored (the adaptation path
        rebuilds plans; an equal-but-reconstructed plan is not a replan).
        """
        if self is other:
            return True
        same_model = other.model is self.model or (
            other.model.name == self.model.name
            and other.model.input_shape == self.model.input_shape
            and other.model.layers == self.model.layers
        )
        return (
            same_model
            and self.boundaries == other.boundaries
            and [d.cuts for d in self.decisions] == [d.cuts for d in other.decisions]
            and self.head_device == other.head_device
        )

    def largest_share_device(self, volume_index: int) -> int:
        """Provider with the most output rows of the given volume (default head)."""
        assignment = self._assignments[volume_index]
        rows = assignment.decision.rows_per_device()
        return int(max(range(len(rows)), key=lambda i: rows[i]))

    # ------------------------------------------------------------------ #
    def total_macs(self) -> int:
        """Total MACs executed across all providers (includes halo recomputation)."""
        total = sum(p.macs for a in self._assignments for p in a.parts)
        total += self.model.head_macs
        return int(total)

    def recomputation_overhead(self) -> float:
        """Fraction of extra backbone MACs relative to single-device execution."""
        backbone = self.model.backbone_macs
        parts_macs = sum(p.macs for a in self._assignments for p in a.parts)
        if backbone == 0:
            return 0.0
        return parts_macs / backbone - 1.0

    def total_transmission_bytes(self) -> int:
        """Total bytes moved between endpoints for one inference.

        Includes the requester's scatter of the first volume's inputs, every
        volume-boundary redistribution, the gather of the last volume's
        output onto the head device (or the requester when there is no dense
        head), and the final result return.
        """
        total = scatter_bytes(self._assignments[0].parts)
        for prev, cur in zip(self._assignments, self._assignments[1:]):
            row_bytes = cur.volume.first.in_w * cur.volume.first.in_c * FP16_BYTES
            total += sum(redistribution_bytes(prev.parts, cur.parts, row_bytes).values())
        last = self._assignments[-1]
        head_layers = self.model.head_layers
        gather_target = self.head_device if head_layers else None
        for part in last.parts:
            if part.is_empty:
                continue
            if gather_target is None or part.device_index != gather_target:
                total += part.output_bytes
        if head_layers:
            total += head_layers[-1].output_bytes
        return int(total)

    def describe(self) -> str:
        """Multi-line human-readable plan summary."""
        lines = [
            f"DistributionPlan(method={self.method!r}, model={self.model.name!r}, "
            f"volumes={self.num_volumes}, devices={self.num_devices})"
        ]
        for idx, a in enumerate(self._assignments):
            rows = a.decision.rows_per_device()
            lines.append(
                f"  volume {idx}: layers [{a.volume.start}, {a.volume.end}) "
                f"H={a.volume.output_height} rows={rows}"
            )
        lines.append(f"  head device: {self.devices[self.head_device].device_id}")
        return "\n".join(lines)

    # ------------------------------------------------------------------ #
    @classmethod
    def single_device(
        cls,
        model: ModelSpec,
        devices: Sequence[DeviceInstance],
        device_index: int,
        method: str = "offload",
    ) -> "DistributionPlan":
        """Plan that offloads the whole model to a single provider."""
        boundaries = model.single_volume_partition()
        volume = model.partition(boundaries)[0]
        decision = SplitDecision.single_device(device_index, len(devices), volume.output_height)
        return cls(
            model=model,
            devices=devices,
            boundaries=boundaries,
            decisions=[decision],
            head_device=device_index,
            method=method,
        )


__all__ = [
    "VolumeAssignment",
    "DistributionPlan",
    "redistribution_bytes",
    "scatter_bytes",
]
