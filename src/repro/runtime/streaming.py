"""Image-stream simulation: the paper's IPS measurement protocol.

Section V-A: *"we stream 5000 images from the service requester to the
service providers.  An image will not be sent until the result of its
previous image is received by the service requester.  We measure the overall
latency in processing the 5000 images and compute averaged FPS."*

:class:`StreamingSimulator` reproduces that protocol: images are processed
strictly one at a time, each image's end-to-end latency is evaluated under
the network conditions at its start time (bandwidth traces are functions of
wall-clock time), and the averaged images-per-second is reported.  An
optional *adaptation hook* lets a controller observe recent latencies and
swap in a new plan between images — the mechanism behind the dynamic-network
experiment (Fig. 13), where CoEdge/AOFL/DistrEdge re-plan online.

Since the serving subsystem landed, this protocol is the **single-tenant
closed-loop special case** of :class:`~repro.serving.simulator.ServingSimulator`:
``run`` builds one closed-loop :class:`~repro.serving.tenants.TenantSpec`
(think time = ``extra_gap_ms``, request budget = ``num_images``) and executes
it through the shared tenant runtime, so streaming and multi-tenant serving
cannot drift apart behaviourally.

Replan accounting compares plan *content*, not object identity: a hook that
returns an equal-but-reconstructed plan (same boundaries, cuts and head —
see :meth:`~repro.runtime.plan.DistributionPlan.same_strategy`) is treated
as "keep the current plan" and does not pollute ``replan_times_s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.serving.simulator import ServingSimulator
from repro.serving.tenants import AdaptationHook, TenantSpec


@dataclass
class StreamingResult:
    """Outcome of streaming a batch of images through a plan."""

    per_image_latency_ms: np.ndarray
    image_start_s: np.ndarray
    total_time_s: float
    method: str = "unspecified"
    replan_times_s: List[float] = field(default_factory=list)

    @property
    def num_images(self) -> int:
        return int(self.per_image_latency_ms.size)

    @property
    def ips(self) -> float:
        """Averaged images per second over the whole stream."""
        if self.total_time_s <= 0:
            return float("inf")
        return self.num_images / self.total_time_s

    @property
    def mean_latency_ms(self) -> float:
        return float(self.per_image_latency_ms.mean()) if self.num_images else 0.0

    @property
    def p95_latency_ms(self) -> float:
        return float(np.percentile(self.per_image_latency_ms, 95)) if self.num_images else 0.0

    def latency_series(self) -> np.ndarray:
        """``(N, 2)`` array of (start time s, latency ms) rows, for Fig. 13-style plots."""
        return np.column_stack([self.image_start_s, self.per_image_latency_ms])


class StreamingSimulator:
    """Streams images through a distribution plan, one at a time.

    Parameters
    ----------
    evaluator:
        The plan evaluator bound to the cluster and network under test.
    extra_gap_ms:
        Idle time between receiving a result and sending the next image
        (camera frame interval / application think time); 0 reproduces the
        paper's back-to-back streaming.
    """

    def __init__(self, evaluator: PlanEvaluator, extra_gap_ms: float = 0.0) -> None:
        if extra_gap_ms < 0:
            raise ValueError(f"extra_gap_ms must be >= 0, got {extra_gap_ms}")
        self.evaluator = evaluator
        self.extra_gap_ms = float(extra_gap_ms)

    def run(
        self,
        plan: DistributionPlan,
        num_images: int = 5000,
        start_time_s: float = 0.0,
        adaptation_hook: Optional[AdaptationHook] = None,
        max_duration_s: Optional[float] = None,
    ) -> StreamingResult:
        """Stream ``num_images`` images and return the latency/IPS summary.

        ``max_duration_s`` optionally truncates the stream once the simulated
        wall clock exceeds the limit (useful for fixed-duration dynamic-
        network experiments, e.g. "one hour of service").
        """
        if num_images < 1:
            raise ValueError(f"num_images must be >= 1, got {num_images}")
        tenant = TenantSpec(
            name="stream",
            plan=plan,
            traffic=None,  # closed loop: the paper's one-image-in-flight rule
            max_requests=num_images,
            gap_ms=self.extra_gap_ms,
            max_duration_s=max_duration_s,
            adaptation_hook=adaptation_hook,
        )
        # The reference loop evaluates through ``self.evaluator`` exactly as
        # the historical per-image loop did (one scalar call per image); a
        # single closed-loop tenant offers no cross-request batching anyway,
        # and this keeps the simulator compatible with any PlanEvaluator.
        report = ServingSimulator(self.evaluator).run(
            [tenant], start_s=start_time_s, mode="reference"
        )
        outcome = report.tenants[0]
        return StreamingResult(
            per_image_latency_ms=outcome.latency_ms,
            image_start_s=outcome.start_s,
            total_time_s=outcome.busy_until_s - start_time_s,
            method=outcome.final_method,
            replan_times_s=list(outcome.replan_times_s),
        )

    def run_duration(
        self,
        plan: DistributionPlan,
        duration_s: float,
        start_time_s: float = 0.0,
        adaptation_hook: Optional[AdaptationHook] = None,
        max_images: int = 1_000_000,
    ) -> StreamingResult:
        """Stream for a fixed simulated duration rather than an image count."""
        if duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {duration_s}")
        return self.run(
            plan,
            num_images=max_images,
            start_time_s=start_time_s,
            adaptation_hook=adaptation_hook,
            max_duration_s=duration_s,
        )


__all__ = ["StreamingSimulator", "StreamingResult", "AdaptationHook"]
