"""Image-stream simulation: the paper's IPS measurement protocol.

Section V-A: *"we stream 5000 images from the service requester to the
service providers.  An image will not be sent until the result of its
previous image is received by the service requester.  We measure the overall
latency in processing the 5000 images and compute averaged FPS."*

:class:`StreamingSimulator` reproduces that protocol: images are processed
strictly one at a time, each image's end-to-end latency is evaluated under
the network conditions at its start time (bandwidth traces are functions of
wall-clock time), and the averaged images-per-second is reported.  An
optional *adaptation hook* lets a controller observe recent latencies and
swap in a new plan between images — the mechanism behind the dynamic-network
experiment (Fig. 13), where CoEdge/AOFL/DistrEdge re-plan online.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.plan import DistributionPlan

#: Adaptation hook signature: called before each image with
#: ``(time_seconds, image_index, current_plan, latency_history_ms)`` and may
#: return a replacement plan (or ``None`` to keep the current one).
AdaptationHook = Callable[[float, int, DistributionPlan, List[float]], Optional[DistributionPlan]]


@dataclass
class StreamingResult:
    """Outcome of streaming a batch of images through a plan."""

    per_image_latency_ms: np.ndarray
    image_start_s: np.ndarray
    total_time_s: float
    method: str = "unspecified"
    replan_times_s: List[float] = field(default_factory=list)

    @property
    def num_images(self) -> int:
        return int(self.per_image_latency_ms.size)

    @property
    def ips(self) -> float:
        """Averaged images per second over the whole stream."""
        if self.total_time_s <= 0:
            return float("inf")
        return self.num_images / self.total_time_s

    @property
    def mean_latency_ms(self) -> float:
        return float(self.per_image_latency_ms.mean()) if self.num_images else 0.0

    @property
    def p95_latency_ms(self) -> float:
        return float(np.percentile(self.per_image_latency_ms, 95)) if self.num_images else 0.0

    def latency_series(self) -> np.ndarray:
        """``(N, 2)`` array of (start time s, latency ms) rows, for Fig. 13-style plots."""
        return np.column_stack([self.image_start_s, self.per_image_latency_ms])


class StreamingSimulator:
    """Streams images through a distribution plan, one at a time.

    Parameters
    ----------
    evaluator:
        The plan evaluator bound to the cluster and network under test.
    extra_gap_ms:
        Idle time between receiving a result and sending the next image
        (camera frame interval / application think time); 0 reproduces the
        paper's back-to-back streaming.
    """

    def __init__(self, evaluator: PlanEvaluator, extra_gap_ms: float = 0.0) -> None:
        if extra_gap_ms < 0:
            raise ValueError(f"extra_gap_ms must be >= 0, got {extra_gap_ms}")
        self.evaluator = evaluator
        self.extra_gap_ms = float(extra_gap_ms)

    def run(
        self,
        plan: DistributionPlan,
        num_images: int = 5000,
        start_time_s: float = 0.0,
        adaptation_hook: Optional[AdaptationHook] = None,
        max_duration_s: Optional[float] = None,
    ) -> StreamingResult:
        """Stream ``num_images`` images and return the latency/IPS summary.

        ``max_duration_s`` optionally truncates the stream once the simulated
        wall clock exceeds the limit (useful for fixed-duration dynamic-
        network experiments, e.g. "one hour of service").
        """
        if num_images < 1:
            raise ValueError(f"num_images must be >= 1, got {num_images}")
        latencies: List[float] = []
        starts: List[float] = []
        replans: List[float] = []
        current_plan = plan
        t = float(start_time_s)
        for index in range(num_images):
            if adaptation_hook is not None:
                replacement = adaptation_hook(t, index, current_plan, latencies)
                if replacement is not None and replacement is not current_plan:
                    current_plan = replacement
                    replans.append(t)
            result = self.evaluator.evaluate(current_plan, t_seconds=t)
            latencies.append(result.end_to_end_ms)
            starts.append(t)
            t += (result.end_to_end_ms + self.extra_gap_ms) / 1000.0
            if max_duration_s is not None and (t - start_time_s) >= max_duration_s:
                break
        return StreamingResult(
            per_image_latency_ms=np.asarray(latencies),
            image_start_s=np.asarray(starts),
            total_time_s=t - start_time_s,
            method=current_plan.method,
            replan_times_s=replans,
        )

    def run_duration(
        self,
        plan: DistributionPlan,
        duration_s: float,
        start_time_s: float = 0.0,
        adaptation_hook: Optional[AdaptationHook] = None,
        max_images: int = 1_000_000,
    ) -> StreamingResult:
        """Stream for a fixed simulated duration rather than an image count."""
        if duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {duration_s}")
        return self.run(
            plan,
            num_images=max_images,
            start_time_s=start_time_s,
            adaptation_hook=adaptation_hook,
            max_duration_s=duration_s,
        )


__all__ = ["StreamingSimulator", "StreamingResult", "AdaptationHook"]
