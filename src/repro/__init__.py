"""DistrEdge reproduction package.

Reproduction of *DistrEdge: Speeding up Convolutional Neural Network
Inference on Distributed Edge Devices* (IPDPS 2022).  Subpackages:

``repro.nn``
    NumPy CNN substrate: layer configurations, operators, the model zoo and
    the Vertical-Splitting Law used to cut layer-volumes by height.
``repro.devices``
    Edge-device models (Pi3 / Nano / TX2 / Xavier) with nonlinear compute
    latency, plus the latency profiler and profile representations.
``repro.network``
    WiFi bandwidth traces and the transmission-latency model (air time plus
    I/O read/write overheads).
``repro.runtime``
    Distribution plans, the per-device lane scheduler, the single-image
    latency evaluator and the image-stream (IPS) simulator.
``repro.core``
    The DistrEdge algorithms: LC-PSS partitioning, the splitting MDP, a
    NumPy DDPG agent, OSDS, the planner facade and online adaptation.
``repro.baselines``
    CoEdge, MoDNN, MeDNN, DeepThings, DeeperThings, AOFL and Offload.
``repro.serving``
    Multi-tenant open-loop serving: arrival processes behind the
    ``traffic:`` grammar, tenants with SLOs and admission control, and the
    epoch-batched serving event loop.
``repro.experiments``
    Scenario catalogue (Tables I-III) and regeneration of every evaluation
    figure (Figs. 4-15).

Quickstart
----------
>>> from repro import model_zoo, make_cluster, NetworkModel, PlanEvaluator, DistrEdge
>>> model = model_zoo.get("vgg16")
>>> devices = make_cluster([("xavier", 300), ("nano", 300)])
>>> network = NetworkModel.constant_from_devices(devices)
>>> plan = DistrEdge().plan(model, devices, network)      # doctest: +SKIP
>>> PlanEvaluator(devices, network).ips(plan)             # doctest: +SKIP
"""

from repro.version import __version__

from repro.nn import (
    ConvSpec,
    DenseSpec,
    ModelBuilder,
    ModelSpec,
    PoolSpec,
    SplitDecision,
    model_zoo,
)
from repro.devices import (
    DEVICE_CATALOG,
    DeviceInstance,
    DeviceType,
    LatencyProfiler,
    make_cluster,
)
from repro.network import BandwidthTrace, Link, NetworkModel
from repro.runtime import (
    BatchPlanEvaluator,
    DistributionPlan,
    PlanEvaluator,
    StreamingSimulator,
)
from repro.core import DistrEdge, DistrEdgeConfig, LCPSS, OSDS, OSDSConfig
from repro.baselines import BASELINE_REGISTRY
from repro.serving import SLO, ServingReport, ServingSimulator, TenantSpec
from repro.experiments import ExperimentHarness, HarnessConfig, ScenarioCatalog

__all__ = [
    "__version__",
    # nn
    "ModelSpec",
    "ModelBuilder",
    "ConvSpec",
    "PoolSpec",
    "DenseSpec",
    "SplitDecision",
    "model_zoo",
    # devices
    "DeviceType",
    "DeviceInstance",
    "DEVICE_CATALOG",
    "make_cluster",
    "LatencyProfiler",
    # network
    "BandwidthTrace",
    "Link",
    "NetworkModel",
    # runtime
    "DistributionPlan",
    "PlanEvaluator",
    "BatchPlanEvaluator",
    "StreamingSimulator",
    # core
    "DistrEdge",
    "DistrEdgeConfig",
    "LCPSS",
    "OSDS",
    "OSDSConfig",
    # serving
    "ServingSimulator",
    "ServingReport",
    "TenantSpec",
    "SLO",
    # baselines / experiments
    "BASELINE_REGISTRY",
    "ExperimentHarness",
    "HarnessConfig",
    "ScenarioCatalog",
]
