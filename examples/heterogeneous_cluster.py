#!/usr/bin/env python
"""Compare all eight distribution methods on a heterogeneous cluster.

Reproduces a slice of the paper's Fig. 7: the heterogeneous device group DB
(Xavier x2 + Nano x2) evaluated at both 50 Mbps and 300 Mbps WiFi, with all
seven baselines plus DistrEdge.  The expected shape (not the absolute
numbers): layer-by-layer methods (CoEdge/MoDNN/MeDNN) suffer at low
bandwidth, equal-split methods (DeepThings/DeeperThings) suffer from the slow
Nanos, AOFL's linear ratios misallocate work, and DistrEdge matches or beats
the best of them in every column.

Run:  python examples/heterogeneous_cluster.py  [--episodes N]
"""

from __future__ import annotations

import argparse

from repro.experiments import ExperimentHarness, HarnessConfig, ScenarioCatalog
from repro.experiments.harness import ALL_METHODS
from repro.experiments.reporting import format_ips_table, speedup_summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=150)
    parser.add_argument("--group", default="DB", choices=["DA", "DB", "DC"])
    parser.add_argument("--model", default="vgg16")
    args = parser.parse_args()

    harness = ExperimentHarness(
        HarnessConfig(osds_episodes=args.episodes, num_random_splits=20, seed=0)
    )
    results = {}
    for mbps in (50.0, 300.0):
        scenario = ScenarioCatalog.table1_groups(mbps)[args.group].with_bandwidth(
            mbps, suffix=f"{mbps:g}"
        )
        comparison = harness.compare(scenario, ALL_METHODS, args.model)
        results[scenario.name] = harness.ips_table(comparison)

    print(format_ips_table(results, methods=list(ALL_METHODS),
                           title=f"IPS on group {args.group} ({args.model})"))
    print("\nDistrEdge speedup over the best baseline per scenario:")
    for name, speedup in speedup_summary(results).items():
        print(f"  {name}: {speedup:.2f}x")


if __name__ == "__main__":
    main()
