#!/usr/bin/env python
"""Quickstart: distribute VGG-16 inference over a small heterogeneous cluster.

This example walks the full DistrEdge pipeline on a simulated testbed of two
Jetson Xaviers and two Jetson Nanos connected over 300 Mbps WiFi:

1. build the model and the cluster,
2. run LC-PSS (Algorithm 1) to partition the model into layer-volumes,
3. run OSDS (Algorithm 2, DDPG) to split every volume across the providers,
4. evaluate the resulting plan and compare it against single-device offload.

Run:  python examples/quickstart.py  [--episodes N]
"""

from __future__ import annotations

import argparse
import time

from repro import (
    DistrEdge,
    DistrEdgeConfig,
    DistributionPlan,
    NetworkModel,
    PlanEvaluator,
    make_cluster,
    model_zoo,
)
from repro.core import OSDSConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--episodes", type=int, default=200, help="OSDS training episodes (paper: 4000)"
    )
    parser.add_argument("--model", default="vgg16", choices=model_zoo.list_models())
    parser.add_argument("--bandwidth", type=float, default=300.0, help="WiFi Mbps per device")
    args = parser.parse_args()

    model = model_zoo.get(args.model)
    print(f"Model: {model.name} — {model.num_spatial_layers} spatial layers, "
          f"{model.backbone_macs / 1e9:.1f} GMACs backbone")

    devices = make_cluster(
        [("xavier", args.bandwidth), ("xavier", args.bandwidth),
         ("nano", args.bandwidth), ("nano", args.bandwidth)]
    )
    network = NetworkModel.constant_from_devices(devices)
    evaluator = PlanEvaluator(devices, network)
    print("Cluster:", ", ".join(str(d) for d in devices))

    # Baseline: offload everything to the fastest device.
    offload = DistributionPlan.single_device(model, devices, 0, method="offload")
    offload_eval = evaluator.evaluate(offload)
    print(f"\nOffload to {devices[0].device_id}: "
          f"{offload_eval.end_to_end_ms:.1f} ms/image ({offload_eval.ips:.1f} IPS)")

    # DistrEdge: LC-PSS + OSDS.
    config = DistrEdgeConfig(
        num_random_splits=30,
        osds=OSDSConfig(max_episodes=args.episodes, seed=0),
        seed=0,
    )
    planner = DistrEdge(config)
    start = time.time()
    result = planner.plan_detailed(model, devices, network)
    elapsed = time.time() - start

    print(f"\nDistrEdge planning took {elapsed:.1f}s "
          f"({result.osds.episodes_run} OSDS episodes)")
    print(f"LC-PSS partition boundaries (alpha={config.alpha}): {result.lcpss.boundaries}")
    print(result.plan.describe())

    final = evaluator.evaluate(result.plan)
    print(f"\nDistrEdge: {final.end_to_end_ms:.1f} ms/image ({final.ips:.1f} IPS)")
    print(f"Speedup over offload: {offload_eval.end_to_end_ms / final.end_to_end_ms:.2f}x")


if __name__ == "__main__":
    main()
