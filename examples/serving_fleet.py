#!/usr/bin/env python
"""Serving fleet: multi-tenant contended serving with predictive admission.

This example layers the serving stack on top of the paper's evaluation
engine.  Three tenants share a two-Nano fleet over 70 Mbps links:

1. ``tight`` — saturating Poisson traffic against a 20 ms deadline,
2. ``loose`` — moderate traffic against a 40 ms deadline,
3. ``batch`` — best-effort background load with no SLO.

The run is repeated twice: once with open admission (every arrival is
queued and many miss their deadline under contention) and once with the
predictive control plane (``ClusterPolicy(admission="predictive")``),
which predicts each request's completion at release time from the exact
contended schedule and denies the ones that cannot make their deadline —
so admitted requests never miss.  Both runs go through
:func:`repro.serving.run_with_parity`, which asserts the batched serving
loop is bit-identical to the per-request reference loop.

Run:  python examples/serving_fleet.py  [--duration SECONDS]
"""

from __future__ import annotations

import argparse

from repro import NetworkModel, PlanEvaluator, make_cluster, model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.plan import DistributionPlan
from repro.serving import (
    SLO,
    ClusterPolicy,
    PoissonArrivals,
    TenantSpec,
    run_with_parity,
)
from repro.experiments.reporting import format_fleet_table, format_serving_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--duration", type=float, default=5.0, help="simulated seconds of traffic"
    )
    parser.add_argument("--model", default="small_vgg", choices=model_zoo.list_models())
    args = parser.parse_args()

    model = model_zoo.get(args.model)
    devices = make_cluster([("nano", 70), ("nano", 70)])
    network = NetworkModel.constant_from_devices(devices)
    print("Fleet:", ", ".join(str(d) for d in devices))

    tenants = [
        TenantSpec(
            "tight",
            DistributionPlan.single_device(model, devices, 0),
            traffic=PoissonArrivals(200.0, seed=11),
            slo=SLO(deadline_ms=20.0),
            weight=2.0,
        ),
        TenantSpec(
            "loose",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(100.0, seed=12),
            slo=SLO(deadline_ms=40.0),
        ),
        TenantSpec(
            "batch",
            DistributionPlan.single_device(model, devices, 1),
            traffic=PoissonArrivals(50.0, seed=13),
        ),
    ]

    for admission in ("none", "predictive"):
        policy = ClusterPolicy(
            discipline="deadline",
            admission=admission,
            on_predicted_miss="reject",
        )
        report = run_with_parity(
            BatchPlanEvaluator(devices, network),
            PlanEvaluator(devices, network),
            tenants,
            duration_s=args.duration,
            policy=policy,
        )
        label = "open admission" if admission == "none" else "predictive admission"
        print()
        print(format_serving_table(report, title=f"{label} (parity: bit-identical)"))
        print(format_fleet_table(report, title=f"{label} — fleet"))
        if admission == "predictive":
            print(
                f"denied at admission: {report.total_denied} "
                f"(admitted miss rate: {report.deadline_miss_rate:.1%})"
            )


if __name__ == "__main__":
    main()
