#!/usr/bin/env python
"""Survey the model zoo: split correctness and distribution across models.

Part 1 verifies, numerically, that vertically splitting a layer-volume and
merging the per-device outputs reproduces whole-model execution exactly —
the property that lets DistrEdge distribute *unmodified* CNNs with no
accuracy loss.

Part 2 plans three of the paper's models (per Figs. 10-11) on the
heterogeneous-bandwidth group NA with Nano providers and reports IPS for
DistrEdge, AOFL and Offload.

Run:  python examples/model_zoo_survey.py
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import model_zoo
from repro.experiments import ExperimentHarness, HarnessConfig, ScenarioCatalog
from repro.experiments.scenarios import Scenario
from repro.nn.execution import ModelExecutor, SplitExecutor
from repro.nn.splitting import SplitDecision


def verify_split_correctness() -> None:
    """Exact equality of split execution and whole execution on a small CNN."""
    model = model_zoo.small_vgg(64)
    executor = ModelExecutor(model, seed=7)
    splitter = SplitExecutor(executor)
    volume = model.volume(0, 6)
    x = executor.random_input()
    whole = executor.run_volume(volume, x)
    decision = SplitDecision.from_fractions([0.45, 0.3, 0.15, 0.1], volume.output_height)
    merged, parts = splitter.run_split(volume, decision, x)
    max_diff = float(np.abs(whole - merged).max())
    print("Part 1 — split-and-merge correctness on small_vgg")
    print(f"  parts: {[p.out_rows for p in parts]}")
    print(f"  max |whole - merged| = {max_diff:.2e}  (lossless up to float32 rounding)")


def survey_models(models, episodes: int) -> None:
    harness = ExperimentHarness(
        HarnessConfig(osds_episodes=episodes, num_random_splits=15, seed=0)
    )
    base = ScenarioCatalog.table2_groups("nano")["NA"]
    scenario = Scenario("NA-nano", base.device_specs, base.description)
    methods = ("aofl", "offload", "distredge")
    print("\nPart 2 — IPS on group NA (Nano providers)")
    print(f"{'model':14s} " + " ".join(f"{m:>10s}" for m in methods))
    for name in models:
        row = harness.compare(scenario, methods, name)
        print(f"{name:14s} " + " ".join(f"{row[m].ips:10.1f}" for m in methods))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=100)
    parser.add_argument(
        "--models", nargs="+", default=["resnet50", "yolov2", "openpose"],
        choices=model_zoo.list_models(),
    )
    args = parser.parse_args()
    verify_split_correctness()
    survey_models(args.models, args.episodes)


if __name__ == "__main__":
    main()
