#!/usr/bin/env python
"""Online adaptation under a highly dynamic network (paper Section V-F).

Four Jetson Nanos serve VGG-16 while every WiFi link fluctuates between
roughly 40 and 100 Mbps (the traces of Fig. 12).  Three controllers stream
images over the same hour of network conditions:

* CoEdge re-plans its layer-by-layer split before every image,
* AOFL re-plans its fused-layer strategy when throughput drifts, paying a
  long brute-force search delay,
* DistrEdge keeps its trained actor online for cheap split-decision updates
  and only re-runs LC-PSS (plus a short fine-tune) on large drifts.

The per-image latency summary mirrors Fig. 13: CoEdge highest, DistrEdge a
fraction of AOFL.

Run:  python examples/dynamic_network.py  [--duration 600]
"""

from __future__ import annotations

import argparse


from repro.experiments import ExperimentHarness, HarnessConfig
from repro.experiments.figures import figure13


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=300.0,
                        help="simulated service duration in seconds")
    parser.add_argument("--episodes", type=int, default=100)
    args = parser.parse_args()

    harness = ExperimentHarness(
        HarnessConfig(osds_episodes=args.episodes, num_random_splits=15, seed=0)
    )
    results = figure13(harness, duration_s=args.duration, extra_gap_ms=1000.0)

    print(f"{'method':12s} {'mean ms':>9s} {'p95 ms':>9s} {'images':>7s} {'replans':>8s}")
    for method, summary in results.items():
        print(
            f"{method:12s} {summary['mean_latency_ms']:9.1f} "
            f"{summary['p95_latency_ms']:9.1f} {summary['num_images']:7d} "
            f"{summary['num_replans']:8d}"
        )
    ratio = results["distredge"]["mean_latency_ms"] / results["aofl"]["mean_latency_ms"]
    print(f"\nDistrEdge mean latency is {100 * ratio:.0f}% of AOFL's "
          f"(paper reports 40-65%).")


if __name__ == "__main__":
    main()
