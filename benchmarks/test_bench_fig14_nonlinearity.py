"""Fig. 14: computing latency versus output size of a ten-layer layer-volume.

The relationship is strongly nonlinear (tile staircase + launch overheads +
halo recomputation), which is the premise behind replacing linear split
ratios with a learned policy.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments import figures


def test_fig14_latency_nonlinearity(benchmark):
    def run():
        return {
            device: figures.figure14(device_type=device, volume_range=(0, 10))
            for device in ("nano", "tx2", "xavier")
        }

    data = run_once(benchmark, run)
    print("\n=== Fig. 14: latency vs output rows of a 10-layer volume (VGG-16) ===")
    for device, series in data.items():
        rows, lat = series["output_rows"], series["latency_ms"]
        picks = [0, len(rows) // 4, len(rows) // 2, -1]
        summary = ", ".join(f"{rows[i]:3d} rows -> {lat[i]:7.1f} ms" for i in picks)
        print(f"  {device:7s} {summary}")

    for series in data.values():
        rows, lat = series["output_rows"], series["latency_ms"]
        # Latency is monotone non-decreasing but clearly super-linear at small
        # sizes: half of the rows costs much more than half of the latency.
        assert np.all(np.diff(lat) >= -1e-9)
        quarter = max(len(rows) // 4, 1)
        linear_estimate = lat[-1] * rows[quarter] / rows[-1]
        assert lat[quarter] > 1.15 * linear_estimate
