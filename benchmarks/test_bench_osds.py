"""OSDS episode-throughput benchmark: episodes/sec, sequential vs batched.

PR 1/PR 2 made plan *evaluation* fast; this gate guards the loop above it —
the OSDS search itself, whose wall time was dominated by Python-level
episode orchestration (scalar MDP stepping plus per-episode plan building).
Episode-batched OSDS rolls rounds of episodes in lockstep through one
vectorised ``(episodes, devices)`` sweep per layer-volume, and the result is
bit-identical to the scalar loop at any execution width, so the speedup is
pure profit.

The **gated** comparison runs the search loop with ``updates_per_step=0``
(replay-buffer feeding on, gradient updates off): DDPG updates are
strictly-sequential canonical work executed identically — to the bit — by
both paths, so including them would only dilute the measurement of the
component this PR vectorises.  The full training loop (paper-size networks,
one update per step) is also measured and recorded, unenforced, so the
end-to-end picture stays on the record.

Unlike the shard gate, nothing here needs multiple cores — the win is
single-core vectorisation — so the gate is enforced everywhere.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
from _gate import record_gate_result

from repro.core.ddpg import DDPGConfig
from repro.core.mdp import SplitMDP
from repro.core.osds import OSDS, OSDSConfig
from repro.experiments.scenarios import generate_scenario
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator

NUM_DEVICES = 8
EPISODES = 64
EPISODE_BATCH = 32
ROUNDS = 3
MIN_SPEEDUP = 3.0
MODEL_NAME = "vgg16"
SEED = 5
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_osds.json"


def _run_osds(model, devices, network, boundaries, episode_batch, updates_per_step):
    """One cold OSDS run (fresh evaluator, so no cross-run cache warming)."""
    env = SplitMDP(model, boundaries, devices, BatchPlanEvaluator(devices, network))
    cfg = OSDSConfig(
        max_episodes=EPISODES,
        seed=SEED,
        episode_batch=episode_batch,
        policy_refresh=EPISODE_BATCH,
        updates_per_step=updates_per_step,
        ddpg=DDPGConfig(),
    )
    osds = OSDS(env, cfg)
    start = time.perf_counter()
    result = osds.run()
    return EPISODES / (time.perf_counter() - start), result


def _best_of(model, devices, network, boundaries, episode_batch, updates_per_step, rounds):
    best_eps = 0.0
    result = None
    for _ in range(rounds):
        eps_per_s, result = _run_osds(
            model, devices, network, boundaries, episode_batch, updates_per_step
        )
        best_eps = max(best_eps, eps_per_s)
    return best_eps, result


def test_bench_osds_episode_batching(benchmark):
    scenario = generate_scenario(NUM_DEVICES, seed=17)
    devices, network = scenario.build(seed=17)
    model = model_zoo.get(MODEL_NAME)
    boundaries = [0, 4, 8, model.num_spatial_layers]

    # --- gated: the search loop (no gradient updates) ------------------- #
    seq_eps, seq_result = _best_of(model, devices, network, boundaries, 1, 0, ROUNDS)
    bat_eps, bat_result = _best_of(
        model, devices, network, boundaries, EPISODE_BATCH, 0, ROUNDS
    )
    speedup = bat_eps / seq_eps
    bit_identical = (
        bat_result.best_latency_ms == seq_result.best_latency_ms
        and np.array_equal(bat_result.episode_latencies_ms, seq_result.episode_latencies_ms)
        and [d.cuts for d in bat_result.best_decisions]
        == [d.cuts for d in seq_result.best_decisions]
    )

    # --- recorded, unenforced: full training incl. paper-size updates --- #
    seq_train_eps, _ = _best_of(model, devices, network, boundaries, 1, 1, 1)
    bat_train_eps, _ = _best_of(model, devices, network, boundaries, EPISODE_BATCH, 1, 1)

    rows = record_gate_result(
        BENCH_PATH,
        {
            "scenario": scenario.name,
            "model": MODEL_NAME,
            "num_devices": NUM_DEVICES,
            "episodes": EPISODES,
            "episode_batch": EPISODE_BATCH,
            "policy_refresh": EPISODE_BATCH,
            "rounds": ROUNDS,
            "sequential_eps_per_s": seq_eps,
            "batched_eps_per_s": bat_eps,
            "speedup_batched_over_sequential": speedup,
            "bit_identical": bit_identical,
            "min_speedup_gate": MIN_SPEEDUP,
            "full_training": {
                "updates_per_step": 1,
                "sequential_eps_per_s": seq_train_eps,
                "batched_eps_per_s": bat_train_eps,
                "speedup_batched_over_sequential": bat_train_eps / seq_train_eps,
                "note": "DDPG updates are canonical sequential work shared "
                "bit-identically by both paths; unenforced",
            },
        },
    )
    print(f"\nBENCH_osds: {json.dumps(rows, indent=2)}")

    benchmark.pedantic(
        lambda: _run_osds(model, devices, network, boundaries, EPISODE_BATCH, 0),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    assert bit_identical, "episode-batched OSDS diverged from the sequential loop"
    assert speedup >= MIN_SPEEDUP, (
        f"episode batching regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"({seq_eps:.0f} eps/s sequential vs {bat_eps:.0f} eps/s batched at "
        f"E={EPISODE_BATCH} on {NUM_DEVICES} devices)"
    )
