"""Churn-aware serving benchmark: epoch-batched loop vs reference, crashing fleet.

The fault subsystem's gate: a 4-tenant open-loop workload on a generated
16-device fleet is served through a seeded churn timeline — crashes, a
graceful leave and a rejoin, timed to kill work in flight — once in
``reference`` mode (one scalar evaluation per request attempt, the
semantics oracle) and once in ``batched`` mode, where the epoch-batched
loop must bound its grouping at fault-event boundaries, resolve killed
attempts through the retry policy on replanned survivor strategies, and
still agree with the oracle float for float.

The gate asserts the batched loop serves the churned workload at least
``MIN_SPEEDUP`` (3x) faster in wall time and that the two loops' reports —
per-tenant series *and* the :class:`~repro.runtime.faults.FaultReport`
(crash kills, retry timings, abandons, sheds) — are bit-identical, via the
same ``assert_reports_equal`` the parity tests use.  The trace is also
required to actually bite (lost attempts and sheds > 0): a gate whose
churn never touched a request would be measuring the immortal-fleet path
under a new name.  Nothing here needs multiple cores, so the gate is
enforced everywhere.  Numbers land in ``BENCH_churn.json`` via the shared
:mod:`_gate` bookkeeping.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _gate import record_gate_result

from repro.baselines import BASELINE_REGISTRY
from repro.experiments.scenarios import generate_scenario
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.runtime.faults import DegradationPolicy, RetryPolicy, parse_churn_spec
from repro.serving import SLO, PoissonArrivals, ServingSimulator, TenantSpec
from repro.serving.simulator import assert_reports_equal

NUM_DEVICES = 16
TENANT_METHODS = ("coedge", "modnn", "mednn", "offload")
RATE_RPS = 5.0
DURATION_S = 10.0
DEADLINE_MS = 500.0
ROUNDS = 3
MIN_SPEEDUP = 3.0
MODEL_NAME = "vgg16"
CHURN = "churn:crashes=3,leaves=1,joins=1,seed=17,start_ms=1000,window_ms=7000"
RETRY = RetryPolicy(max_attempts=3, backoff_ms=25.0, jitter_ms=5.0, seed=17)
DEGRADE = DegradationPolicy(min_live_fraction=0.9)
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_churn.json"


def _make_tenants(model, devices, network):
    tenants = []
    for i, method in enumerate(TENANT_METHODS):
        plan = BASELINE_REGISTRY[method]().plan(model, devices, network)
        tenants.append(
            TenantSpec(
                name=method,
                plan=plan,
                traffic=PoissonArrivals(rate_rps=RATE_RPS, seed=100 + i),
                slo=SLO(deadline_ms=DEADLINE_MS),
                weight=float(len(TENANT_METHODS) - i),
            )
        )
    return tenants


def _best_of(fn, rounds=ROUNDS):
    best_t, report = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        report = fn()
        best_t = min(best_t, time.perf_counter() - start)
    return best_t, report


def test_bench_churned_event_loop(benchmark):
    scenario = generate_scenario(NUM_DEVICES, seed=17)
    devices, network = scenario.build(seed=17)
    model = model_zoo.get(MODEL_NAME)
    tenants = _make_tenants(model, devices, network)
    faults = parse_churn_spec(CHURN).resolve(NUM_DEVICES)

    # Reference: one scalar evaluation per request attempt, fresh evaluator
    # each round (no plan LRU, no epoch grouping).
    def run_reference():
        simulator = ServingSimulator(PlanEvaluator(devices, network))
        return simulator.run(
            tenants,
            duration_s=DURATION_S,
            mode="reference",
            faults=faults,
            retry=RETRY,
            degradation=DEGRADE,
        )

    # Batched: epoch grouping bounded at fault-event boundaries, fresh batch
    # evaluator each round so the speedup includes every cold miss.
    def run_batched():
        simulator = ServingSimulator(BatchPlanEvaluator(devices, network))
        return simulator.run(
            tenants,
            duration_s=DURATION_S,
            mode="batched",
            faults=faults,
            retry=RETRY,
            degradation=DEGRADE,
        )

    t_reference, reference_report = _best_of(run_reference)
    t_batched, batched_report = _best_of(run_batched)

    # Bit-identity including the fault report (assert_reports_equal compares
    # it alongside every per-tenant series).
    assert_reports_equal(batched_report, reference_report)
    fault_report = batched_report.faults
    assert fault_report is not None
    assert fault_report.lost_attempts > 0, "churn never killed an attempt"
    assert fault_report.total_shed > 0, "degradation never shed an arrival"

    speedup = t_reference / t_batched
    completed = batched_report.total_completed

    rows = record_gate_result(
        BENCH_PATH,
        {
            "scenario": scenario.name,
            "model": MODEL_NAME,
            "num_devices": NUM_DEVICES,
            "tenants": list(TENANT_METHODS),
            "arrival_rate_rps_per_tenant": RATE_RPS,
            "duration_s": DURATION_S,
            "churn": CHURN,
            "crashes": fault_report.num_crashes,
            "live_at_end": fault_report.live_at_end,
            "lost_attempts": fault_report.lost_attempts,
            "retried_requests": fault_report.retried_requests,
            "abandoned_requests": fault_report.abandoned_requests,
            "total_shed": fault_report.total_shed,
            "degraded_ms": fault_report.degraded_ms,
            "requests_completed": completed,
            "epochs": batched_report.epochs,
            "rounds": ROUNDS,
            "reference_requests_per_s": completed / t_reference,
            "batched_requests_per_s": completed / t_batched,
            "speedup_batched_over_reference": speedup,
            "bit_identical": True,  # assert_reports_equal above would have raised
            "deadline_miss_rate": batched_report.deadline_miss_rate,
            "min_speedup_gate": MIN_SPEEDUP,
        },
    )
    print(f"\nBENCH_churn: {json.dumps(rows, indent=2)}")

    benchmark.pedantic(run_batched, rounds=1, iterations=1, warmup_rounds=0)

    assert speedup >= MIN_SPEEDUP, (
        f"churn-aware serving loop regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(reference {t_reference * 1000:.0f} ms, batched {t_batched * 1000:.0f} ms "
        f"for {completed} requests over {len(TENANT_METHODS)} tenants on "
        f"{NUM_DEVICES} devices with {fault_report.num_crashes} crashes)"
    )
