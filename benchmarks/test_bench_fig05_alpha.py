"""Fig. 5: effect of the LC-PSS trade-off coefficient alpha.

Paper finding: alpha = 0 (operations only -> layer-by-layer partitions) and
alpha = 1 (transmission only -> one huge fused volume) both perform poorly;
intermediate alpha (0.75 in the paper) is best.  The benchmark sweeps alpha
in two of the paper's four environments (homogeneous Nanos and the
heterogeneous DB group); pass ``REPRO_BENCH_FULL_FIG5=1`` to include the
heterogeneous-bandwidth and large-scale environments as well.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.scenarios import ScenarioCatalog

ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def test_fig05_alpha_sweep(benchmark, fast_harness):
    environments = {
        "a-homogeneous-nano-200": ScenarioCatalog.homogeneous("nano", 200.0),
        "b-hetero-devices-DB-200": ScenarioCatalog.table1_groups(200.0)["DB"],
    }
    if os.environ.get("REPRO_BENCH_FULL_FIG5"):
        environments["c-hetero-network-NA-nano"] = ScenarioCatalog.table2_groups("nano")["NA"]
        environments["d-large-scale-LD"] = ScenarioCatalog.table3_groups()["LD"]

    data = run_once(
        benchmark,
        lambda: figures.figure5(fast_harness, alphas=ALPHAS, environments=environments),
    )
    print("\n=== Fig. 5: DistrEdge IPS vs alpha (VGG-16) ===")
    for env, per_alpha in data.items():
        row = "  ".join(f"a={a:.2f}:{ips:6.2f}" for a, ips in sorted(per_alpha.items()))
        print(f"  {env:26s} {row}")

    for env, per_alpha in data.items():
        assert all(ips > 0 for ips in per_alpha.values())
        best_alpha = max(per_alpha, key=per_alpha.get)
        # The paper's qualitative finding: the best alpha is an interior one
        # (considering both operations and transmission beats either extreme).
        assert 0.0 < best_alpha < 1.0 or per_alpha[best_alpha] >= per_alpha[0.0]
