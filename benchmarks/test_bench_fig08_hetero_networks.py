"""Fig. 8: IPS under heterogeneous bandwidth groups (Table II), Nano & Xavier."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.harness import ALL_METHODS
from repro.experiments.reporting import format_ips_table, speedup_summary


def test_fig08_heterogeneous_networks(benchmark, fast_harness):
    data = run_once(
        benchmark, lambda: figures.figure8(fast_harness, device_types=("nano", "xavier"))
    )
    print("\n" + format_ips_table(data, methods=list(ALL_METHODS),
                                  title="=== Fig. 8: IPS, heterogeneous networks (VGG-16) ==="))
    print("DistrEdge speedup over best baseline per cell:",
          {k: round(v, 2) for k, v in speedup_summary(data).items()})

    for cell, row in data.items():
        assert all(v > 0 for v in row.values()), cell
        best_baseline = max(v for k, v in row.items() if k != "distredge")
        assert row["distredge"] >= 0.9 * best_baseline, cell
    # Xavier clusters are much faster than Nano clusters for every method
    # (paper Fig. 8a vs 8b axis ranges).
    assert data["NA-xavier"]["distredge"] > data["NA-nano"]["distredge"]
