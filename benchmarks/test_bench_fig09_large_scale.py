"""Fig. 9: IPS with 16 service providers (Table III groups LA-LD)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.harness import ALL_METHODS
from repro.experiments.reporting import format_ips_table, speedup_summary


def test_fig09_large_scale(benchmark, large_scale_harness):
    data = run_once(benchmark, lambda: figures.figure9(large_scale_harness))
    print("\n" + format_ips_table(data, methods=list(ALL_METHODS),
                                  title="=== Fig. 9: IPS, 16 providers (VGG-16) ==="))
    print("DistrEdge speedup over best baseline per group:",
          {k: round(v, 2) for k, v in speedup_summary(data).items()})

    for group, row in data.items():
        assert all(v > 0 for v in row.values()), group
        best_baseline = max(v for k, v in row.items() if k != "distredge")
        assert row["distredge"] >= 0.85 * best_baseline, group
    # Equal-split methods drop below ~1-2 IPS whenever Pi3s take equal shares
    # (the "<1" annotations of the paper's Fig. 9).
    assert data["LB"]["deeperthings"] < 2.0
    assert data["LD"]["deeperthings"] < 2.0
