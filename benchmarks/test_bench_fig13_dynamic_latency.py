"""Fig. 13: per-image latency under a highly dynamic network.

Expected shape (paper): CoEdge has the highest per-image latency (it pays
layer-by-layer transmission on every image), and DistrEdge's latency is a
fraction of AOFL's (40-65% in the paper) because its actor adapts split
decisions cheaply while AOFL is stuck with a stale plan during its ~10-minute
brute-force re-planning window.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once
from repro.experiments import figures

DURATION_S = float(os.environ.get("REPRO_BENCH_FIG13_DURATION", "600"))


def test_fig13_dynamic_network_latency(benchmark, fast_harness):
    data = run_once(
        benchmark,
        lambda: figures.figure13(
            fast_harness, duration_s=DURATION_S, extra_gap_ms=1000.0, seed=0
        ),
    )
    print("\n=== Fig. 13: per-image latency under dynamic network (VGG-16, 4x Nano) ===")
    for method, stats in data.items():
        print(
            f"  {method:10s} mean={stats['mean_latency_ms']:7.1f} ms  "
            f"p95={stats['p95_latency_ms']:7.1f} ms  images={stats['num_images']:4d}  "
            f"replans={stats['num_replans']}"
        )
    ratio = data["distredge"]["mean_latency_ms"] / data["aofl"]["mean_latency_ms"]
    print(f"  DistrEdge / AOFL mean latency ratio: {ratio:.2f} (paper: 0.40-0.65)")

    # Shape: CoEdge (layer-by-layer) is the worst or near-worst; DistrEdge is
    # no worse than AOFL.  Our calibration narrows the DistrEdge-vs-AOFL gap
    # relative to the paper (see EXPERIMENTS.md) so the bound is a tie check,
    # not the paper's 0.40-0.65 band.
    assert data["coedge"]["mean_latency_ms"] > data["distredge"]["mean_latency_ms"] * 0.95
    assert data["distredge"]["mean_latency_ms"] <= data["aofl"]["mean_latency_ms"] * 1.10
    for stats in data.values():
        assert stats["num_images"] > 10
