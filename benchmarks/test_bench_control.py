"""Control-plane gate: capacity planning correctness and memo-warm probes.

The predictive control plane's CI gate, on two seeded ``gen:`` scenarios
whose feasibility is monotone in the fleet size (more devices never push
the effective miss rate back above the target — the binary search's
working assumption, which this gate re-checks against the exhaustive
oracle every run):

1. **Search correctness** — ``CapacityPlanner.plan()`` (binary search over
   the fleet-size range) must land on exactly the minimum feasible fleet
   that the ascending exhaustive sweep finds, on both scenarios.
2. **Probe budget** — the binary search must use at most
   ``ceil(log2(range)) + 2`` serving runs (the planner's contract), i.e.
   strictly fewer than the exhaustive sweep needs whenever the answer is
   not at the bottom of the range.
3. **Memo-warm refinement** — re-probing a fleet size the planner already
   visited must replay the shared contended-schedule memo
   (``ServingSimulator.run(schedule_memo=...)``) instead of re-walking
   the schedules: at least ``MIN_SPEEDUP`` faster, and bit-identical
   (``assert_reports_equal``).

Numbers land in ``BENCH_control.json`` via the shared :mod:`_gate`
bookkeeping; the ``speedup_*`` key is trend-gated.  Nothing here needs
multiple cores, so the gate is enforced everywhere.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _gate import record_gate_result

from repro.experiments.harness import ExperimentHarness, HarnessConfig
from repro.serving import ClusterPolicy, assert_reports_equal
from repro.serving.control import CapacityPlanConfig, CapacityPlanner

#: Two workloads where splitting deeper into the fleet genuinely adds
#: capacity (vgg16 is compute-dominated at these bandwidths), so the
#: offered load saturates small fleets and clears on larger ones.
SCENARIOS = (
    {
        "gen": "gen:n=2,seed=3,types=nano,bw=500",
        "traffic": "traffic:poisson,rate=5,seed=11",
        "deadline_ms": 500.0,
    },
    {
        "gen": "gen:n=2,seed=9,types=nano,bw=300",
        "traffic": "traffic:poisson,rate=3,seed=17",
        "deadline_ms": 600.0,
    },
)
MODEL_NAME = "vgg16"
METHODS = ("coedge",)
SLOTS = 8
DURATION_S = 8.0
FLEET_MIN, FLEET_MAX = 1, 6
TARGET_MISS_RATE = 0.02
ROUNDS = 3
MIN_SPEEDUP = 3.0
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_control.json"

POLICY = ClusterPolicy(admission="predictive", on_predicted_miss="reject")


def _best_of(fn, rounds=ROUNDS):
    best_t, out = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        out = fn()
        best_t = min(best_t, time.perf_counter() - start)
    return best_t, out


def test_bench_capacity_planner(benchmark):
    harness = ExperimentHarness(HarnessConfig(seed=7))
    config = CapacityPlanConfig(
        min_devices=FLEET_MIN, max_devices=FLEET_MAX,
        target_miss_rate=TARGET_MISS_RATE,
    )
    scenario_rows = []
    speedups = []
    for spec in SCENARIOS:
        kwargs = dict(
            methods=METHODS,
            model_name=MODEL_NAME,
            traffic=spec["traffic"],
            deadline_ms=spec["deadline_ms"],
            duration_s=DURATION_S,
            policy=POLICY,
            slots=SLOTS,
        )
        # Binary search and oracle probe through *independent* planners so
        # the binary run cannot borrow the sweep's memoized probes.
        binary_planner = CapacityPlanner(
            harness.capacity_probe_runner(spec["gen"], **kwargs), config
        )
        plan = binary_planner.plan()
        oracle = CapacityPlanner(
            harness.capacity_probe_runner(spec["gen"], **kwargs), config
        ).exhaustive()

        assert plan.min_feasible_devices is not None, (
            f"{spec['gen']}: no feasible fleet in [{FLEET_MIN}, {FLEET_MAX}] — "
            f"the workload drifted out of calibration"
        )
        assert plan.min_feasible_devices == oracle.min_feasible_devices, (
            f"{spec['gen']}: binary search found {plan.min_feasible_devices} "
            f"devices but the exhaustive sweep found "
            f"{oracle.min_feasible_devices} — feasibility is not monotone on "
            f"this workload"
        )
        assert binary_planner.probe_runs <= config.max_probes, (
            f"{spec['gen']}: {binary_planner.probe_runs} probe runs exceed "
            f"the ceil(log2(span))+2 = {config.max_probes} budget"
        )

        # Memo-warm refinement at the answer: plan caches are already warm
        # from the search, so the cold/warm delta isolates the shared
        # contended-schedule memo.
        answer = plan.min_feasible_devices
        cold_probe = harness.capacity_probe_runner(
            spec["gen"], share_schedule_memo=False, **kwargs
        )
        warm_probe = harness.capacity_probe_runner(spec["gen"], **kwargs)
        warm_probe(answer)  # populate the per-size schedule memo
        t_cold, cold_report = _best_of(lambda: cold_probe(answer))
        t_warm, warm_report = _best_of(lambda: warm_probe(answer))
        assert_reports_equal(cold_report, warm_report)
        speedups.append(t_cold / t_warm)

        scenario_rows.append(
            {
                "scenario": spec["gen"],
                "traffic": spec["traffic"],
                "deadline_ms": spec["deadline_ms"],
                "min_feasible_devices": plan.min_feasible_devices,
                "binary_probe_runs": binary_planner.probe_runs,
                "probe_budget": config.max_probes,
                "exhaustive_probe_runs": len(oracle.probes),
                "probe_log": [p.to_dict() for p in plan.probes],
                "cold_probe_ms": t_cold * 1000.0,
                "warm_probe_ms": t_warm * 1000.0,
            }
        )

    min_speedup = min(speedups)
    rows = record_gate_result(
        BENCH_PATH,
        {
            "model": MODEL_NAME,
            "methods": list(METHODS),
            "slots": SLOTS,
            "duration_s": DURATION_S,
            "fleet_range": [FLEET_MIN, FLEET_MAX],
            "target_miss_rate": TARGET_MISS_RATE,
            "admission": POLICY.admission,
            "rounds": ROUNDS,
            "scenarios": scenario_rows,
            "binary_matches_exhaustive": True,  # asserts above would have raised
            "speedup_memo_warm_probe": min_speedup,
            "min_speedup_gate": MIN_SPEEDUP,
        },
    )
    print(f"\nBENCH_control: {json.dumps(rows, indent=2)}")

    final_spec = SCENARIOS[0]
    benchmark.pedantic(
        lambda: CapacityPlanner(
            harness.capacity_probe_runner(
                final_spec["gen"],
                methods=METHODS,
                model_name=MODEL_NAME,
                traffic=final_spec["traffic"],
                deadline_ms=final_spec["deadline_ms"],
                duration_s=DURATION_S,
                policy=POLICY,
                slots=SLOTS,
            ),
            config,
        ).plan(),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )

    assert min_speedup >= MIN_SPEEDUP, (
        f"memo-warm capacity probe regressed: {min_speedup:.2f}x < "
        f"{MIN_SPEEDUP}x (the shared schedule memo should replay the "
        f"contended walks, not recompute them)"
    )
