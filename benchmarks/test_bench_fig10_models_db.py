"""Fig. 10: IPS of seven further CNN models on Group DB at 50 Mbps."""

from __future__ import annotations

import os

from benchmarks.conftest import run_once
from repro.experiments import figures
from repro.experiments.harness import ALL_METHODS
from repro.experiments.reporting import format_ips_table, speedup_summary

#: Subset used by default to keep the bench fast; set REPRO_BENCH_ALL_MODELS=1
#: to sweep all seven extra models as in the paper.
DEFAULT_MODELS = ("resnet50", "yolov2", "openpose")


def _models():
    if os.environ.get("REPRO_BENCH_ALL_MODELS"):
        return figures.EXTRA_MODELS
    return DEFAULT_MODELS


def test_fig10_models_on_db_50mbps(benchmark, model_sweep_harness):
    data = run_once(benchmark, lambda: figures.figure10(model_sweep_harness, models=_models()))
    print("\n" + format_ips_table(data, methods=list(ALL_METHODS),
                                  title="=== Fig. 10: IPS per model (DB, 50 Mbps) ==="))
    print("DistrEdge speedup over best baseline per model:",
          {k: round(v, 2) for k, v in speedup_summary(data).items()})
    for model, row in data.items():
        assert all(v > 0 for v in row.values()), model
        best_baseline = max(v for k, v in row.items() if k != "distredge")
        assert row["distredge"] >= 0.85 * best_baseline, model
