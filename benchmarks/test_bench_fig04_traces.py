"""Fig. 4: sampled WiFi throughput traces at 50/100/200/300 Mbps."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import figures


def test_fig04_wifi_traces(benchmark):
    data = run_once(benchmark, lambda: figures.figure4(duration_s=3600.0, seed=0))
    print("\n=== Fig. 4: shaped WiFi traces (1 hour) ===")
    for name, stats in data.items():
        print(f"  {name:8s} mean={stats['mean_mbps']:6.1f}  std={stats['std_mbps']:5.1f}  "
              f"range=[{stats['min_mbps']:.1f}, {stats['max_mbps']:.1f}]")
    for stats in data.values():
        # Shaped links stay within a narrow band around the nominal rate.
        assert abs(stats["mean_mbps"] - stats["nominal_mbps"]) / stats["nominal_mbps"] < 0.1
        assert stats["std_mbps"] < 0.15 * stats["nominal_mbps"]
