"""Contended serving benchmark: epoch-batched memo vs per-request reference.

The contention subsystem's gate: a 4-tenant open-loop workload on a
generated 16-device fleet is served through the shared-lane contended loop
twice — once in ``reference`` mode (every request is a full scalar walk of
:class:`~repro.runtime.contention.ContentionAwareEvaluator`, the semantics
oracle) and once in ``batched`` mode, where dispatches are grouped by their
``(model, plan, network-state, gate, lane-occupancy)`` signature and each
group is evaluated once through the contended-schedule memo.

The gate asserts the batched loop serves the workload at least
``MIN_SPEEDUP`` (4x) faster in wall time and that the two loops' reports —
every per-tenant series *and* the per-device fleet lane breakdown — are
bit-identical (the contended parity contract, re-checked on the gated
workload itself).  Nothing here needs multiple cores, so the gate is
enforced everywhere.  Numbers land in ``BENCH_contention.json`` via the
shared :mod:`_gate` bookkeeping.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from _gate import record_gate_result

from repro.baselines import BASELINE_REGISTRY
from repro.experiments.scenarios import generate_scenario
from repro.nn import model_zoo
from repro.runtime.batch import BatchPlanEvaluator
from repro.runtime.evaluator import PlanEvaluator
from repro.serving import SLO, ClusterPolicy, PoissonArrivals, ServingSimulator, TenantSpec
from repro.serving.simulator import assert_reports_equal

NUM_DEVICES = 16
TENANT_METHODS = ("coedge", "modnn", "mednn", "offload")
RATE_RPS = 0.25
DURATION_S = 150.0
DEADLINE_MS = 1000.0
ROUNDS = 3
MIN_SPEEDUP = 4.0
MODEL_NAME = "vgg16"
POLICY = ClusterPolicy(discipline="fifo")
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_contention.json"


def _make_tenants(model, devices, network):
    tenants = []
    for i, method in enumerate(TENANT_METHODS):
        plan = BASELINE_REGISTRY[method]().plan(model, devices, network)
        tenants.append(
            TenantSpec(
                name=method,
                plan=plan,
                traffic=PoissonArrivals(rate_rps=RATE_RPS, seed=100 + i),
                slo=SLO(deadline_ms=DEADLINE_MS),
            )
        )
    return tenants


def _best_of(fn, rounds=ROUNDS):
    best_t, report = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        report = fn()
        best_t = min(best_t, time.perf_counter() - start)
    return best_t, report


def test_bench_contended_event_loop(benchmark):
    scenario = generate_scenario(NUM_DEVICES, seed=17, bandwidth_mbps=300.0)
    devices, network = scenario.build(seed=17)
    model = model_zoo.get(MODEL_NAME)
    tenants = _make_tenants(model, devices, network)

    # Reference: every dispatch is one full scalar contended walk (fresh
    # evaluator each round — no memo, no plan LRU carry-over).
    def run_reference():
        simulator = ServingSimulator(PlanEvaluator(devices, network))
        return simulator.run(
            tenants, duration_s=DURATION_S, mode="reference", policy=POLICY
        )

    # Batched: equal (network state, lane occupancy) signatures share one
    # evaluation through the contended-schedule memo (fresh each round, so
    # the measured speedup includes every cold miss).
    def run_batched():
        simulator = ServingSimulator(BatchPlanEvaluator(devices, network))
        return simulator.run(
            tenants, duration_s=DURATION_S, mode="batched", policy=POLICY
        )

    t_reference, reference_report = _best_of(run_reference)
    t_batched, batched_report = _best_of(run_batched)

    assert_reports_equal(batched_report, reference_report)
    speedup = t_reference / t_batched
    completed = batched_report.total_completed

    rows = record_gate_result(
        BENCH_PATH,
        {
            "scenario": scenario.name,
            "model": MODEL_NAME,
            "num_devices": NUM_DEVICES,
            "tenants": list(TENANT_METHODS),
            "discipline": POLICY.discipline,
            "arrival_rate_rps_per_tenant": RATE_RPS,
            "duration_s": DURATION_S,
            "requests_completed": completed,
            "contended_requests": batched_report.fleet.contended_requests,
            "evaluations_batched": batched_report.epochs,
            "memo_hits": batched_report.cache_hits,
            "rounds": ROUNDS,
            "reference_requests_per_s": completed / t_reference,
            "batched_requests_per_s": completed / t_batched,
            "speedup_batched_over_reference": speedup,
            "bit_identical": True,  # assert_reports_equal above would have raised
            "deadline_miss_rate": batched_report.deadline_miss_rate,
            "min_speedup_gate": MIN_SPEEDUP,
        },
    )
    print(f"\nBENCH_contention: {json.dumps(rows, indent=2)}")

    benchmark.pedantic(run_batched, rounds=1, iterations=1, warmup_rounds=0)

    assert speedup >= MIN_SPEEDUP, (
        f"contended serving loop regressed: {speedup:.2f}x < {MIN_SPEEDUP}x "
        f"(reference {t_reference * 1000:.0f} ms, batched {t_batched * 1000:.0f} ms "
        f"for {completed} requests over {len(TENANT_METHODS)} tenants on "
        f"{NUM_DEVICES} devices)"
    )
