"""Tables I-III: the scenario catalogue underlying every evaluation figure.

The paper's tables define device/bandwidth groups rather than results; this
benchmark materialises every group and reports its composition plus the
single-device Offload IPS for reference (the cheapest method), verifying the
whole catalogue is buildable end to end.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.scenarios import ScenarioCatalog


def test_tables_1_2_3_catalog(benchmark, fast_harness):
    def run():
        rows = {}
        catalog = {}
        catalog.update(ScenarioCatalog.table1_groups(200.0))
        catalog.update({f"{k}-nano": v for k, v in ScenarioCatalog.table2_groups("nano").items()})
        catalog.update(ScenarioCatalog.table3_groups())
        for name, scenario in catalog.items():
            result = fast_harness.run("offload", scenario, model_name="vgg16")
            rows[name] = {
                "devices": len(scenario.device_specs),
                "types": "+".join(sorted(set(scenario.device_types))),
                "offload_ips": round(result.ips, 2),
            }
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Tables I-III scenario catalogue (offload reference) ===")
    for name, row in rows.items():
        print(f"  {name:10s} devices={row['devices']:2d} types={row['types']:22s} "
              f"offload={row['offload_ips']:6.2f} IPS")
    assert len(rows) == 11
    assert all(row["offload_ips"] > 0 for row in rows.values())
